"""On-line background reconstruction into distributed spare space.

Sweeps the failed disk's lost units in offset order: read each stripe's
survivors, then write the rebuilt unit to its spare cell, with a bounded
number of rebuild steps in flight.  When the sweep finishes the controller
flips to post-reconstruction mode — the paper's Figure 18 regimes
(reconstruction vs post-reconstruction) are the before/after of this
process.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.array.controller import ArrayController
from repro.core.reconstruction import RebuildStep, rebuild_plan
from repro.errors import SimulationError

#: Access ids at or above this value are background rebuild traffic; they
#: share the locality-classification machinery with client accesses without
#: ever colliding with client ids.
RECONSTRUCTION_ID_BASE = 1 << 40


class Reconstructor:
    """Background rebuild of one failed disk.

    Attach to a controller already in degraded mode and :meth:`start`; the
    optional ``on_finished(duration_ms)`` callback fires when the spare
    space holds every lost unit.
    """

    def __init__(
        self,
        controller: ArrayController,
        parallel_steps: int = 1,
        on_finished: Optional[Callable[[float], None]] = None,
        rows: Optional[int] = None,
    ):
        if parallel_steps < 1:
            raise SimulationError("need at least one rebuild slot")
        if controller.failed_disk is None:
            raise SimulationError("no failed disk to reconstruct")
        if not controller.layout.has_sparing:
            raise SimulationError(
                f"{controller.layout.name} has no spare space to rebuild into"
            )
        self.controller = controller
        self.parallel_steps = parallel_steps
        self.on_finished = on_finished
        total_rows = (
            rows
            if rows is not None
            else controller.periods * controller.layout.period
        )
        self._steps: Iterator[RebuildStep] = rebuild_plan(
            controller.layout, controller.failed_disk, rows=total_rows
        )
        self._exhausted = False
        self.started_ms: Optional[float] = None
        self.finished_ms: Optional[float] = None
        self.steps_completed = 0
        self._active = 0
        self._next_id = RECONSTRUCTION_ID_BASE

    def start(self) -> None:
        if self.started_ms is not None:
            raise SimulationError("reconstruction already started")
        self.started_ms = self.controller.engine.now
        for _ in range(self.parallel_steps):
            self._issue_next()
        if self._exhausted and self._active == 0:
            self._finish()  # degenerate: nothing to rebuild

    def _issue_next(self) -> None:
        if self._exhausted:
            return
        step = next(self._steps, None)
        if step is None:
            self._exhausted = True
            return
        self._active += 1
        self._run_step(step)

    def _run_step(self, step: RebuildStep) -> None:
        controller = self.controller
        access_id = self._next_id
        self._next_id += 1
        remaining = {"reads": len(step.reads)}

        def write_done() -> None:
            self._active -= 1
            self.steps_completed += 1
            self._issue_next()
            if self._exhausted and self._active == 0:
                self._finish()

        def read_done() -> None:
            remaining["reads"] -= 1
            if remaining["reads"] == 0:
                controller.submit_raw(
                    step.write.disk,
                    step.write.offset,
                    True,
                    access_id,
                    write_done,
                    tag="rebuild-write",
                )

        for addr in step.reads:
            controller.submit_raw(
                addr.disk,
                addr.offset,
                False,
                access_id,
                read_done,
                tag="rebuild-read",
            )

    def _finish(self) -> None:
        if self.finished_ms is not None:
            return
        self.finished_ms = self.controller.engine.now
        self.controller.finish_reconstruction()
        if self.on_finished is not None:
            self.on_finished(self.duration_ms)

    @property
    def duration_ms(self) -> float:
        if self.started_ms is None or self.finished_ms is None:
            raise SimulationError("reconstruction has not finished")
        return self.finished_ms - self.started_ms
