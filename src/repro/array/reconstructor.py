"""On-line background reconstruction into distributed spare space.

Sweeps the failed disk's lost units in offset order: read each stripe's
survivors, then write the rebuilt unit to its spare cell, with a bounded
number of rebuild steps in flight.  When the sweep finishes the controller
flips to post-reconstruction mode — the paper's Figure 18 regimes
(reconstruction vs post-reconstruction) are the before/after of this
process.

The reconstructor tracks which lost offsets are safely in spare space
(:meth:`Reconstructor.is_rebuilt` — the rebuild frontier that
:attr:`~repro.array.raidops.ArrayMode.RECONSTRUCTION` planning consults),
and a rebuild-rate throttle (``throttle_ms`` of idle time per slot between
steps) makes the client/rebuild interference tunable: 0 rebuilds as fast
as the spindles allow, larger values cede bandwidth to client traffic.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set

from repro.array.controller import ArrayController
from repro.core.reconstruction import (
    RebuildStep,
    count_lost_units,
    rebuild_plan,
)
from repro.errors import SimulationError
from repro.layouts.address import PhysicalAddress, Role

#: Access ids at or above this value are background rebuild traffic; they
#: share the locality-classification machinery with client accesses without
#: ever colliding with client ids.
RECONSTRUCTION_ID_BASE = 1 << 40


class AdaptiveThrottle:
    """AIMD rebuild-rate control from a foreground-latency signal.

    Replaces a static ``throttle_ms`` with SLO feedback: once per SLA
    window the controller asks the tracker what fraction of recent
    foreground responses broke the p99 ceiling.  Over
    ``violation_fraction`` means client traffic is hurting — back off
    multiplicatively (the idle gap between rebuild steps doubles, i.e.
    the rebuild *rate* halves).  A healthy or idle window recovers
    additively (``recover_step_ms`` shaved off the gap), sprinting the
    rebuild when the foreground can absorb it.

    ``tracker`` is duck-typed to :class:`repro.traffic.sla.SlaTracker`:
    it needs ``window_ms`` and ``recent_over_fraction(now_ms, windows)``.
    """

    def __init__(
        self,
        tracker,
        initial_ms: float = 2.0,
        *,
        min_ms: float = 0.0,
        max_ms: float = 32.0,
        backoff_factor: float = 2.0,
        recover_step_ms: float = 0.25,
        growth_floor_ms: float = 0.5,
        violation_fraction: float = 0.01,
        windows: int = 1,
    ):
        if initial_ms < 0 or min_ms < 0:
            raise SimulationError("throttle values cannot be negative")
        if not min_ms <= initial_ms <= max_ms:
            raise SimulationError(
                f"need min <= initial <= max throttle, got"
                f" {min_ms}/{initial_ms}/{max_ms}"
            )
        if backoff_factor <= 1.0:
            raise SimulationError(
                f"backoff factor must exceed 1.0, got {backoff_factor}"
            )
        if recover_step_ms <= 0 or growth_floor_ms <= 0:
            raise SimulationError(
                "recover step and growth floor must be positive"
            )
        if not 0.0 <= violation_fraction < 1.0:
            raise SimulationError(
                f"violation fraction must be in [0, 1), got"
                f" {violation_fraction}"
            )
        self.tracker = tracker
        self.throttle_ms = initial_ms
        self.min_ms = min_ms
        self.max_ms = max_ms
        self.backoff_factor = backoff_factor
        self.recover_step_ms = recover_step_ms
        self.growth_floor_ms = growth_floor_ms
        self.violation_fraction = violation_fraction
        self.windows = windows
        self.backoffs = 0
        self.sprints = 0
        self.peak_ms = initial_ms
        self._last_window: Optional[int] = None

    def current_ms(self, now_ms: float) -> float:
        """The inter-step gap to use right now (re-decided per window)."""
        window = int(now_ms // self.tracker.window_ms)
        if window != self._last_window:
            self._last_window = window
            self._decide(now_ms)
        return self.throttle_ms

    def _decide(self, now_ms: float) -> None:
        over = self.tracker.recent_over_fraction(
            now_ms, windows=self.windows
        )
        if over is not None and over > self.violation_fraction:
            # Foreground p99 locally broken: halve the rebuild rate.
            grown = max(
                self.throttle_ms * self.backoff_factor,
                self.growth_floor_ms,
            )
            self.throttle_ms = min(grown, self.max_ms)
            self.peak_ms = max(self.peak_ms, self.throttle_ms)
            self.backoffs += 1
        elif self.throttle_ms > self.min_ms:
            # Healthy (or idle) foreground: sprint a little.
            self.throttle_ms = max(
                self.throttle_ms - self.recover_step_ms, self.min_ms
            )
            self.sprints += 1

    def report(self) -> dict:
        return {
            "throttle_ms": self.throttle_ms,
            "peak_ms": self.peak_ms,
            "backoffs": self.backoffs,
            "sprints": self.sprints,
        }


class Reconstructor:
    """Background rebuild of one failed disk.

    Attach to a controller already in degraded mode and :meth:`start`; the
    optional ``on_finished(duration_ms)`` callback fires when every lost
    unit has a rebuilt copy, ``on_step(reconstructor)`` after every
    completed rebuild step (progress timelines hook in here).

    Layouts with distributed sparing rebuild into their spare cells; for
    layouts without sparing, ``allow_replacement=True`` rebuilds onto a
    replacement spindle installed in the failed disk's slot (otherwise
    such layouts are rejected — a RAID-5 with no spare and no replacement
    genuinely has no recovery path).
    """

    def __init__(
        self,
        controller: ArrayController,
        parallel_steps: int = 1,
        on_finished: Optional[Callable[[float], None]] = None,
        rows: Optional[int] = None,
        throttle_ms: float = 0.0,
        on_step: Optional[Callable[["Reconstructor"], None]] = None,
        allow_replacement: bool = False,
        media=None,
        media_retries: int = 2,
        on_unreadable: Optional[
            Callable[["Reconstructor", RebuildStep, PhysicalAddress], None]
        ] = None,
        already_rebuilt: Optional[Iterable[int]] = None,
        adaptive_throttle: Optional[AdaptiveThrottle] = None,
    ):
        if parallel_steps < 1:
            raise SimulationError("need at least one rebuild slot")
        if throttle_ms < 0:
            raise SimulationError(f"negative rebuild throttle {throttle_ms}")
        if media_retries < 0:
            raise SimulationError(f"negative media retries {media_retries}")
        if controller.failed_disk is None:
            raise SimulationError("no failed disk to reconstruct")
        layout = controller.plan_layout
        self.into_spare = layout.has_sparing
        if not self.into_spare and not allow_replacement:
            raise SimulationError(
                f"{layout.name} has no spare space to rebuild"
                " into (pass allow_replacement=True to rebuild onto a"
                " replacement spindle)"
            )
        self.controller = controller
        self.parallel_steps = parallel_steps
        self.throttle_ms = throttle_ms
        #: When set, overrides the static ``throttle_ms`` with the AIMD
        #: controller's per-window decision; None keeps the hot path
        #: byte-identical to the pre-adaptive behavior.
        self.adaptive_throttle = adaptive_throttle
        self.on_finished = on_finished
        self.on_step = on_step
        self.media = media
        self.media_retries = media_retries
        self.on_unreadable = on_unreadable
        self.total_rows = (
            rows if rows is not None else controller.periods * layout.period
        )
        self.total_steps = count_lost_units(
            layout, controller.failed_disk, rows=self.total_rows
        )
        self._steps: Iterator[RebuildStep] = rebuild_plan(
            layout, controller.failed_disk, rows=self.total_rows
        )
        done = set(already_rebuilt) if already_rebuilt else set()
        if done:
            # Resuming a sweep (crash restart): offsets already in spare
            # space keep their rebuilt copies, so only the remainder of
            # the plan runs.
            steps = [s for s in self._steps if s.lost.offset not in done]
            self.total_steps = len(steps)
            self._steps = iter(steps)
        self._exhausted = False
        self._aborted = False
        self.started_ms: Optional[float] = None
        self.finished_ms: Optional[float] = None
        self.steps_completed = 0
        self.skipped_steps = 0
        self.unreadable: List[PhysicalAddress] = []
        self._active = 0
        self._pending_issues = 0
        self._rebuilt_offsets: Set[int] = done
        self._inflight: Dict[int, RebuildStep] = {}
        self._next_id = RECONSTRUCTION_ID_BASE

    def start(self) -> None:
        if self.started_ms is not None:
            raise SimulationError("reconstruction already started")
        self.started_ms = self.controller.engine.now
        if not self.into_spare:
            self.controller.install_replacement()
        for _ in range(self.parallel_steps):
            self._issue_next()
        self._maybe_finish()  # degenerate: nothing to rebuild

    # ------------------------------------------------------------------
    # Rebuild frontier and progress.
    # ------------------------------------------------------------------

    def is_rebuilt(self, offset: int) -> bool:
        """Is the failed disk's cell at ``offset`` safely in spare space?"""
        return offset in self._rebuilt_offsets

    @property
    def rebuilt_offsets(self) -> Set[int]:
        """The frontier as a set (second-failure evaluation reads this)."""
        return self._rebuilt_offsets

    @property
    def aborted(self) -> bool:
        return self._aborted

    # ------------------------------------------------------------------
    # Second-failure hooks (driven by the lifecycle).
    # ------------------------------------------------------------------

    def abort(self) -> None:
        """Stop issuing steps; in-flight operations drain harmlessly.

        Used when a second failure (or an unreadable sector) makes the
        sweep pointless — the array has lost data and will never reach
        post-reconstruction.  Completions of already-issued operations
        still fire, but no new steps launch and ``on_finished`` never
        does.
        """
        self._aborted = True

    def unrebuild(self, offsets: Iterable[int]) -> None:
        """Pull offsets back out of the frontier (their rebuilt copies
        died with the second disk); requeued repair steps re-sweep them."""
        if self._aborted:
            raise SimulationError("reconstruction was aborted")
        for offset in offsets:
            self._rebuilt_offsets.discard(offset)

    def requeue(self, steps: List[RebuildStep]) -> None:
        """Append extra repair steps to the in-progress sweep.

        A survivable second failure adds work: re-lost units swept again
        onto the replacement spindle, plus the second disk's own cells.
        The steps join the tail of the existing plan and idle slots are
        kicked awake, so the same rebuild cycle absorbs them.
        """
        if self._aborted:
            raise SimulationError("reconstruction was aborted")
        if self.finished_ms is not None:
            raise SimulationError(
                "reconstruction already finished; start a new cycle"
            )
        if not steps:
            return
        self.total_steps += len(steps)
        self._steps = itertools.chain(self._steps, iter(steps))
        self._exhausted = False
        if self.started_ms is None:
            return  # start() will issue them
        idle = self.parallel_steps - self._active - self._pending_issues
        for _ in range(idle):
            self._issue_next()

    def outstanding_steps(self) -> List[RebuildStep]:
        """Drain every step without a completed rebuilt copy.

        Used after a controller crash wiped the in-flight operations: the
        issued-but-unfinished steps plus the never-issued remainder of the
        plan, in issue order.  The plan is left exhausted — the caller
        owns the returned steps (typically requeueing the survivors into
        a fresh reconstructor).
        """
        remaining = list(self._steps)
        self._steps = iter(())
        self._exhausted = True
        return list(self._inflight.values()) + remaining

    @property
    def progress(self) -> int:
        """Rebuild steps completed so far."""
        return self.steps_completed

    @property
    def fraction_complete(self) -> float:
        """Completed fraction of the sweep, 0.0 to 1.0."""
        if self.total_steps == 0:
            return 1.0
        return self.steps_completed / self.total_steps

    # ------------------------------------------------------------------
    # Step issue/completion machinery.
    # ------------------------------------------------------------------

    def _issue_next(self) -> None:
        if self._exhausted or self._aborted:
            return
        step = next(self._steps, None)
        if step is None:
            self._exhausted = True
            return
        self._active += 1
        self._run_step(step)

    def _refill_slot(self) -> None:
        """One slot freed up: issue the next step, throttled if configured."""
        if self._aborted:
            return
        if self._exhausted:
            self._maybe_finish()
            return
        if self.adaptive_throttle is not None:
            delay = self.adaptive_throttle.current_ms(
                self.controller.engine.now
            )
        else:
            delay = self.throttle_ms
        if delay > 0:
            self._pending_issues += 1
            self.controller.engine.schedule(delay, self._delayed_issue)
        else:
            self._issue_next()
            self._maybe_finish()

    def _delayed_issue(self) -> None:
        self._pending_issues -= 1
        self._issue_next()
        self._maybe_finish()

    def _run_step(self, step: RebuildStep) -> None:
        controller = self.controller
        access_id = self._next_id
        self._next_id += 1
        self._inflight[access_id] = step
        remaining = {"reads": len(step.reads), "failed": False}

        def write_done() -> None:
            self._inflight.pop(access_id, None)
            self._active -= 1
            self.steps_completed += 1
            self._rebuilt_offsets.add(step.lost.offset)
            if self.media is not None:
                self.media.clear(target.disk, target.offset)
            oracle = controller.oracle
            if oracle is not None:
                # A lost *data* unit was regenerated through the parity
                # chain — corrupt if a torn write left it untrustworthy.
                lost_role = controller.plan_layout.locate(
                    step.lost.disk, step.lost.offset
                ).role
                oracle.check_rebuild_step(
                    step.stripe, lost_role is Role.DATA
                )
            if self.on_step is not None:
                self.on_step(self)
            self._refill_slot()

        # Spare-cell target with distributed sparing; the original
        # address on the replacement spindle without.
        target = step.write if step.write is not None else step.lost

        def all_reads_good() -> None:
            controller.submit_raw(
                target.disk,
                target.offset,
                True,
                access_id,
                write_done,
                tag="rebuild-write",
            )

        def read_done(addr: PhysicalAddress, attempt: int) -> None:
            if remaining["failed"]:
                return  # step already failed on a sibling read
            if self.media is not None and self.media.is_bad(
                addr.disk, addr.offset
            ):
                if attempt < self.media_retries:
                    # Retry the sector in place (real firmware retries
                    # before declaring a medium error).
                    issue_read(addr, attempt + 1)
                    return
                remaining["failed"] = True
                self._inflight.pop(access_id, None)
                self._fail_step(step, addr)
                return
            remaining["reads"] -= 1
            if remaining["reads"] == 0:
                all_reads_good()

        def issue_read(addr: PhysicalAddress, attempt: int) -> None:
            controller.submit_raw(
                addr.disk,
                addr.offset,
                False,
                access_id,
                lambda: read_done(addr, attempt),
                tag="rebuild-read",
            )

        for addr in step.reads:
            issue_read(addr, 0)

    def _fail_step(self, step: RebuildStep, addr: PhysicalAddress) -> None:
        """A rebuild read hit an unreadable sector after all retries.

        The stripe being rebuilt has no redundancy left, so the lost unit
        is gone.  By default that is terminal data loss (the sweep aborts
        and the controller records the reason); an ``on_unreadable``
        handler can instead account the loss and let the sweep continue
        (``skipped_steps`` then counts the abandoned units).
        """
        self._active -= 1
        self.unreadable.append(addr)
        if self.on_unreadable is not None:
            self.on_unreadable(self, step, addr)
        else:
            self.abort()
            self.controller.declare_data_loss(
                f"unreadable sector at disk {addr.disk} offset"
                f" {addr.offset} during rebuild of"
                f" ({step.lost.disk}, {step.lost.offset})"
            )
        if not self._aborted:
            self.skipped_steps += 1
            self._refill_slot()

    def _maybe_finish(self) -> None:
        if (
            self._exhausted
            and not self._aborted
            and self._active == 0
            and self._pending_issues == 0
        ):
            self._finish()

    def _finish(self) -> None:
        if self.finished_ms is not None:
            return
        self.finished_ms = self.controller.engine.now
        self.controller.finish_reconstruction()
        if self.on_finished is not None:
            self.on_finished(self.duration_ms)

    @property
    def duration_ms(self) -> float:
        if self.started_ms is None or self.finished_ms is None:
            raise SimulationError("reconstruction has not finished")
        return self.finished_ms - self.started_ms
