"""NVRAM-style dirty-stripe region log (the write-hole journal).

The §4.2 write variants update data and parity in separate physical
phases, so a controller crash between (or inside) those phases leaves a
stripe's parity inconsistent with its data — the classic RAID *write
hole*.  Real controllers close it with a small battery-backed region log:
before any write-plan phase issues, the stripes the plan will touch are
marked dirty in NVRAM; when the last phase completes they are cleared.
After a crash the log names exactly the stripes whose parity is suspect,
so recovery (:mod:`repro.array.resync`) rewrites parity for those
stripes only instead of sweeping the whole array.

:class:`StripeJournal` models that log.  It is pure bookkeeping plus one
cost knob: ``latency_ms`` is charged on the engine clock before the
write's first phase launches (the NVRAM append), which is what makes the
journal's overhead visible in response-time curves.  Entries are
reference counted because overlapping in-flight writes can share a
stripe; the log survives a power loss by construction (it *is* the
NVRAM), so after :meth:`ArrayController.crash` the dirty set names the
torn writes' stripes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import ConfigurationError, SimulationError


class StripeJournal:
    """Reference-counted dirty-stripe set with an NVRAM append cost.

    >>> journal = StripeJournal(latency_ms=0.05)
    >>> journal.mark([3, 4]); journal.mark([4])
    >>> journal.dirty_stripes()
    [3, 4]
    >>> journal.clear([4]); journal.dirty_stripes()
    [3, 4]
    >>> journal.clear([3, 4]); journal.dirty_stripes()
    []
    """

    def __init__(self, latency_ms: float = 0.05):
        if latency_ms < 0:
            raise ConfigurationError(
                f"negative journal latency {latency_ms}"
            )
        self.latency_ms = latency_ms
        self._dirty: Dict[int, int] = {}
        self.marks = 0
        self.clears = 0
        self.peak_dirty = 0

    def mark(self, stripes: Iterable[int]) -> None:
        """Record the stripes of one write plan as dirty (NVRAM append)."""
        dirty = self._dirty
        for stripe in stripes:
            dirty[stripe] = dirty.get(stripe, 0) + 1
        self.marks += 1
        if len(dirty) > self.peak_dirty:
            self.peak_dirty = len(dirty)

    def clear(self, stripes: Iterable[int]) -> None:
        """Drop one write plan's marks (its last phase completed)."""
        dirty = self._dirty
        for stripe in stripes:
            count = dirty.get(stripe)
            if count is None:
                raise SimulationError(
                    f"journal clear of clean stripe {stripe}"
                )
            if count == 1:
                del dirty[stripe]
            else:
                dirty[stripe] = count - 1
        self.clears += 1

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def is_dirty(self, stripe: int) -> bool:
        return stripe in self._dirty

    def dirty_stripes(self) -> List[int]:
        """The suspect set a post-crash resync must replay, sorted."""
        return sorted(self._dirty)

    def reset(self) -> None:
        """Empty the log (recovery finished replaying it)."""
        self._dirty.clear()

    def to_dict(self) -> dict:
        return {
            "latency_ms": self.latency_ms,
            "marks": self.marks,
            "clears": self.clears,
            "dirty": self.dirty_count,
            "peak_dirty": self.peak_dirty,
        }
