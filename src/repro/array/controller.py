"""The array controller: executes access plans on mechanical drives.

One :class:`DiskServer` per spindle owns a scheduler queue and serializes
service; the controller fans each logical access's current phase out to the
servers and advances to the next phase when all its operations complete.
Response time is measured from ``submit`` to final completion, matching the
paper's "average time elapsed from the moment a client requests a logical
access, to the moment the array completes the access".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from repro.array.raidops import (
    AccessPlan,
    ArrayMode,
    RebuiltPredicate,
    plan_access,
)
from repro.backoff import capped_exponential
from repro.disk.drive import DiskDrive, DiskRequest, TransientErrorModel
from repro.disk.hp2247 import make_hp2247
from repro.disk.scheduler import Scheduler, make_scheduler
from repro.disk.stats import DiskOpClass, DiskStats
from repro.errors import ConfigurationError, SimulationError
from repro.layouts.address import Role
from repro.layouts.base import Layout
from repro.sim.engine import SimulationEngine
from repro.sim.instrument import TraceRecorder, engine_snapshot

#: Access ids at or above this value are transient-error escalation
#: traffic (on-the-fly sector reconstruction after a retry budget is
#: exhausted); distinct from rebuild (``1 << 40``) and resync
#: (``1 << 41``) ids.
ESCALATION_ID_BASE = 1 << 42

#: Access ids at or above this value are hedge traffic: speculative
#: stripe-peer reads racing a slow primary operation (tail tolerance).
HEDGE_ID_BASE = 1 << 43

#: Access ids at or above this value are end-to-end verification
#: traffic: write-verify read-backs and their repair rewrites.
VERIFY_ID_BASE = 1 << 44


@dataclass(frozen=True)
class RetryPolicy:
    """Controller-level recovery knobs for transient I/O errors.

    A failed operation is retried up to ``retries`` times with capped
    exponential backoff (``backoff_base_ms * 2**(attempt-1)``, capped at
    ``backoff_cap_ms``).  ``op_timeout_ms``, when set, treats an
    operation whose queueing + service exceeded the timeout as failed
    even if the drive eventually returned it.  When the budget is
    exhausted: client reads escalate to on-the-fly reconstruction from
    the stripe's surviving members (plus a repair rewrite of the bad
    sector); client writes succeed via firmware sector remapping;
    background (raw) operations give up and complete as-is — they never
    escalate, which bounds recursion since escalation itself issues raw
    operations.
    """

    retries: int = 3
    backoff_base_ms: float = 1.0
    backoff_cap_ms: float = 50.0
    op_timeout_ms: Optional[float] = None

    def __post_init__(self):
        if self.retries < 0:
            raise ConfigurationError(f"negative retries {self.retries}")
        if self.backoff_base_ms < 0:
            raise ConfigurationError(
                f"negative backoff base {self.backoff_base_ms}"
            )
        if self.backoff_cap_ms < self.backoff_base_ms:
            raise ConfigurationError(
                "backoff cap below base:"
                f" {self.backoff_cap_ms} < {self.backoff_base_ms}"
            )
        if self.op_timeout_ms is not None and self.op_timeout_ms <= 0:
            raise ConfigurationError(
                f"op timeout must be positive, got {self.op_timeout_ms}"
            )


@dataclass(frozen=True)
class HedgePolicy:
    """Tail-tolerance knobs: slow-disk detection plus hedged reads.

    A client read that has not completed ``deferral_ms`` after issue is
    *hedged*: the controller launches the on-the-fly reconstruction path
    (reads of the other stripe members) and delivers whichever side
    finishes first, with cancel-the-loser accounting in
    :class:`IoRecoveryStats`.  Reads aimed at a quarantined disk skip
    the deferral and hedge immediately.

    The detector half: each completed operation updates its disk's
    latency EWMA (``ewma_alpha``); once a disk has ``min_samples``
    observations, its EWMA is compared to the array-median EWMA.
    ``hysteresis`` consecutive observations above
    ``quarantine_factor`` x median quarantine the disk; ``hysteresis``
    consecutive observations back at or below ``unquarantine_factor`` x
    median release it.
    """

    deferral_ms: float = 30.0
    ewma_alpha: float = 0.2
    quarantine_factor: float = 3.0
    unquarantine_factor: float = 1.5
    min_samples: int = 8
    hysteresis: int = 4

    def __post_init__(self):
        if self.deferral_ms <= 0:
            raise ConfigurationError(
                f"hedge deferral must be positive, got {self.deferral_ms}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"EWMA alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.quarantine_factor <= 1.0:
            raise ConfigurationError(
                "quarantine factor must exceed 1.0, got"
                f" {self.quarantine_factor}"
            )
        if not 0.0 < self.unquarantine_factor <= self.quarantine_factor:
            raise ConfigurationError(
                "unquarantine factor must be in (0, quarantine_factor],"
                f" got {self.unquarantine_factor}"
            )
        if self.min_samples < 1 or self.hysteresis < 1:
            raise ConfigurationError(
                "min_samples and hysteresis must be >= 1"
            )


class SlowDiskDetector:
    """Per-disk latency EWMA vs. the array median, with hysteresis.

    Pure bookkeeping — it never touches the engine or reorders events,
    so attaching it cannot change simulation timing; only the hedging
    machinery *reads* its quarantine verdicts.
    """

    def __init__(self, n_disks: int, policy: HedgePolicy):
        self.policy = policy
        self.ewma: List[Optional[float]] = [None] * n_disks
        self.samples = [0] * n_disks
        self.quarantined = [False] * n_disks
        self._streak = [0] * n_disks
        self.quarantines = 0
        self.unquarantines = 0

    def observe(self, disk: int, latency_ms: float) -> None:
        """Fold one completed operation's issue-to-completion latency."""
        previous = self.ewma[disk]
        if previous is None:
            self.ewma[disk] = latency_ms
        else:
            self.ewma[disk] = previous + self.policy.ewma_alpha * (
                latency_ms - previous
            )
        self.samples[disk] += 1
        self._evaluate(disk)

    def _median_ewma(self) -> Optional[float]:
        values = sorted(
            ewma
            for disk, ewma in enumerate(self.ewma)
            if ewma is not None
            and self.samples[disk] >= self.policy.min_samples
        )
        if not values:
            return None
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])

    def _evaluate(self, disk: int) -> None:
        if self.samples[disk] < self.policy.min_samples:
            return
        median = self._median_ewma()
        if median is None or median <= 0.0:
            return
        ratio = self.ewma[disk] / median
        policy = self.policy
        if not self.quarantined[disk]:
            if ratio > policy.quarantine_factor:
                self._streak[disk] += 1
                if self._streak[disk] >= policy.hysteresis:
                    self.quarantined[disk] = True
                    self._streak[disk] = 0
                    self.quarantines += 1
            else:
                self._streak[disk] = 0
        else:
            if ratio <= policy.unquarantine_factor:
                self._streak[disk] += 1
                if self._streak[disk] >= policy.hysteresis:
                    self.quarantined[disk] = False
                    self._streak[disk] = 0
                    self.unquarantines += 1
            else:
                self._streak[disk] = 0

    def is_quarantined(self, disk: int) -> bool:
        return self.quarantined[disk]

    def report(self) -> dict:
        return {
            "quarantined": [
                disk
                for disk, flagged in enumerate(self.quarantined)
                if flagged
            ],
            "quarantines": self.quarantines,
            "unquarantines": self.unquarantines,
            "samples": list(self.samples),
        }


@dataclass
class IoRecoveryStats:
    """Counters for the transient-error recovery machinery.

    The hedge counters ride along but are emitted only on request
    (``include_hedges``): the base eight keys are pinned in committed
    bench baselines that predate hedging.
    """

    transient_failures: int = 0
    timeouts: int = 0
    retries: int = 0
    remapped_writes: int = 0
    escalated_reads: int = 0
    repaired_sectors: int = 0
    escalation_failures: int = 0
    raw_give_ups: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    hedges_lost: int = 0
    hedge_aborts: int = 0

    def to_dict(self, include_hedges: bool = False) -> dict:
        data = {
            "transient_failures": self.transient_failures,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "remapped_writes": self.remapped_writes,
            "escalated_reads": self.escalated_reads,
            "repaired_sectors": self.repaired_sectors,
            "escalation_failures": self.escalation_failures,
            "raw_give_ups": self.raw_give_ups,
        }
        if include_hedges:
            data["hedges_launched"] = self.hedges_launched
            data["hedges_won"] = self.hedges_won
            data["hedges_lost"] = self.hedges_lost
            data["hedge_aborts"] = self.hedge_aborts
        return data


@dataclass
class ChecksumStats:
    """Counters for the end-to-end checksum/write-verify defenses.

    Emitted in :meth:`ArrayController.instrumentation_record` only when
    checksums or a corruption model are active, so pinned baselines that
    predate the defenses stay byte-identical.
    """

    validations: int = 0       # client read requests validated
    mismatches: int = 0        # corrupt cells caught by checksum/version
    demotions: int = 0         # client reads demoted to media-error repair
    repairs: int = 0           # corrupt cells rewritten from redundancy
    stale_rmw_detected: int = 0  # RMW pre-reads stopped before the delta
    verify_reads: int = 0      # write-verify read-back operations
    unrepairable: int = 0      # detected cells with no redundancy left

    def to_dict(self) -> dict:
        return {
            "validations": self.validations,
            "mismatches": self.mismatches,
            "demotions": self.demotions,
            "repairs": self.repairs,
            "stale_rmw_detected": self.stale_rmw_detected,
            "verify_reads": self.verify_reads,
            "unrepairable": self.unrepairable,
        }


@dataclass(frozen=True)
class LogicalAccess:
    """A client request: ``unit_count`` contiguous data units."""

    access_id: int
    first_unit: int
    unit_count: int
    is_write: bool


@dataclass
class _InFlight:
    access: LogicalAccess
    plan: AccessPlan
    submitted_ms: float
    on_complete: Callable[[LogicalAccess, float], None]
    phase: int = 0
    outstanding: int = 0
    #: Stripes a write touches — populated only when a journal or oracle
    #: is attached (the plain hot path never computes it).
    stripes: Optional[List[int]] = None
    #: Write-verify read-back already ran for this write access.
    verified: bool = False


#: Shared single-phase plan stub for the fused fault-free read path in
#: :meth:`ArrayController.submit`.  Such accesses dispatch their disk
#: requests directly (no per-access plan object is built); the stub only
#: exists so ``_advance`` sees a completed one-phase plan.  Never passed
#: to ``_launch_phase``.
_FUSED_READ_PLAN = AccessPlan(phases=[[]])


class DiskServer:
    """One drive + queue + busy state, attached to the engine.

    Tracks its queue depth (queued + in service) with a high-water mark;
    when ``record_timelines`` is set, every depth change and service start
    is appended to ``queue_timeline`` / ``busy_timeline`` as ``(time_ms,
    value)`` pairs.  An attached :class:`TraceRecorder` sees every
    serviced request.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        drive: DiskDrive,
        scheduler: Scheduler,
        on_done: Callable[[int, DiskRequest, bool], None],
        disk_id: int = 0,
        record_timelines: bool = False,
    ):
        self.engine = engine
        self.drive = drive
        self.scheduler = scheduler
        self.stats = DiskStats()
        self.busy = False
        self.failed = False
        self.disk_id = disk_id
        self.queue_depth = 0
        self.queue_high_water = 0
        self.queue_timeline: Optional[List[tuple]] = (
            [] if record_timelines else None
        )
        self.busy_timeline: Optional[List[tuple]] = (
            [] if record_timelines else None
        )
        self.trace: Optional[TraceRecorder] = None
        self._on_done = on_done
        # The request in service (one at a time: `busy` gates the next
        # pop until its completion fires).  Stashing it here lets the
        # completion event be the *bound method itself* instead of a
        # fresh ``partial`` per operation.
        self._in_service: Optional[DiskRequest] = None
        self._in_service_failed = False
        # Engine.schedule never changes identity for the server's
        # lifetime; one bound-method stash saves two attribute hops per
        # scheduled completion.  Same for the scheduler's deque (created
        # once, mutated in place) and its lone-pop policy flag, both
        # read on every submission.
        self._schedule = engine.schedule
        self._squeue = scheduler._queue
        self._direct_service = scheduler.pops_lone_item_fifo

    def _note_depth(self, delta: int) -> None:
        self.queue_depth += delta
        if self.queue_depth > self.queue_high_water:
            self.queue_high_water = self.queue_depth
        if self.queue_timeline is not None:
            self.queue_timeline.append((self.engine.now, self.queue_depth))

    def submit(self, request: DiskRequest) -> None:
        if self.failed:
            raise SimulationError("request routed to a failed disk")
        depth = self.queue_depth + 1
        self.queue_depth = depth
        if depth > self.queue_high_water:
            self.queue_high_water = depth
        if self.queue_timeline is not None:
            self.queue_timeline.append((self.engine.now, depth))
        if self.busy:
            self.scheduler.push(request)
            return
        # Idle server, empty queue: every policy (bar LOOK, which keeps
        # sweep state) would pop this exact request straight back out —
        # skip the scheduler round trip and service it directly.  The
        # dominant case at moderate load.
        if self._squeue or not self._direct_service:
            self.scheduler.push(request)
            self._start_next()
            return
        self.busy = True
        self._service(request)

    def _start_next(self) -> None:
        # Empty-queue check here, not in pop(): every policy returns
        # None on an empty queue without touching its state, and most
        # completions find nothing queued.
        if not self._squeue:
            self.busy = False
            return
        request = self.scheduler.pop(self.drive.cylinder)
        if request is None:
            self.busy = False
            return
        self.busy = True
        self._service(request)

    def _service(self, request: DiskRequest) -> None:
        drive = self.drive
        now = self.engine.now
        record = drive.service(request, now)
        if self.trace is not None:
            self.trace.record(self.disk_id, now, request, record)
        # Inlined stats.record + classify_operation: one physical op
        # runs through here per service, and the call overhead alone is
        # measurable at hot-path event rates.  The record is a tuple —
        # unpacking beats six descriptor lookups.
        seek_ms, latency_ms, transfer_ms, cyl_changed, head_changed, failed = (
            record
        )
        stats = self.stats
        access_id = request.access_id
        local = stats.last_access_id == access_id
        stats.last_access_id = access_id
        if not local:
            op_class = DiskOpClass.NON_LOCAL_SEEK
        elif cyl_changed:
            op_class = DiskOpClass.CYLINDER_SWITCH
        elif head_changed:
            op_class = DiskOpClass.TRACK_SWITCH
        else:
            op_class = DiskOpClass.NO_SWITCH
        total_ms = seek_ms + latency_ms + transfer_ms
        stats.operations += 1
        stats.by_class[op_class] += 1
        stats.seek_ms += seek_ms
        stats.latency_ms += latency_ms
        stats.transfer_ms += transfer_ms
        stats.busy_ms += total_ms
        if self.busy_timeline is not None:
            self.busy_timeline.append((now, stats.busy_ms))
        self._in_service = request
        self._in_service_failed = failed
        self._schedule(total_ms, self._complete)

    def _complete(self) -> None:
        request = self._in_service
        self.queue_depth -= 1
        if self.queue_timeline is not None:
            self.queue_timeline.append((self.engine.now, self.queue_depth))
        self._on_done(self.disk_id, request, self._in_service_failed)
        self._start_next()

    def crash_reset(self) -> int:
        """Power loss: queued and in-service operations vanish.

        The engine's pending events are cleared separately (by the crash
        injector), so the in-service completion never fires; this drops
        the queue and busy state so a restarted controller starts clean.
        Returns the number of operations lost.
        """
        dropped = self.scheduler.clear()
        if self.busy:
            dropped += 1
        self.busy = False
        dropped_depth = self.queue_depth
        self.queue_depth = 0
        if dropped_depth and self.queue_timeline is not None:
            self.queue_timeline.append((self.engine.now, 0))
        return dropped


class ArrayController:
    """A simulated disk array.

    >>> from repro.sim.engine import SimulationEngine
    >>> from repro.layouts import make_layout
    >>> engine = SimulationEngine()
    >>> array = ArrayController(engine, make_layout("raid5", 13, 13))
    >>> array.addressable_data_units > 1_000_000
    True
    """

    def __init__(
        self,
        engine: SimulationEngine,
        layout: Layout,
        drive_factory: Callable[[], DiskDrive] = make_hp2247,
        scheduler_name: str = "sstf",
        scheduler_window: int = 20,
        stripe_unit_kb: int = 8,
        sector_bytes: int = 512,
        coalesce: bool = True,
        record_timelines: bool = False,
    ):
        if stripe_unit_kb < 1:
            raise ConfigurationError("stripe unit must be >= 1 KB")
        self.coalesce = coalesce
        self.engine = engine
        self.layout = layout
        # The mapping plans are made against.  Starts as ``layout``; after
        # a completed distributed-sparing rebuild survives a *second*
        # failure, it becomes a RelocatedView folding the finished
        # relocation in (see :meth:`relocate_and_fail`).
        self._plan_layout = layout
        self.stripe_unit_sectors = stripe_unit_kb * 1024 // sector_bytes
        self.mode = ArrayMode.FAULT_FREE
        self.failed_disk: Optional[int] = None
        #: Every disk that has ever failed, in failure order (history —
        #: a replaced spindle stays listed).
        self.failed_disks: List[int] = []
        self.data_loss_reason: Optional[str] = None
        self._rebuilt: Optional[RebuiltPredicate] = None
        self.servers: List[DiskServer] = []
        for disk_id in range(layout.n):
            drive = drive_factory()
            scheduler = make_scheduler(
                scheduler_name, drive.geometry, window=scheduler_window
            )
            self.servers.append(
                DiskServer(
                    engine,
                    drive,
                    scheduler,
                    self._request_done,
                    disk_id=disk_id,
                    record_timelines=record_timelines,
                )
            )
        units_per_disk = (
            self.servers[0].drive.geometry.total_sectors
            // self.stripe_unit_sectors
        )
        self.periods = units_per_disk // layout.period
        if self.periods < 1:
            raise ConfigurationError(
                "disk too small for one layout pattern"
            )
        self.addressable_data_units = (
            self.periods * layout.data_units_per_period
        )
        self._in_flight: Dict[int, _InFlight] = {}
        self._raw_callbacks: Dict[int, Callable[[], None]] = {}
        self._raw_counter = 0
        self.completed_accesses = 0
        #: Crash-consistency attachments — all default-off, so the plain
        #: hot path (and its byte-identical golden traces) never pays.
        self.journal = None  # StripeJournal
        self.oracle = None  # IntegrityOracle
        #: ``hook(access, phase, total_phases)`` fired between a plan's
        #: phases (crash injectors place surgical crashes here).
        self.on_phase_boundary: Optional[
            Callable[[LogicalAccess, int, int], None]
        ] = None
        self.retry_policy: Optional[RetryPolicy] = None
        self.io_stats = IoRecoveryStats()
        self._track_deadlines = False
        self._op_attempts: Dict[Tuple[int, DiskRequest], int] = {}
        self._op_submitted: Dict[Tuple[int, DiskRequest], float] = {}
        self._escalations = 0
        self.crashes = 0
        self.torn_writes = 0
        #: Tail-tolerance attachments (default-off like the journal):
        #: per-op submit times are tracked when either deadlines or
        #: hedging need them.
        self.hedge_policy: Optional[HedgePolicy] = None
        self.slow_disk_detector: Optional[SlowDiskDetector] = None
        self._track_ops = False
        self._hedges: Dict[Tuple[int, DiskRequest], dict] = {}
        self._hedge_counter = 0
        #: Silent-corruption attachments (default-off like the journal):
        #: the corruption model injects lost/misdirected writes and bit
        #: rot; ``checksums`` arms per-stripe-unit checksum+write-version
        #: validation on every delivered read.
        self.corruption = None  # CorruptionModel
        self.checksums = False
        self.write_verify = False
        self.checksum_latency_ms = 0.0
        self.checksum_stats = ChecksumStats()
        self._verify_ops = 0
        self._checksum_escalated: set = set()

    # ------------------------------------------------------------------
    # Failure control.
    # ------------------------------------------------------------------

    @property
    def plan_layout(self):
        """The mapping accesses and rebuild sweeps are planned against."""
        return self._plan_layout

    def fail_disk(self, disk: int) -> None:
        """Enter degraded mode (rebuild not yet started).

        Operations already queued on the dying disk are allowed to
        complete (they were in flight when the failure struck); accesses
        planned before the failure that have not yet issued an operation
        to it simply drop that operation (see :meth:`_launch_phase`).
        """
        if not 0 <= disk < self.layout.n:
            raise ConfigurationError(f"no disk {disk}")
        if self.mode is not ArrayMode.FAULT_FREE:
            raise SimulationError(
                f"cannot fail disk {disk}: array already {self.mode.value}"
            )
        self.failed_disk = disk
        self.failed_disks.append(disk)
        self.servers[disk].failed = True
        self.mode = ArrayMode.DEGRADED

    def fail_subsequent_disk(self, disk: int) -> None:
        """A further disk dies while the array is already wounded.

        Only the server flag and the failure history change — the caller
        (the lifecycle) decides what the failure *means*: data loss, a
        survivable mid-rebuild hit (replacement spindle + requeued repair
        work), or a fresh degraded cycle after relocation.  ``failed_disk``
        keeps naming the disk the current repair cycle is about.
        """
        if not 0 <= disk < self.layout.n:
            raise ConfigurationError(f"no disk {disk}")
        if self.mode is ArrayMode.FAULT_FREE:
            raise SimulationError(
                "use fail_disk for the first failure of a healthy array"
            )
        if self.servers[disk].failed:
            raise SimulationError(f"disk {disk} is already failed")
        self.failed_disks.append(disk)
        self.servers[disk].failed = True

    def declare_data_loss(self, reason: str) -> None:
        """Some unit has no surviving or reconstructible copy: terminal.

        The array stops planning accesses (``plan_access`` raises) but the
        engine keeps draining in-flight operations, so the simulation ends
        cleanly rather than mid-seek.
        """
        if self.mode is ArrayMode.DATA_LOSS:
            return
        self.mode = ArrayMode.DATA_LOSS
        self.data_loss_reason = reason
        self._rebuilt = None

    def install_replacement(self) -> None:
        """A fresh spindle takes the failed disk's slot (no sparing).

        The slot becomes writable again so the rebuild sweep can fill it;
        access planning still treats the disk's *contents* as lost until
        the reconstruction frontier passes each cell.
        """
        if self.failed_disk is None:
            raise SimulationError("no failed disk to replace")
        self.servers[self.failed_disk].failed = False

    def install_replacement_for(self, disk: int) -> None:
        """A fresh spindle takes ``disk``'s slot (second-failure repair).

        Used when a mid-rebuild second failure is survivable: the first
        disk's repair cycle continues, and the second disk's slot becomes
        writable so requeued repair steps can fill it.
        """
        if not self.servers[disk].failed:
            raise SimulationError(f"disk {disk} has not failed")
        self.servers[disk].failed = False

    def relocate_and_fail(self, disk: int) -> None:
        """Fold the finished relocation into the mapping; ``disk`` fails.

        From post-reconstruction (distributed sparing, spare space spent)
        a new failure starts an ordinary degraded cycle — but against the
        *relocated* mapping, in which the first failed disk no longer
        exists and no spare space remains.  The follow-up rebuild must
        therefore target a replacement spindle.
        """
        from repro.layouts.relocated import RelocatedView

        if self.mode is not ArrayMode.POST_RECONSTRUCTION:
            raise SimulationError(
                "relocation is only complete in post-reconstruction mode,"
                f" not {self.mode.value}"
            )
        if self.failed_disk is None or disk == self.failed_disk:
            raise SimulationError(
                f"disk {disk} cannot fail again: it is the relocated disk"
            )
        if self.servers[disk].failed:
            raise SimulationError(f"disk {disk} is already failed")
        self._plan_layout = RelocatedView(self._plan_layout, self.failed_disk)
        self.failed_disk = disk
        self.failed_disks.append(disk)
        self.servers[disk].failed = True
        self._rebuilt = None
        self.mode = ArrayMode.DEGRADED

    def enter_reconstruction(self, rebuilt: RebuiltPredicate) -> None:
        """Enter reconstruction mode: a background rebuild sweep is live.

        ``rebuilt(offset)`` is the sweep's frontier — it must return True
        once the failed disk's cell at ``offset`` is safely rebuilt (into
        its spare cell, or onto a replacement spindle); new plans then
        read/write the rebuilt copy directly.
        """
        if self.mode is not ArrayMode.DEGRADED:
            raise SimulationError(
                f"reconstruction must start from degraded mode,"
                f" not {self.mode.value}"
            )
        self._rebuilt = rebuilt
        self.mode = ArrayMode.RECONSTRUCTION

    def resume_reconstruction(self, rebuilt: RebuiltPredicate) -> None:
        """Re-point the live rebuild frontier at a fresh sweep.

        A crash restart resumes an interrupted rebuild with a new
        reconstructor seeded from the old frontier; the mode stays
        RECONSTRUCTION throughout — only the predicate changes hands.
        """
        if self.mode is not ArrayMode.RECONSTRUCTION:
            raise SimulationError(
                f"no reconstruction to resume in {self.mode.value} mode"
            )
        self._rebuilt = rebuilt

    def finish_reconstruction(self) -> None:
        """The rebuild completed: every lost unit has a live copy again.

        With distributed sparing the array runs on in post-reconstruction
        mode (accesses redirected to spare cells); a replacement-disk
        rebuild restores the original mapping, so the array returns to
        fault-free planning.
        """
        if self.mode not in (ArrayMode.DEGRADED, ArrayMode.RECONSTRUCTION):
            raise SimulationError("no reconstruction in progress")
        self._rebuilt = None
        if self._plan_layout.has_sparing:
            self.mode = ArrayMode.POST_RECONSTRUCTION
        else:
            self.servers[self.failed_disk].failed = False
            self.failed_disk = None
            self.mode = ArrayMode.FAULT_FREE

    # ------------------------------------------------------------------
    # Crash consistency and transient-error recovery attachments.
    # ------------------------------------------------------------------

    def attach_journal(self, journal):
        """Log write-plan stripes in ``journal`` (NVRAM region log)."""
        self.journal = journal
        return journal

    def attach_oracle(self, oracle):
        """Check every access against ``oracle`` (integrity shadow)."""
        self.oracle = oracle
        return oracle

    def attach_corruption(self, model):
        """Draw disk-originated silent corruption from ``model``.

        An attached model with all-zero rates draws nothing and keeps
        results byte-identical (the model's determinism contract).
        """
        self.corruption = model
        return model

    def enable_checksums(
        self,
        write_verify: bool = False,
        metadata_latency_ms: float = 0.0,
    ) -> None:
        """Arm per-stripe-unit checksum + write-version validation.

        Every delivered client read is validated against the metadata; a
        mismatch is demoted to a media error and repaired from the
        stripe's redundancy before the read completes.  RMW pre-reads
        get the same validation, which is what blocks parity pollution:
        stale old-data is caught *before* the old-data/old-parity
        subtraction.  ``write_verify`` adds a read-back of every written
        cell before the write acks (charged on the engine clock);
        ``metadata_latency_ms`` is the per-write metadata-persist cost,
        charged like the journal's NVRAM append.
        """
        if metadata_latency_ms < 0:
            raise ConfigurationError(
                f"negative checksum latency {metadata_latency_ms}"
            )
        self.checksums = True
        self.write_verify = write_verify
        self.checksum_latency_ms = metadata_latency_ms

    def set_retry_policy(self, policy: Optional[RetryPolicy]) -> None:
        self.retry_policy = policy
        self._track_deadlines = (
            policy is not None and policy.op_timeout_ms is not None
        )
        self._track_ops = (
            self._track_deadlines or self.hedge_policy is not None
        )

    def set_hedge_policy(self, policy: Optional[HedgePolicy]) -> None:
        """Install (or remove) tail-tolerant hedged reads.

        Installing a policy attaches a :class:`SlowDiskDetector` and
        disables the fused fault-free read path (hedges need the
        per-op completion bookkeeping that path skips).
        """
        self.hedge_policy = policy
        self.slow_disk_detector = (
            SlowDiskDetector(self.layout.n, policy)
            if policy is not None
            else None
        )
        self._track_ops = self._track_deadlines or policy is not None

    def enable_transient_errors(
        self,
        rate: float,
        seed: object,
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        """Inject seeded per-operation transient failures on every drive.

        Each disk draws from its own named stream
        (``"{seed}/transient-{disk}"``), so rates and outcomes are stable
        under array-size changes.  A retry policy is installed alongside
        (the default one unless ``policy`` is given) — injecting errors
        with no recovery path would just lose operations.
        """
        for disk_id, server in enumerate(self.servers):
            server.drive.transient_errors = TransientErrorModel(
                rate, f"{seed}/transient-{disk_id}"
            )
        if policy is not None:
            self.set_retry_policy(policy)
        elif self.retry_policy is None:
            self.set_retry_policy(RetryPolicy())

    def disable_transient_errors(self) -> None:
        """End an error storm: drives stop drawing transient failures.

        The retry policy stays installed — recovering an operation issued
        during the storm must still work after it passes.
        """
        for server in self.servers:
            server.drive.transient_errors = None

    def crash(self) -> dict:
        """Volatile controller state dies (power loss / controller panic).

        Every in-flight write becomes a torn write: its stripes may have
        some cells new and some old, so their parity is untrustworthy.
        Queued operations vanish with the disk servers' state.  What
        survives: the journal (NVRAM), media state, platter contents, and
        mode/failure bookkeeping (re-derived from config on a real
        restart).  The caller is responsible for
        ``engine.clear_pending()`` — events scheduled by *other* actors
        (client arrivals, fault timers) die in the same power loss.

        Returns ``{"accesses", "stripes", "dropped_ops"}`` — the torn
        write count, the omniscient sorted list of their stripes (ground
        truth for resync), and operations lost from queues.
        """
        layout = self._plan_layout
        torn_stripes: set = set()
        torn_accesses = 0
        for access_id, state in self._in_flight.items():
            access = state.access
            if not access.is_write:
                continue
            torn_accesses += 1
            if state.stripes is not None:
                torn_stripes.update(state.stripes)
            else:
                stripe_of = layout.stripe_of_data_unit
                torn_stripes.update(
                    stripe_of(u)
                    for u in range(
                        access.first_unit,
                        access.first_unit + access.unit_count,
                    )
                )
            if self.oracle is not None:
                self.oracle.tear_write(access_id)
        self._in_flight.clear()
        self._raw_callbacks.clear()
        self._op_attempts.clear()
        self._op_submitted.clear()
        self._hedges.clear()
        self._checksum_escalated.clear()
        dropped_ops = 0
        for server in self.servers:
            dropped_ops += server.crash_reset()
        self.crashes += 1
        self.torn_writes += torn_accesses
        return {
            "accesses": torn_accesses,
            "stripes": sorted(torn_stripes),
            "dropped_ops": dropped_ops,
        }

    # ------------------------------------------------------------------
    # Access submission.
    # ------------------------------------------------------------------

    def submit(
        self,
        access: LogicalAccess,
        on_complete: Callable[[LogicalAccess, float], None],
    ) -> None:
        """Plan and launch a logical access; ``on_complete(access,
        response_ms)`` fires when the last physical operation finishes."""
        if access.first_unit + access.unit_count > self.addressable_data_units:
            raise ConfigurationError(
                f"access beyond addressable range: {access}"
            )
        if access.access_id in self._in_flight:
            raise SimulationError(f"duplicate access id {access.access_id}")
        if self.mode is ArrayMode.DATA_LOSS:
            raise SimulationError(
                "the array has lost data"
                + (
                    f" ({self.data_loss_reason})"
                    if self.data_loss_reason
                    else ""
                )
                + "; no further accesses can be submitted"
            )
        if (
            not access.is_write
            and self.mode is ArrayMode.FAULT_FREE
            and self.retry_policy is None
            and self.hedge_policy is None
        ):
            # Fused fault-free read (the dominant hot path): one phase,
            # straight translation, no recovery bookkeeping.  Build the
            # per-disk requests directly from the flat cell table,
            # skipping the plan/UnitOp/phase machinery.  Byte-identical
            # to the general path: the planner's fault-free branch emits
            # exactly one op per unit in cell order, and the coalescer
            # groups ops by disk in first-occurrence order, sorts each
            # group's offsets, and merges physically contiguous runs —
            # which is exactly what this loop does (reads only, so the
            # (disk, is_write) group key degenerates to the disk).
            cells = self._plan_layout.data_unit_cells(
                access.first_unit, access.unit_count
            )
            unit_sectors = self.stripe_unit_sectors
            access_id = access.access_id
            requests = []
            append = requests.append
            if len(cells) == 1:
                # Single-unit access (the small-request workloads):
                # grouping and merging are identity operations.
                disk, offset = cells[0]
                append(
                    (
                        disk,
                        DiskRequest(
                            offset * unit_sectors,
                            unit_sectors,
                            False,
                            access_id,
                            0,
                        ),
                    )
                )
            elif not self.coalesce:
                for disk, offset in cells:
                    append(
                        (
                            disk,
                            DiskRequest(
                                offset * unit_sectors,
                                unit_sectors,
                                False,
                                access_id,
                                0,
                            ),
                        )
                    )
            else:
                by_disk: Dict[int, List[int]] = {}
                get = by_disk.get
                for disk, offset in cells:
                    offsets = get(disk)
                    if offsets is None:
                        by_disk[disk] = [offset]
                    else:
                        offsets.append(offset)
                for disk, offsets in by_disk.items():
                    if len(offsets) == 1:
                        append(
                            (
                                disk,
                                DiskRequest(
                                    offsets[0] * unit_sectors,
                                    unit_sectors,
                                    False,
                                    access_id,
                                    0,
                                ),
                            )
                        )
                        continue
                    offsets.sort()
                    run_start = offsets[0]
                    previous = offsets[0]
                    for i in range(1, len(offsets)):
                        offset = offsets[i]
                        if offset == previous + 1:
                            previous = offset
                            continue
                        append(
                            (
                                disk,
                                DiskRequest(
                                    run_start * unit_sectors,
                                    (previous - run_start + 1)
                                    * unit_sectors,
                                    False,
                                    access_id,
                                    0,
                                ),
                            )
                        )
                        run_start = offset
                        previous = offset
                    append(
                        (
                            disk,
                            DiskRequest(
                                run_start * unit_sectors,
                                (previous - run_start + 1) * unit_sectors,
                                False,
                                access_id,
                                0,
                            ),
                        )
                    )
            state = _InFlight(
                access=access,
                plan=_FUSED_READ_PLAN,
                submitted_ms=self.engine.now,
                on_complete=on_complete,
            )
            state.outstanding = len(requests)
            self._in_flight[access_id] = state
            servers = self.servers
            for disk, request in requests:
                servers[disk].submit(request)
            return
        plan = plan_access(
            self._plan_layout,
            access.first_unit,
            access.unit_count,
            access.is_write,
            mode=self.mode,
            failed_disk=self.failed_disk,
            rebuilt=self._rebuilt,
        )
        state = _InFlight(
            access=access,
            plan=plan,
            submitted_ms=self.engine.now,
            on_complete=on_complete,
        )
        journal = self.journal
        oracle = self.oracle
        if access.is_write and (journal is not None or oracle is not None):
            stripe_of = self._plan_layout.stripe_of_data_unit
            state.stripes = sorted(
                {
                    stripe_of(u)
                    for u in range(
                        access.first_unit,
                        access.first_unit + access.unit_count,
                    )
                }
            )
        self._in_flight[access.access_id] = state
        if oracle is not None:
            if access.is_write:
                oracle.begin_write(
                    access.access_id, access.first_unit, access.unit_count
                )
            elif self.failed_disk is not None and self.mode in (
                ArrayMode.DEGRADED,
                ArrayMode.RECONSTRUCTION,
            ):
                # Units on the failed disk will be served by on-the-fly
                # reconstruction through their parity chain.
                failed = self.failed_disk
                rebuilt = self._rebuilt
                address_of = self._plan_layout.data_unit_address
                for unit in range(
                    access.first_unit,
                    access.first_unit + access.unit_count,
                ):
                    addr = address_of(unit)
                    if addr.disk == failed and not (
                        rebuilt is not None and rebuilt(addr.offset)
                    ):
                        oracle.check_reconstructed_read(unit)
        delay = 0.0
        if journal is not None and state.stripes is not None:
            # NVRAM append: the dirty marks land (and cost latency_ms)
            # before the first phase may touch a platter.
            journal.mark(state.stripes)
            delay += journal.latency_ms
        if access.is_write and self.checksums:
            # Checksum + write-version metadata persist, charged the
            # same way as the journal append.
            delay += self.checksum_latency_ms
        if delay > 0:
            self.engine.schedule(
                delay,
                partial(self._launch_journaled, access.access_id),
            )
            return
        self._launch_phase(state)

    def _launch_journaled(self, access_id: int) -> None:
        state = self._in_flight.get(access_id)
        if state is None:
            return  # crashed during the journal append window
        self._launch_phase(state)

    def _launch_phase(self, state: _InFlight) -> None:
        phase = state.plan.phases[state.phase]
        if not phase:
            self._advance(state)
            return
        requests = self._phase_requests(state, phase)
        # A disk can fail *between* an access's phases: operations the
        # pre-failure plan aimed at the now-dead disk are dropped (the
        # controller of a real array would re-plan; response-time-wise the
        # access simply no longer waits on that spindle).
        live = [
            (disk, request)
            for disk, request in requests
            if not self.servers[disk].failed
        ]
        state.outstanding = len(live)
        if not live:
            self._advance(state)
            return
        if self._track_ops:
            now = self.engine.now
            for disk, request in live:
                self._op_submitted[(disk, request)] = now
        for disk, request in live:
            self.servers[disk].submit(request)
        if self.hedge_policy is not None:
            for disk, request in live:
                if not request.is_write:
                    self._arm_hedge(disk, request)

    def _phase_requests(self, state: _InFlight, phase):
        """Build per-disk requests, merging physically contiguous
        stripe-unit operations of the same type (RAIDframe-style
        coalescing) when enabled."""
        unit_sectors = self.stripe_unit_sectors
        access_id = state.access.access_id
        tag = state.phase
        if not self.coalesce:
            return [
                (
                    op[0],
                    DiskRequest(
                        op[1] * unit_sectors,
                        unit_sectors,
                        op[2],
                        access_id,
                        tag,
                    ),
                )
                for op in phase
            ]
        # Fast path: when no (disk, is_write) pair repeats there is
        # nothing to merge — emit one request per op in phase order,
        # which is exactly what the grouping below would produce (each
        # group has one member, and dict insertion order == phase
        # order).  Declustered layouts land almost every phase here.
        # Built in a single pass; the partial list is discarded on the
        # first repeated pair.
        seen = set()
        add = seen.add
        requests = []
        append = requests.append
        distinct = True
        for disk, offset, is_write in phase:
            pair = (disk, is_write)
            if pair in seen:
                distinct = False
                break
            add(pair)
            append(
                (
                    disk,
                    DiskRequest(
                        offset * unit_sectors,
                        unit_sectors,
                        is_write,
                        access_id,
                        tag,
                    ),
                )
            )
        if distinct:
            return requests
        by_disk: Dict[tuple, List[int]] = {}
        for op in phase:
            by_disk.setdefault((op.disk, op.is_write), []).append(op.offset)
        requests = []
        for (disk, is_write), offsets in by_disk.items():
            if len(offsets) == 1:
                # Declustered layouts land almost every op on its own
                # disk: nothing to merge.
                requests.append(
                    (
                        disk,
                        DiskRequest(
                            offsets[0] * unit_sectors,
                            unit_sectors,
                            is_write,
                            access_id,
                            tag,
                        ),
                    )
                )
                continue
            offsets.sort()
            run_start = offsets[0]
            previous = offsets[0]
            for offset in offsets[1:] + [None]:
                if offset is not None and offset == previous + 1:
                    previous = offset
                    continue
                length = previous - run_start + 1
                requests.append(
                    (
                        disk,
                        DiskRequest(
                            run_start * unit_sectors,
                            length * unit_sectors,
                            is_write,
                            access_id,
                            tag,
                        ),
                    )
                )
                if offset is not None:
                    run_start = offset
                    previous = offset
        return requests

    def submit_raw(
        self,
        disk: int,
        offset: int,
        is_write: bool,
        access_id: int,
        callback: Callable[[], None],
        tag: object = None,
    ) -> None:
        """Issue one background stripe-unit operation (rebuild traffic).

        ``callback`` fires on completion; ``access_id`` feeds the locality
        classification like any other traffic.
        """
        self._raw_counter += 1
        token = self._raw_counter
        self._raw_callbacks[token] = callback
        request = DiskRequest(
            lba=offset * self.stripe_unit_sectors,
            sectors=self.stripe_unit_sectors,
            is_write=is_write,
            access_id=access_id,
            tag=("raw", token, tag),
        )
        if self._track_ops:
            self._op_submitted[(disk, request)] = self.engine.now
        self.servers[disk].submit(request)

    # ------------------------------------------------------------------
    # Hedged reads (tail tolerance).
    # ------------------------------------------------------------------

    def _arm_hedge(self, disk: int, request: DiskRequest) -> None:
        """Watch one client read op: hedge it if it outlives the
        deferral timeout (immediately when the disk is quarantined)."""
        entry = {"state": "armed"}
        self._hedges[(disk, request)] = entry
        detector = self.slow_disk_detector
        if detector is not None and detector.is_quarantined(disk):
            self._launch_hedge(disk, request, entry)
            return
        self.engine.schedule(
            self.hedge_policy.deferral_ms,
            partial(self._maybe_hedge, disk, request, entry),
        )

    def _maybe_hedge(
        self, disk: int, request: DiskRequest, entry: dict
    ) -> None:
        if entry["state"] != "armed":
            return  # the primary already completed (or a crash cleared it)
        if self._hedges.get((disk, request)) is not entry:
            return
        self._launch_hedge(disk, request, entry)

    def _stripe_peers(self, disk: int, offset: int):
        """The other members of ``(disk, offset)``'s stripe, or None
        when the stripe has no redundancy left to reconstruct from
        (a member is failed, or sits on a replacement disk's
        not-yet-rebuilt region, or the cell is spare space)."""
        layout = self._plan_layout
        info = layout.locate(disk, offset)
        if info.role is Role.SPARE:
            return None
        failed_disk = self.failed_disk
        rebuilt = self._rebuilt
        members = []
        for a in layout.stripe_units(info.stripe).all_units():
            if a.disk == disk and a.offset == offset:
                continue
            if self.servers[a.disk].failed:
                return None
            if (
                a.disk == failed_disk
                and rebuilt is not None
                and not rebuilt(a.offset)
            ):
                # Replacement spindle installed, but this cell has not
                # been reached by the rebuild frontier yet.
                return None
            members.append(a)
        return members

    def _launch_hedge(
        self, disk: int, request: DiskRequest, entry: dict
    ) -> None:
        """Race the slow primary: read every other member of each unit's
        stripe and deliver the original op if reconstruction wins."""
        unit_sectors = self.stripe_unit_sectors
        first = request.lba // unit_sectors
        count = max(1, request.sectors // unit_sectors)
        plans = []
        for offset in range(first, first + count):
            members = self._stripe_peers(disk, offset)
            if not members:
                # No redundancy for some unit: the hedge cannot serve
                # this op, so the primary stays the only copy.
                self.io_stats.hedge_aborts += 1
                entry["state"] = "unhedgeable"
                return
            plans.append(members)
        entry["state"] = "hedged"
        self.io_stats.hedges_launched += 1
        self._hedge_counter += 1
        access_id = HEDGE_ID_BASE + self._hedge_counter
        pending = {"reads": sum(len(m) for m in plans)}

        def read_done() -> None:
            pending["reads"] -= 1
            if pending["reads"] == 0 and entry["state"] == "hedged":
                entry["state"] = "hedge-won"
                self.io_stats.hedges_won += 1
                self._deliver_hedged(request)

        for members in plans:
            for addr in members:
                self.submit_raw(
                    addr.disk,
                    addr.offset,
                    False,
                    access_id,
                    read_done,
                    tag="hedge-read",
                )

    def _deliver_hedged(self, request: DiskRequest) -> None:
        """The reconstruction side finished first: deliver the original
        op's completion (the primary's later arrival is swallowed)."""
        state = self._in_flight.get(request.access_id)
        if state is None:
            return  # the access crashed away mid-hedge
        state.outstanding -= 1
        if state.outstanding == 0:
            self._advance(state)

    # ------------------------------------------------------------------
    # Completion path (and transient-error recovery).
    # ------------------------------------------------------------------

    def _request_done(
        self, disk: int, request: DiskRequest, failed: bool
    ) -> None:
        if self._track_ops:
            submitted = self._op_submitted.pop((disk, request), None)
        else:
            submitted = None
        policy = self.retry_policy
        if policy is not None:
            if (
                self._track_deadlines
                and not failed
                and submitted is not None
                and self.engine.now - submitted > policy.op_timeout_ms
            ):
                # The drive did finish, but past the deadline: the
                # controller already gave up on this attempt.
                self.io_stats.timeouts += 1
                failed = True
            if failed:
                self.io_stats.transient_failures += 1
                if self._handle_failed_op(policy, disk, request):
                    return  # a retry or escalation owns the op now
            elif self._op_attempts:
                self._op_attempts.pop((disk, request), None)
        if (
            self.slow_disk_detector is not None
            and not failed
            and submitted is not None
        ):
            self.slow_disk_detector.observe(
                disk, self.engine.now - submitted
            )
        if self._hedges:
            entry = self._hedges.pop((disk, request), None)
            if entry is not None:
                hedge_state = entry["state"]
                if hedge_state == "hedge-won":
                    return  # cancel the loser: the hedge already delivered
                if hedge_state == "hedged":
                    entry["state"] = "primary-won"
                    self.io_stats.hedges_lost += 1
                else:
                    entry["state"] = "done"
        if self.corruption is not None:
            if request.is_write:
                unit_sectors = self.stripe_unit_sectors
                self.corruption.note_write(
                    disk,
                    request.lba // unit_sectors,
                    max(1, request.sectors // unit_sectors),
                    self.engine.now,
                )
            elif self._check_read_corruption(disk, request):
                return  # demoted to a media error; repair redelivers
        tag = request.tag
        if isinstance(tag, tuple) and tag[0] == "raw":
            callback = self._raw_callbacks.pop(tag[1], None)
            if callback is not None:
                callback()
            return
        state = self._in_flight.get(request.access_id)
        if state is None:
            return  # stray background traffic
        state.outstanding -= 1
        if state.outstanding == 0:
            self._advance(state)

    def _check_read_corruption(
        self, disk: int, request: DiskRequest
    ) -> bool:
        """Validate one completed read against the corruption map.

        Returns True when the completion is being withheld (the read was
        demoted to a media error and escalation owns redelivery).  With
        checksums off, corrupt cells are consumed as good data: each one
        is a silent-corruption event, and a write's pre-read over stale
        data additionally poisons the stripe's check cells (the RMW
        delta is computed from garbage).
        """
        corruption = self.corruption
        unit_sectors = self.stripe_unit_sectors
        tag = request.tag
        raw = isinstance(tag, tuple) and tag[0] == "raw"
        if raw and (not self.checksums or tag[2] == "scrub-read"):
            # Undefended background traffic: served corruption is only
            # counted where data reaches a consumer (client deliveries).
            # Scrub reads are exempt unconditionally — the audit
            # scrubber owns their accounting and repair.
            return False
        checksums = self.checksums
        first = request.lba // unit_sectors
        count = max(1, request.sectors // unit_sectors)
        hits = corruption.corrupt_cells(disk, first, count, self.engine.now)
        stats = self.checksum_stats
        if checksums and not raw:
            stats.validations += 1
        if not hits:
            if self._checksum_escalated:
                self._checksum_escalated.discard((disk, request))
            return False
        oracle = self.oracle
        if not checksums:
            # No defense: garbage is delivered as good data.
            for _offset, kind in hits:
                corruption.note_silent(kind)
                if oracle is not None:
                    oracle.note_disk_corruption(kind, detected=False)
            state = self._in_flight.get(request.access_id)
            if state is not None and state.access.is_write:
                self._pollute_parity(disk, [off for off, _ in hits])
            return False
        for _offset, kind in hits:
            stats.mismatches += 1
            corruption.note_detected(kind)
            if oracle is not None:
                oracle.note_disk_corruption(kind, detected=True)
        if raw:
            subtag = tag[2]
            if subtag == "verify-read":
                # Write-verify caught the mismatch at write time: the
                # controller still holds the new data, so the repair is
                # a plain rewrite (no reconstruction needed).
                for offset, _kind in hits:
                    self._verify_ops += 1
                    self.submit_raw(
                        disk,
                        offset,
                        True,
                        VERIFY_ID_BASE + self._verify_ops,
                        self._note_checksum_repair,
                        tag="verify-rewrite",
                    )
            return False
        state = self._in_flight.get(request.access_id)
        if state is not None and state.access.is_write:
            # Version cross-check before the old-data/old-parity
            # subtraction: the RMW delta is never computed from stale
            # cells (parity-pollution protection).
            stats.stale_rmw_detected += len(hits)
        key = (disk, request)
        if key in self._checksum_escalated:
            # Escalation already ran and could not repair everything
            # (no redundancy left): deliver rather than loop.
            self._checksum_escalated.discard(key)
            stats.unrepairable += len(hits)
            return False
        stats.demotions += 1
        self._checksum_escalated.add(key)
        self._escalate_read(disk, request)
        return True

    def _note_checksum_repair(self) -> None:
        self.checksum_stats.repairs += 1

    def _pollute_parity(self, disk: int, offsets: List[int]) -> None:
        """Stale pre-read data reached an RMW delta: the stripes' check
        cells now hold poisoned parity."""
        layout = self._plan_layout
        corruption = self.corruption
        for offset in offsets:
            info = layout.locate(disk, offset)
            if info.role is Role.SPARE:
                continue
            for check in layout.stripe_units(info.stripe).check:
                corruption.pollute(check.disk, check.offset)

    def _handle_failed_op(
        self, policy: RetryPolicy, disk: int, request: DiskRequest
    ) -> bool:
        """Route one failed operation: retry, escalate, or give up.

        Returns True when recovery has taken ownership of the operation
        (its completion will be delivered later); False when the caller
        should deliver it now (budget exhausted, op deemed successful by
        remap/give-up).
        """
        key = (disk, request)
        attempt = self._op_attempts.get(key, 0) + 1
        if attempt <= policy.retries:
            self._op_attempts[key] = attempt
            self.io_stats.retries += 1
            delay = capped_exponential(
                attempt, policy.backoff_base_ms, policy.backoff_cap_ms
            )
            self.engine.schedule(
                delay, partial(self._resubmit, disk, request)
            )
            return True
        self._op_attempts.pop(key, None)
        tag = request.tag
        if isinstance(tag, tuple) and tag[0] == "raw":
            # Background traffic never escalates (escalation itself is
            # raw traffic — this bound ends the recursion); the step
            # machinery above it owns any further recovery.
            self.io_stats.raw_give_ups += 1
            return False
        if request.is_write:
            # Firmware remaps the failing sector; the rewrite succeeds.
            self.io_stats.remapped_writes += 1
            return False
        self._escalate_read(disk, request)
        return True

    def _resubmit(self, disk: int, request: DiskRequest) -> None:
        server = self.servers[disk]
        if server.failed:
            # The disk died during the backoff: the op can never succeed.
            # Deliver it as dropped, mirroring _launch_phase's rule for
            # plans that predate a failure.
            self._op_attempts.pop((disk, request), None)
            self._request_done(disk, request, False)
            return
        if self._track_ops:
            self._op_submitted[(disk, request)] = self.engine.now
        server.submit(request)

    def _escalate_read(self, disk: int, request: DiskRequest) -> None:
        """Retry budget exhausted on a client read: rebuild the sectors
        on the fly from each stripe's surviving members, rewrite the
        unreadable cells (repair), then deliver the original completion.
        """
        self.io_stats.escalated_reads += 1
        layout = self._plan_layout
        unit_sectors = self.stripe_unit_sectors
        first = request.lba // unit_sectors
        count = max(1, request.sectors // unit_sectors)
        pending = {"units": 0}

        def unit_done() -> None:
            pending["units"] -= 1
            if pending["units"] == 0:
                self._request_done(disk, request, False)

        for offset in range(first, first + count):
            info = layout.locate(disk, offset)
            if info.role is Role.SPARE:
                continue
            stripe = info.stripe
            members = [
                a
                for a in layout.stripe_units(stripe).all_units()
                if not (a.disk == disk and a.offset == offset)
                and not self.servers[a.disk].failed
            ]
            if len(members) < len(layout.stripe_units(stripe).all_units()) - 1:
                # Another member is on a failed disk: no redundancy left
                # to rebuild this sector from right now.
                self.io_stats.escalation_failures += 1
                continue
            if self.oracle is not None:
                self.oracle.check_escalated_reconstruction(stripe)
            pending["units"] += 1
            self._reconstruct_sector(disk, offset, members, unit_done)
        if pending["units"] == 0:
            self._request_done(disk, request, False)

    def _reconstruct_sector(
        self,
        disk: int,
        offset: int,
        members: List,
        done: Callable[[], None],
    ) -> None:
        self._escalations += 1
        access_id = ESCALATION_ID_BASE + self._escalations
        remaining = {"reads": len(members)}

        def write_done() -> None:
            self.io_stats.repaired_sectors += 1
            done()

        def read_done() -> None:
            remaining["reads"] -= 1
            if remaining["reads"] == 0:
                self.submit_raw(
                    disk,
                    offset,
                    True,
                    access_id,
                    write_done,
                    tag="escalation-write",
                )

        for addr in members:
            self.submit_raw(
                addr.disk,
                addr.offset,
                False,
                access_id,
                read_done,
                tag="escalation-read",
            )

    def _advance(self, state: _InFlight) -> None:
        state.phase += 1
        if state.phase < len(state.plan.phases):
            hook = self.on_phase_boundary
            if hook is not None:
                hook(state.access, state.phase, len(state.plan.phases))
                if state.access.access_id not in self._in_flight:
                    return  # the hook crashed the controller
            self._launch_phase(state)
            return
        if (
            self.write_verify
            and state.access.is_write
            and not state.verified
            and self._launch_write_verify(state)
        ):
            return
        self._complete_access(state)

    def _launch_write_verify(self, state: _InFlight) -> bool:
        """Read back every cell the write touched before acking it.

        The read-backs are charged on the engine clock (the verify cost
        the bench sweeps quantify); a mismatch found by one is repaired
        by a plain rewrite in :meth:`_check_read_corruption` — the
        controller still holds the new data.  Returns False when there
        is nothing to verify (the access completes normally).
        """
        state.verified = True
        servers = self.servers
        writes = [
            op
            for op in state.plan.phases[-1]
            if op.is_write and not servers[op.disk].failed
        ]
        if not writes:
            return False
        stats = self.checksum_stats
        pending = {"reads": len(writes)}
        access_id = state.access.access_id

        def read_done() -> None:
            pending["reads"] -= 1
            if pending["reads"] == 0 and access_id in self._in_flight:
                self._complete_access(state)

        for op in writes:
            stats.verify_reads += 1
            self._verify_ops += 1
            self.submit_raw(
                op.disk,
                op.offset,
                False,
                VERIFY_ID_BASE + self._verify_ops,
                read_done,
                tag="verify-read",
            )
        return True

    def _complete_access(self, state: _InFlight) -> None:
        del self._in_flight[state.access.access_id]
        if self.journal is not None and state.stripes is not None:
            self.journal.clear(state.stripes)
        if self.oracle is not None and state.access.is_write:
            self.oracle.commit_write(state.access.access_id)
        self.completed_accesses += 1
        response = self.engine.now - state.submitted_ms
        state.on_complete(state.access, response)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def attach_trace(self, recorder: TraceRecorder) -> TraceRecorder:
        """Log every serviced physical operation into ``recorder``."""
        for server in self.servers:
            server.trace = recorder
        return recorder

    def instrumentation_record(
        self, include_timelines: bool = False
    ) -> dict:
        """Engine + per-disk counters as one JSON-able record.

        Per disk: operation count, time decomposition, queue-depth
        high-water, and drive-level counters; ``include_timelines`` adds
        the raw ``(time_ms, value)`` series when the controller was built
        with ``record_timelines=True``.
        """
        disks = []
        for server in self.servers:
            entry = {
                "operations": server.stats.operations,
                "busy_ms": server.stats.busy_ms,
                "seek_ms": server.stats.seek_ms,
                "latency_ms": server.stats.latency_ms,
                "transfer_ms": server.stats.transfer_ms,
                "queue_high_water": server.queue_high_water,
                "buffer_hits": server.drive.buffer_hits,
            }
            if include_timelines and server.queue_timeline is not None:
                entry["queue_timeline"] = [
                    [t, depth] for t, depth in server.queue_timeline
                ]
                entry["busy_timeline"] = [
                    [t, busy] for t, busy in server.busy_timeline
                ]
            disks.append(entry)
        record = {
            "engine": engine_snapshot(self.engine),
            "disks": disks,
            "max_queue_high_water": max(
                (d["queue_high_water"] for d in disks), default=0
            ),
            "completed_accesses": self.completed_accesses,
        }
        # Crash-consistency keys only appear when their feature is on, so
        # inactive-default runs stay byte-identical with existing caches.
        if self.journal is not None:
            record["journal"] = self.journal.to_dict()
        if self.retry_policy is not None or self.hedge_policy is not None:
            record["io_recovery"] = self.io_stats.to_dict(
                include_hedges=self.hedge_policy is not None
            )
        if self.slow_disk_detector is not None:
            record["slow_disks"] = self.slow_disk_detector.report()
        if self.crashes:
            record["crashes"] = {
                "count": self.crashes,
                "torn_writes": self.torn_writes,
            }
        if self.checksums or self.corruption is not None:
            block = {}
            if self.checksums:
                block["checksum"] = self.checksum_stats.to_dict()
            if self.corruption is not None:
                block["model"] = self.corruption.report()
            record["corruption"] = block
        return record

    def disk_stats(self) -> List[DiskStats]:
        return [server.stats for server in self.servers]

    def total_stats(self) -> DiskStats:
        total = DiskStats()
        for server in self.servers:
            total.merge(server.stats)
        return total
