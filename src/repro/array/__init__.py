"""Array controller: logical accesses to per-disk physical operations.

:mod:`~repro.array.raidops` is the pure planning core — given a layout, an
operating mode, and a logical access it produces the phased operation graph
(pre-reads before writes, on-the-fly reconstruction for degraded reads,
spare-space redirection after rebuild).  :mod:`~repro.array.controller`
executes plans on the event engine against mechanical drives;
:mod:`~repro.array.reconstructor` is the background rebuild process.
"""

from repro.array.controller import (
    ArrayController,
    HedgePolicy,
    IoRecoveryStats,
    LogicalAccess,
    RetryPolicy,
    SlowDiskDetector,
)
from repro.array.journal import StripeJournal
from repro.array.raidops import AccessPlan, ArrayMode, UnitOp, plan_access
from repro.array.reconstructor import AdaptiveThrottle, Reconstructor
from repro.array.resync import Resynchronizer, classify_stripe

__all__ = [
    "AccessPlan",
    "AdaptiveThrottle",
    "ArrayController",
    "ArrayMode",
    "HedgePolicy",
    "IoRecoveryStats",
    "SlowDiskDetector",
    "LogicalAccess",
    "Reconstructor",
    "Resynchronizer",
    "RetryPolicy",
    "StripeJournal",
    "UnitOp",
    "classify_stripe",
    "plan_access",
]
