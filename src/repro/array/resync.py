"""Post-crash parity resynchronization (closing the write hole).

After a controller crash, every write that was mid-plan may have updated
some of its stripes' cells but not others — parity inconsistent with
data.  Recovery re-reads each affected stripe's data units and rewrites
its check units, making parity consistent-by-construction again.  Which
stripes get that treatment is the whole game:

* **Journal replay** — with a :class:`~repro.array.journal.StripeJournal`
  the NVRAM dirty set names exactly the stripes of torn writes, so the
  resync touches a handful of stripes and completes in milliseconds.
* **Full sweep** — without a journal nothing identifies the torn
  stripes, so every stripe in the array must be recomputed.  This is the
  measurable baseline the journal is beating in ``BENCH_crash.json``.

Stripes whose parity chain crosses a failed disk cannot always be
recomputed; :func:`classify_stripe` is the shared (pure) classification
used both here and by the crash property tests:

``recompute``
    Every member readable — re-read data, rewrite parity.  Safe.
``parity_lost``
    The *check* unit is on the failed disk.  There is no stored parity
    to be inconsistent, hence no write hole: skip.
``data_lost``
    A *data* unit is on the failed disk.  Parity is the only way to
    recover it, and if a torn write left that parity untrustworthy the
    unit is unrecoverable — terminal data loss (folds into the
    campaign's ``DATA_LOSS`` accounting).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Set

from repro.array.controller import ArrayController
from repro.array.raidops import ArrayMode, RebuiltPredicate
from repro.errors import SimulationError
from repro.layouts.address import PhysicalAddress
from repro.layouts.base import Layout

#: Access ids at or above this value are resync traffic (distinct from
#: client ids and from rebuild ids at ``1 << 40``).
RESYNC_ID_BASE = 1 << 41


def classify_stripe(
    layout: Layout,
    stripe: int,
    failed_disk: Optional[int],
    rebuilt: Optional[RebuiltPredicate] = None,
) -> str:
    """Classify one suspect stripe for resync (see module docstring).

    ``rebuilt`` is the reconstruction frontier, if a rebuild was in
    progress: cells already swept into spare space (or onto a
    replacement) count as readable.
    """
    if failed_disk is None:
        return "recompute"
    units = layout.stripe_units(stripe)
    for addr in units.data:
        if addr.disk == failed_disk and not (
            rebuilt is not None and rebuilt(addr.offset)
        ):
            return "data_lost"
    for addr in units.check:
        if addr.disk == failed_disk and not (
            rebuilt is not None and rebuilt(addr.offset)
        ):
            return "parity_lost"
    return "recompute"


class Resynchronizer:
    """Replays the dirty-stripe set after a controller restart.

    Attach to a restarted controller and :meth:`start`.  With ``journal``
    the sweep covers exactly its dirty stripes; without, the full array
    (bounded by ``rows`` the same way rebuild sweeps are).  ``suspect``
    is the simulator's omniscient set of genuinely-torn stripes (from
    :meth:`ArrayController.crash`): a ``data_lost`` stripe only means
    actual loss if it really was torn — pass ``None`` to treat every
    swept stripe as torn (the conservative default, and exact for
    journal replay since the dirty set *is* the torn set).

    ``parallel_stripes`` bounds concurrent stripe recomputations and
    ``throttle_ms`` idles each slot between stripes, mirroring the
    rebuild throttle, so resync interference with client traffic is
    tunable.
    """

    def __init__(
        self,
        controller: ArrayController,
        journal=None,
        suspect: Optional[Set[int]] = None,
        rows: Optional[int] = None,
        parallel_stripes: int = 1,
        throttle_ms: float = 0.0,
        on_finished: Optional[Callable[[float], None]] = None,
        on_data_loss: Optional[
            Callable[["Resynchronizer", List[int]], None]
        ] = None,
        rebuilt: Optional[RebuiltPredicate] = None,
    ):
        if parallel_stripes < 1:
            raise SimulationError("need at least one resync slot")
        if throttle_ms < 0:
            raise SimulationError(f"negative resync throttle {throttle_ms}")
        self.controller = controller
        self.layout = controller.plan_layout
        self.journal = journal
        self.suspect = suspect
        self.parallel_stripes = parallel_stripes
        self.throttle_ms = throttle_ms
        self.on_finished = on_finished
        self.on_data_loss = on_data_loss
        self.rebuilt = rebuilt
        layout = self.layout
        if journal is not None:
            self.sweep: List[int] = journal.dirty_stripes()
        else:
            periods = (
                controller.periods
                if rows is None
                else max(1, rows // layout.period)
            )
            self.sweep = list(range(periods * layout.stripes_per_period))
        self.stripes_total = len(self.sweep)
        self.recomputed = 0
        self.parity_lost_skipped = 0
        self.consistent_skipped = 0
        self.data_lost_stripes: List[int] = []
        self.reads_issued = 0
        self.writes_issued = 0
        self.started_ms: Optional[float] = None
        self.finished_ms: Optional[float] = None
        self._queue: Iterator[int] = iter(())
        self._active = 0
        self._pending_issues = 0
        self._exhausted = False
        self._aborted = False
        self._next_id = RESYNC_ID_BASE

    # ------------------------------------------------------------------
    # Start and classification.
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.started_ms is not None:
            raise SimulationError("resync already started")
        controller = self.controller
        self.started_ms = controller.engine.now
        failed = (
            controller.failed_disk
            if controller.mode
            in (ArrayMode.DEGRADED, ArrayMode.RECONSTRUCTION)
            else None
        )
        recompute: List[int] = []
        for stripe in self.sweep:
            kind = classify_stripe(self.layout, stripe, failed, self.rebuilt)
            if kind == "recompute":
                recompute.append(stripe)
            elif kind == "parity_lost":
                # No stored parity to disagree with its data: the stripe
                # is merely degraded, not holed.  The rebuild sweep will
                # recompute the check unit from data anyway.
                self.parity_lost_skipped += 1
            elif self.suspect is not None and stripe not in self.suspect:
                # Data member lost but no write was torn on this stripe:
                # parity is still trustworthy, reconstruction stays safe.
                self.consistent_skipped += 1
            else:
                self.data_lost_stripes.append(stripe)
        if self.data_lost_stripes:
            self._handle_data_loss()
            if self._aborted:
                return
        self._queue = iter(recompute)
        for _ in range(self.parallel_stripes):
            self._issue_next()
        self._maybe_finish()  # degenerate: nothing to recompute

    def _handle_data_loss(self) -> None:
        """Torn stripes with a lost data member: the write hole ate data."""
        stripes = self.data_lost_stripes
        if self.on_data_loss is not None:
            self.on_data_loss(self, stripes)
            return
        self._aborted = True
        self.controller.declare_data_loss(
            f"write hole: {len(stripes)} dirty stripe(s) with a data"
            f" member on failed disk {self.controller.failed_disk}"
            f" (first: stripe {stripes[0]})"
        )

    @property
    def aborted(self) -> bool:
        return self._aborted

    @property
    def complete(self) -> bool:
        return self.finished_ms is not None

    # ------------------------------------------------------------------
    # Stripe recomputation machinery.
    # ------------------------------------------------------------------

    def _live_address(self, addr: PhysicalAddress) -> PhysicalAddress:
        """Where the unit at ``addr`` actually lives right now."""
        controller = self.controller
        if addr.disk != controller.failed_disk:
            return addr
        if controller.mode is ArrayMode.POST_RECONSTRUCTION:
            return self.layout.relocation_target(addr)
        if self.rebuilt is not None and self.rebuilt(addr.offset):
            if self.layout.has_sparing:
                return self.layout.relocation_target(addr)
            return addr  # rebuilt onto the replacement spindle in place
        return addr

    def _issue_next(self) -> None:
        if self._exhausted or self._aborted:
            return
        stripe = next(self._queue, None)
        if stripe is None:
            self._exhausted = True
            return
        self._active += 1
        self._run_stripe(stripe)

    def _refill_slot(self) -> None:
        if self._aborted:
            return
        if self._exhausted:
            self._maybe_finish()
            return
        if self.throttle_ms > 0:
            self._pending_issues += 1
            self.controller.engine.schedule(
                self.throttle_ms, self._delayed_issue
            )
        else:
            self._issue_next()
            self._maybe_finish()

    def _delayed_issue(self) -> None:
        self._pending_issues -= 1
        self._issue_next()
        self._maybe_finish()

    def _run_stripe(self, stripe: int) -> None:
        """Read every data unit, then rewrite every check unit."""
        controller = self.controller
        units = self.layout.stripe_units(stripe)
        access_id = self._next_id
        self._next_id += 1
        reads = [self._live_address(a) for a in units.data]
        writes = [self._live_address(a) for a in units.check]
        remaining = {"reads": len(reads), "writes": len(writes)}

        def write_done() -> None:
            remaining["writes"] -= 1
            if remaining["writes"] > 0:
                return
            self._active -= 1
            self.recomputed += 1
            oracle = controller.oracle
            if oracle is not None:
                oracle.note_resync(stripe)
            self._refill_slot()

        def all_reads_good() -> None:
            for addr in writes:
                self.writes_issued += 1
                controller.submit_raw(
                    addr.disk,
                    addr.offset,
                    True,
                    access_id,
                    write_done,
                    tag="resync-write",
                )

        def read_done() -> None:
            remaining["reads"] -= 1
            if remaining["reads"] == 0:
                all_reads_good()

        for addr in reads:
            self.reads_issued += 1
            controller.submit_raw(
                addr.disk,
                addr.offset,
                False,
                access_id,
                read_done,
                tag="resync-read",
            )

    def _maybe_finish(self) -> None:
        if (
            self._exhausted
            and not self._aborted
            and self._active == 0
            and self._pending_issues == 0
        ):
            self._finish()

    def _finish(self) -> None:
        if self.finished_ms is not None:
            return
        self.finished_ms = self.controller.engine.now
        if self.journal is not None:
            self.journal.reset()
        if self.on_finished is not None:
            self.on_finished(self.duration_ms)

    @property
    def duration_ms(self) -> float:
        if self.started_ms is None or self.finished_ms is None:
            raise SimulationError("resync has not finished")
        return self.finished_ms - self.started_ms

    def to_dict(self) -> dict:
        return {
            "stripes_swept": self.stripes_total,
            "recomputed": self.recomputed,
            "parity_lost_skipped": self.parity_lost_skipped,
            "consistent_skipped": self.consistent_skipped,
            "data_lost_stripes": list(self.data_lost_stripes),
            "reads": self.reads_issued,
            "writes": self.writes_issued,
            "duration_ms": (
                self.duration_ms if self.finished_ms is not None else None
            ),
            "complete": self.complete,
            "aborted": self._aborted,
        }
