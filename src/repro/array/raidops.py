"""Pure RAID operation planning.

Translates a logical access into phases of per-unit physical operations,
with no reference to time or devices — the simulator executes plans, and the
analytic tools (disk working sets of Figure 3, operation counts of Figures
4/7/15/16) evaluate the *same* plans, which is what keeps the two views of
each experiment consistent.

Write handling follows §4.2:

- *full-stripe write*: every data unit of the stripe is written — no
  pre-reads, write data + new parity;
- *small write* (read-modify-write): read old data of the written units and
  the old parity, then write new data and parity; chosen when at most half
  of the stripe's data units change;
- *large write* (reconstruct write): read the untouched data units, then
  write new data and parity; chosen above half.

Degraded mode (one disk failed, lost data not yet in spare space):

- reads of lost units fan out to the stripe's surviving units;
- a write whose stripe lost a *written* data unit is forced large (paper:
  "every logical write must be implemented as a large write"); a stripe
  that lost an *untouched* data unit is forced small; a stripe that lost
  its parity writes data only.

Reconstruction mode (rebuild in progress): the background sweep has copied
*some* lost units back to redundancy.  A ``rebuilt(offset)`` predicate —
the reconstructor's rebuild frontier — decides per cell: units already
swept are read from (written to) their rebuilt copies exactly as after
the rebuild completes, un-rebuilt units are handled as in degraded mode
(on-the-fly reconstruction, forced write variants).  For layouts with
distributed sparing the rebuilt copy lives in the same-row spare cell;
for layouts without sparing it lives at the original address on a
*replacement* spindle.

Post-reconstruction mode (PDDL's distributed sparing): lost units have been
rebuilt into the same-row spare units, so accesses are simply redirected.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, NamedTuple, Optional, Set, Tuple

from repro.errors import ConfigurationError, MappingError
from repro.layouts.address import PhysicalAddress
from repro.layouts.base import Layout


class ArrayMode(enum.Enum):
    """Operating condition of the array (paper's ff / f1 / post-recon)."""

    FAULT_FREE = "fault-free"
    DEGRADED = "degraded"                      # f1, rebuild not yet started
    RECONSTRUCTION = "reconstruction"          # rebuild sweep in progress
    POST_RECONSTRUCTION = "post-reconstruction"  # spare space holds rebuilt data
    DATA_LOSS = "data-loss"                    # terminal: a unit has no copy left


#: ``rebuilt(offset) -> bool``: has the failed disk's cell at ``offset``
#: already been rebuilt into its spare cell?  (The reconstruction-mode
#: rebuild frontier.)
RebuiltPredicate = Callable[[int], bool]


class UnitOp(NamedTuple):
    """One stripe-unit-sized physical operation."""

    disk: int
    offset: int
    is_write: bool


class AccessPlan(NamedTuple):
    """Phased operation graph; phase i+1 starts when phase i completes."""

    phases: List[List[UnitOp]]

    def all_ops(self) -> List[UnitOp]:
        return [op for phase in self.phases for op in phase]

    def disks_touched(self) -> Set[int]:
        """The paper's *disk working set* of the access."""
        return {op.disk for op in self.all_ops()}

    def operation_count(self) -> int:
        return sum(len(phase) for phase in self.phases)


def plan_access(
    layout: Layout,
    first_unit: int,
    unit_count: int,
    is_write: bool,
    mode: ArrayMode = ArrayMode.FAULT_FREE,
    failed_disk: Optional[int] = None,
    rebuilt: Optional[RebuiltPredicate] = None,
) -> AccessPlan:
    """Plan a logical access of ``unit_count`` contiguous data units.

    ``failed_disk`` is required (and only allowed) outside fault-free mode;
    ``rebuilt`` is the reconstruction-mode rebuild frontier and is required
    (and only allowed) in :attr:`ArrayMode.RECONSTRUCTION`.
    """
    if unit_count < 1:
        raise ConfigurationError(f"access needs >= 1 unit, got {unit_count}")
    if first_unit < 0:
        raise ConfigurationError(f"negative start unit {first_unit}")
    if mode is ArrayMode.DATA_LOSS:
        raise MappingError(
            "the array has lost data; accesses can no longer be planned"
        )
    if mode is ArrayMode.FAULT_FREE:
        if failed_disk is not None:
            raise ConfigurationError("fault-free mode has no failed disk")
    else:
        if failed_disk is None or not 0 <= failed_disk < layout.n:
            raise ConfigurationError(
                f"mode {mode.value} needs a valid failed disk"
            )
    if mode is ArrayMode.RECONSTRUCTION:
        if rebuilt is None:
            raise ConfigurationError(
                "reconstruction mode needs a rebuilt(offset) predicate"
            )
    elif rebuilt is not None:
        raise ConfigurationError(
            f"mode {mode.value} takes no rebuild frontier"
        )
    if mode is ArrayMode.POST_RECONSTRUCTION and not layout.has_sparing:
        raise MappingError(
            f"{layout.name} has no spare space for post-reconstruction mode"
        )

    units = range(first_unit, first_unit + unit_count)
    if not is_write and mode is ArrayMode.FAULT_FREE:
        # Hot path (the vast majority of Figure 5/6 traffic): straight
        # translation.  The data-unit mapping is injective — distinct
        # units land in distinct cells — so dedupe has nothing to do.
        cells = layout.data_unit_cells(first_unit, unit_count)
        return AccessPlan(
            phases=[[UnitOp(d, o, False) for d, o in cells]]
        )
    if is_write:
        plan = _plan_write(layout, units, mode, failed_disk, rebuilt)
    else:
        plan = _plan_read(layout, units, mode, failed_disk, rebuilt)
    return _dedupe(plan)


# ----------------------------------------------------------------------
# Reads.
# ----------------------------------------------------------------------


def _plan_read(
    layout: Layout,
    units: range,
    mode: ArrayMode,
    failed_disk: Optional[int],
    rebuilt: Optional[RebuiltPredicate],
) -> AccessPlan:
    ops: List[UnitOp] = []
    for unit in units:
        addr = layout.data_unit_address(unit)
        if addr.disk != failed_disk:
            ops.append(UnitOp(addr.disk, addr.offset, False))
        elif mode is ArrayMode.POST_RECONSTRUCTION or (
            mode is ArrayMode.RECONSTRUCTION and rebuilt(addr.offset)
        ):
            # Lost unit already swept: read the rebuilt copy — the spare
            # cell (distributed sparing) or the replacement spindle.
            if layout.has_sparing:
                spare = layout.relocation_target(addr)
                ops.append(UnitOp(spare.disk, spare.offset, False))
            else:
                ops.append(UnitOp(addr.disk, addr.offset, False))
        else:  # DEGRADED or un-rebuilt: reconstruct on the fly from survivors
            stripe = layout.stripe_of_data_unit(unit)
            for other in layout.stripe_units(stripe).all_units():
                if other.disk != failed_disk:
                    ops.append(UnitOp(other.disk, other.offset, False))
    return AccessPlan(phases=[ops])


# ----------------------------------------------------------------------
# Writes.
# ----------------------------------------------------------------------


def _stripe_groups(
    layout: Layout, units: range
) -> Dict[int, List[Tuple[int, int]]]:
    """Group accessed units by stripe: stripe -> [(position, unit), ...]."""
    groups: Dict[int, List[Tuple[int, int]]] = {}
    for unit in units:
        stripe = layout.stripe_of_data_unit(unit)
        position = unit % layout.data_per_stripe
        groups.setdefault(stripe, []).append((position, unit))
    return groups


def _redirect(
    layout: Layout, addr: PhysicalAddress, mode: ArrayMode, failed: Optional[int]
) -> PhysicalAddress:
    if mode is ArrayMode.POST_RECONSTRUCTION and addr.disk == failed:
        return layout.relocation_target(addr)
    return addr


def _plan_write(
    layout: Layout,
    units: range,
    mode: ArrayMode,
    failed_disk: Optional[int],
    rebuilt: Optional[RebuiltPredicate],
) -> AccessPlan:
    pre_reads: List[UnitOp] = []
    writes: List[UnitOp] = []
    for stripe, touched in _stripe_groups(layout, units).items():
        stripe_units = layout.stripe_units(stripe)
        written_positions = {position for position, _ in touched}
        stripe_mode = mode
        if mode is ArrayMode.RECONSTRUCTION:
            # Per-stripe: behind the rebuild frontier the stripe behaves
            # post-reconstruction (spare redirect), ahead of it degraded.
            lost = next(
                (
                    a
                    for a in stripe_units.all_units()
                    if a.disk == failed_disk
                ),
                None,
            )
            if lost is None or rebuilt(lost.offset):
                # Spare redirect with sparing; the replacement spindle
                # serves the original addresses without.
                stripe_mode = (
                    ArrayMode.POST_RECONSTRUCTION
                    if layout.has_sparing
                    else ArrayMode.FAULT_FREE
                )
            else:
                stripe_mode = ArrayMode.DEGRADED
        if stripe_mode is ArrayMode.DEGRADED:
            reads, wr = _plan_stripe_write_degraded(
                layout, stripe_units, written_positions, failed_disk
            )
        else:
            reads, wr = _plan_stripe_write_clean(
                layout, stripe_units, written_positions, stripe_mode,
                failed_disk,
            )
        pre_reads.extend(reads)
        writes.extend(wr)
    if pre_reads:
        return AccessPlan(phases=[pre_reads, writes])
    return AccessPlan(phases=[writes])


def _plan_stripe_write_clean(
    layout: Layout,
    stripe_units,
    written: Set[int],
    mode: ArrayMode,
    failed: Optional[int],
) -> Tuple[List[UnitOp], List[UnitOp]]:
    """Fault-free and post-reconstruction stripe write planning."""
    dps = layout.data_per_stripe
    m = len(written)

    def addr(a: PhysicalAddress) -> PhysicalAddress:
        return _redirect(layout, a, mode, failed)

    check = [addr(a) for a in stripe_units.check]
    reads: List[UnitOp] = []
    writes: List[UnitOp] = [
        UnitOp(*addr(stripe_units.data[p]), True) for p in sorted(written)
    ]
    if m == dps:
        # Full-stripe write: parity computed from new data alone.
        writes.extend(UnitOp(*a, True) for a in check)
    elif m <= dps // 2:
        # Small write: read old data + old parity.
        reads.extend(
            UnitOp(*addr(stripe_units.data[p]), False) for p in sorted(written)
        )
        reads.extend(UnitOp(*a, False) for a in check)
        writes.extend(UnitOp(*a, True) for a in check)
    else:
        # Large (reconstruct) write: read the untouched data units.
        reads.extend(
            UnitOp(*addr(stripe_units.data[p]), False)
            for p in range(dps)
            if p not in written
        )
        writes.extend(UnitOp(*a, True) for a in check)
    return reads, writes


def _plan_stripe_write_degraded(
    layout: Layout,
    stripe_units,
    written: Set[int],
    failed: int,
) -> Tuple[List[UnitOp], List[UnitOp]]:
    """Degraded-mode stripe write planning (§4.2's forced large writes)."""
    dps = layout.data_per_stripe
    m = len(written)
    check_failed = any(a.disk == failed for a in stripe_units.check)
    failed_data_position = next(
        (
            p
            for p in range(dps)
            if stripe_units.data[p].disk == failed
        ),
        None,
    )

    reads: List[UnitOp] = []
    writes: List[UnitOp] = [
        UnitOp(*stripe_units.data[p], True)
        for p in sorted(written)
        if stripe_units.data[p].disk != failed
    ]

    if check_failed:
        # Parity lost: write the surviving data units, nothing to maintain.
        return reads, writes

    check_writes = [UnitOp(*a, True) for a in stripe_units.check]
    if failed_data_position is None:
        # Stripe untouched by the failure: plan as fault-free.
        return _plan_stripe_write_clean(
            layout, stripe_units, written, ArrayMode.FAULT_FREE, None
        )
    if failed_data_position in written:
        # Lost unit is being overwritten: forced large write — read every
        # untouched data unit (all survive), fold in the new data, write
        # survivors + parity.
        reads.extend(
            UnitOp(*stripe_units.data[p], False)
            for p in range(dps)
            if p not in written
        )
        writes.extend(check_writes)
    else:
        # Lost unit is untouched: forced small write — its old value is
        # unreadable, but the parity delta needs only old data of written
        # units plus old parity, all of which survive.
        reads.extend(
            UnitOp(*stripe_units.data[p], False) for p in sorted(written)
        )
        reads.extend(UnitOp(*a, False) for a in stripe_units.check)
        writes.extend(check_writes)
        if m == dps:  # unreachable guard: failed unit would be in `written`
            raise MappingError("inconsistent degraded write planning")
    return reads, writes


def _dedupe(plan: AccessPlan) -> AccessPlan:
    """Drop duplicate operations within each phase, preserving order."""
    phases: List[List[UnitOp]] = []
    for phase in plan.phases:
        if len(phase) < 2:
            phases.append(phase)
            continue
        seen: Set[UnitOp] = set()
        unique: List[UnitOp] = []
        for op in phase:
            if op not in seen:
                seen.add(op)
                unique.append(op)
        phases.append(unique)
    return AccessPlan(phases=phases)
