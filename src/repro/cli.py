"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the experiment drivers, so every table and
figure of the paper can be regenerated from a shell:

- ``goals``      — the §1 goal matrix, machine-checked per layout
- ``figure3``    — disk working set sizes
- ``response``   — response-time points (Figures 5/6/8/9/...)
- ``seeks``      — seek/no-switch mixes (Figures 4/7/15/16)
- ``table1``     — satisfactory base permutation search
- ``table3``     — scheme implementation costs
- ``plan``       — PDDL capacity planning for an (n, k) array
- ``bench``      — parallel, cached response-time sweeps (see RUNNER.md)
- ``lifecycle``  — reconstruction-under-load lifecycle runs (Figs 8-14, 18)
- ``campaign``   — multi-fault reliability campaigns (loss probability,
  MTTDL cross-check; see EXPERIMENTS.md "Campaigns")
- ``crash``      — controller-crash trials: journaled vs full-sweep
  resync after a torn write (see EXPERIMENTS.md "Crash trials")
- ``nemesis``    — composed-fault campaigns under the integrity oracle
  (see EXPERIMENTS.md "Nemesis campaigns")
- ``traffic``    — open-loop offered-load sweeps with SLO/overload
  accounting (see EXPERIMENTS.md "Open-loop traffic")
- ``failslow``   — tail-tolerance defenses under a fail-slow disk
  mid-rebuild (see EXPERIMENTS.md "Fail-slow trials")
- ``corruption`` — silent-corruption defense tiers: checksums,
  write-verify, parity-audit scrub (see EXPERIMENTS.md
  "Corruption trials")
- ``profile``    — cProfile one simulation point (hot functions, ev/s)

``bench --compare`` gates on the committed ``BENCH_*.json`` baselines:
invariant self-checks, level-shift detection between a ``--baseline``
and a ``--candidate`` report, and ``--exact`` byte-agreement modulo the
provenance version stamp (see RUNNER.md "The bench-regression gate").
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ConfigurationError, ReproError
from repro.runner.spec import MODES as _MODES

DEFAULT_LAYOUTS = ["datum", "parity-declustering", "raid5", "pddl", "prime"]


def _write_report(path: str, payload: dict, indent: int = 2) -> None:
    """Write a JSON report, or fail with a clean CLI error.

    An unwritable ``--out`` (missing directory, permission, path through
    a regular file) must exit nonzero with one clear line, not a
    traceback — the runner may have just spent minutes simulating, and
    the user needs to know the results still live in the cache.
    """
    import json

    from repro.errors import RunnerError

    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent, sort_keys=True)
            handle.write("\n")
    except OSError as exc:
        raise RunnerError(
            f"cannot write report to {path!r}: {exc}"
            " (simulated results are preserved in the cache;"
            " rerun with a writable --out)"
        ) from None
    print(f"wrote {path}")


def _print_io_recovery(summary: dict) -> None:
    """One line of aggregate transient-recovery counters.

    Sweeps that never installed a retry or hedge policy have no
    ``io_recovery`` block and print nothing.
    """
    stats = summary.get("io_recovery")
    if not stats:
        return
    line = (
        f"  io-recovery: {stats.get('retries', 0)} retried,"
        f" {stats.get('escalated_reads', 0)} escalated,"
        f" {stats.get('repaired_sectors', 0)} sector(s) repaired"
        f" ({stats['trials_reporting']} trial(s) reporting)"
    )
    if "hedges_launched" in stats:
        line += (
            f"; hedges {stats.get('hedges_won', 0)}"
            f"/{stats['hedges_launched']} won"
        )
    print(line)


def _print_scrub(summary: dict) -> None:
    """Aggregate scrub repair/detection counters, when any trial
    scrubbed; a second line for the parity-audit counters when any
    trial audited."""
    scrub = summary.get("scrub")
    if not scrub:
        return
    print(
        f"  scrub: {scrub.get('passes_completed', 0)} pass(es),"
        f" {scrub.get('cells_read', 0)} cells read,"
        f" {scrub.get('found', 0)} latent error(s) found,"
        f" {scrub.get('repaired', 0)} repaired"
        f" ({scrub['trials_reporting']} trial(s) reporting)"
    )
    if "stripes_audited" in scrub:
        print(
            f"  parity audit: {scrub['stripes_audited']} stripe(s)"
            f" audited, {scrub.get('audit_mismatches', 0)} mismatch(es),"
            f" {scrub.get('audit_repairs', 0)} repaired,"
            f" {scrub.get('audit_unrepairable', 0)} unrepairable"
        )


def _cmd_goals(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_table
    from repro.layouts import make_layout
    from repro.layouts.properties import check_layout
    from repro.layouts.registry import DISPLAY_NAMES

    rows = []
    for name in args.layouts:
        k = args.disks if name in ("raid5", "raid-5") else args.width
        layout = make_layout(name, args.disks, k)
        met = set(check_layout(layout).goals_met())
        rows.append(
            [DISPLAY_NAMES.get(name, name)]
            + ["o" if g in met else "." for g in range(1, 9)]
        )
    print(render_table(["layout", *(f"#{g}" for g in range(1, 9))], rows))
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_working_set_table
    from repro.experiments.workingset import figure3_table

    table = figure3_table(
        sizes_kb=args.sizes, layout_names=tuple(args.layouts)
    )
    print(render_working_set_table(table, args.sizes))
    return 0


def _cmd_response(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_response_curves
    from repro.experiments.response import run_figure
    from repro.workload.spec import AccessSpec

    curves = run_figure(
        args.layouts,
        AccessSpec(args.size, args.write),
        args.clients,
        mode=_MODES[args.mode],
        max_samples=args.samples,
        use_stopping_rule=not args.no_stopping_rule,
        seed=args.seed,
    )
    print(render_response_curves(curves))
    return 0


def _cmd_seeks(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_seek_mix_table
    from repro.experiments.seeks import run_seek_mix

    mixes = run_seek_mix(
        args.layouts,
        args.sizes,
        args.write,
        mode=_MODES[args.mode],
        samples_per_point=args.samples,
    )
    print(render_seek_mix_table(mixes, args.sizes))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.core.tables import PAPER_TABLE1
    from repro.experiments.report import render_table
    from repro.experiments.table1 import reproduce_table1

    cells = reproduce_table1(
        widths=args.widths,
        stripe_counts=args.stripes,
        restarts=args.restarts,
        max_steps=args.max_steps,
    )
    rows = []
    for g in args.stripes:
        row = [f"g={g}"]
        for k in args.widths:
            paper = PAPER_TABLE1.get((k, g))
            row.append(
                f"{cells[(k, g)].rendered()}|"
                f"{'?' if paper is None else paper}"
            )
        rows.append(row)
    print("ours | paper")
    print(render_table(["", *(f"k={k}" for k in args.widths)], rows))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.experiments.table3 import table3_rows

    for row in table3_rows(iterations=args.iterations).values():
        print(row.as_row())
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro import check_layout, pddl_for

    n, k = args.disks, args.width
    if (n - 1) % k != 0:
        print(f"error: {n} disks cannot host width-{k} stripes + 1 spare")
        return 2
    layout = pddl_for((n - 1) // k, k)
    print(layout.describe())
    for i, perm in enumerate(layout.group.permutations):
        print(f"permutation {i}: {perm.values}")
    print(f"goals met: {check_layout(layout).goals_met()}")
    print(
        f"capacity: data {1 - layout.parity_overhead - layout.spare_overhead:.1%},"
        f" parity {layout.parity_overhead:.1%},"
        f" spare {layout.spare_overhead:.1%}"
    )
    return 0


def _bench_compare(args: argparse.Namespace) -> int:
    """The ``bench --compare`` regression gate (no simulation)."""
    import glob

    from repro.runner import run_compare

    baselines = args.baseline or sorted(glob.glob("BENCH_*.json"))
    if not baselines:
        print(
            "error: no BENCH_*.json reports here and no --baseline given",
            file=sys.stderr,
        )
        return 1
    problems = run_compare(
        baselines, candidate_path=args.candidate, exact=args.exact
    )
    if problems:
        for line in problems:
            print(f"bench-compare: {line}")
        print(f"bench-compare: FAIL ({len(problems)} problem(s))")
        return 1
    reports = len(baselines) + (1 if args.candidate else 0)
    mode = (
        "exact"
        if args.exact
        else ("level-shift" if args.candidate else "self-check")
    )
    print(f"bench-compare: OK ({reports} report(s), {mode})")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.report import render_response_curves
    from repro.runner import (
        ParallelRunner,
        ResultCache,
        curves_from_records,
        default_cache_dir,
        response_sweep_specs,
    )

    if args.compare or args.baseline or args.candidate or args.exact:
        return _bench_compare(args)
    if args.quick:
        sizes, clients, samples = [8, 48], [1, 4], 40
    else:
        sizes, clients, samples = args.sizes, args.clients, args.samples
    specs = response_sweep_specs(
        sizes,
        clients,
        args.write,
        args.mode,
        samples,
        seed=args.seed,
        layouts=args.layouts,
    )
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    runner = ParallelRunner(workers=args.workers, cache=cache)
    started = time.perf_counter()
    report = runner.run(specs)
    elapsed = time.perf_counter() - started

    kind = "writes" if args.write else "reads"
    for size_kb, curves in sorted(curves_from_records(report.records).items()):
        print()
        print(f"bench: {size_kb}KB {kind}, {args.mode}")
        print(render_response_curves(curves))

    events = sum(
        r["instrumentation"]["engine"]["events_processed"]
        for r in report.records
    )
    heap_high = max(
        r["instrumentation"]["engine"]["heap_high_water"]
        for r in report.records
    )
    queue_high = max(
        r["instrumentation"]["max_queue_high_water"] for r in report.records
    )
    print()
    print(
        f"instrumentation: {events} engine events,"
        f" heap high-water {heap_high},"
        f" per-disk queue high-water {queue_high}"
    )
    print(
        f"{len(specs)} points: {report.executed} simulated,"
        f" {report.cache_hits} from cache"
        f" ({runner.workers} workers, {elapsed:.2f}s)"
    )
    if cache is not None:
        print(f"cache dir: {cache.root}")
    return 0


def _cmd_lifecycle(args: argparse.Namespace) -> int:
    import time

    from repro.runner import (
        ParallelRunner,
        ResultCache,
        default_cache_dir,
        lifecycle_sweep_specs,
        rebuild_load_curves,
    )

    if args.quick:
        layouts = ["pddl", "parity-declustering"]
        clients = [4]
        rebuild_rows: Optional[int] = 26
        post_samples, max_samples = 40, 1500
        # A dwell window so degraded mode collects samples too.
        dwell = 300.0 if args.dwell == 0.0 else args.dwell
    else:
        layouts = args.layouts
        clients = args.clients
        rebuild_rows = args.rebuild_rows
        post_samples, max_samples = args.post_samples, args.samples
        dwell = args.dwell
    specs = lifecycle_sweep_specs(
        layouts,
        clients,
        size_kb=args.size,
        is_write=args.write,
        fault_time_ms=None if args.mttf is not None else args.fault_time,
        mttf_hours=args.mttf,
        degraded_dwell_ms=dwell,
        rebuild_rows=rebuild_rows,
        rebuild_parallel=args.rebuild_parallel,
        rebuild_throttle_ms=args.rebuild_throttle,
        post_samples=post_samples,
        max_samples=max_samples,
        seed=args.seed,
        disks=args.disks,
        oracle=args.oracle,
    )
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    runner = ParallelRunner(workers=args.workers, cache=cache)
    started = time.perf_counter()
    report = runner.run(specs)
    elapsed = time.perf_counter() - started

    for record in report.records:
        life = record["lifecycle"]
        print()
        print(
            f"lifecycle: {life['layout']}, {life['spec_label']},"
            f" {life['clients']} clients"
            f" (fault on disk {life['fault_disk']}"
            f" at {life['fault_time_ms']:.0f} ms)"
        )
        for mode, t in life["transitions"]:
            print(f"  {t:10.1f} ms  -> {mode}")
        if life["rebuild_duration_ms"] is not None:
            print(
                f"  rebuild: {life['rebuild_steps']} steps"
                f" in {life['rebuild_duration_ms']:.1f} ms"
            )
        else:
            print(
                f"  rebuild: incomplete"
                f" ({life['rebuild_steps']}/{life['rebuild_total_steps']}"
                f" steps)"
            )
        for mode, mean in life["mode_means_ms"].items():
            n = record["histograms"][mode]["count"]
            print(f"  {mode:20s} n={n:<5d} mean={mean:8.2f} ms")
        if args.oracle:
            print(
                f"  oracle: {life['oracle']['corruption_events']}"
                " corruption event(s)"
            )

    print()
    for layout, curve in sorted(rebuild_load_curves(report.records).items()):
        rendered = ", ".join(
            f"{c} cl: {'--' if ms is None else f'{ms:.0f} ms'}"
            for c, ms in curve
        )
        print(f"rebuild vs load [{layout}]: {rendered}")
    print(
        f"{len(specs)} runs: {report.executed} simulated,"
        f" {report.cache_hits} from cache"
        f" ({runner.workers} workers, {elapsed:.2f}s)"
    )
    if cache is not None:
        print(f"cache dir: {cache.root}")

    if args.out:
        summary = {
            "bench": "lifecycle",
            "disks": args.disks,
            "runs": [
                {
                    "layout": life["layout"],
                    "clients": life["clients"],
                    "spec_label": life["spec_label"],
                    "complete": life["complete"],
                    "rebuild_duration_ms": life["rebuild_duration_ms"],
                    "mode_means_ms": life["mode_means_ms"],
                }
                for life in (r["lifecycle"] for r in report.records)
            ],
        }
        if args.oracle:
            summary["oracle"] = {
                "corruption_events": sum(
                    r["lifecycle"]["oracle"]["corruption_events"]
                    for r in report.records
                ),
            }
        _write_report(args.out, summary)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.campaign import campaign_specs, summarize_campaign
    from repro.runner import (
        ParallelRunner,
        ResultCache,
        RunCheckpoint,
        default_cache_dir,
        sweep_provenance,
    )

    if args.quick:
        trials = 24
        mttf = 0.03
        dwell = 4000.0
        rebuild_rows: Optional[int] = 26
    else:
        trials = args.trials
        mttf = args.mttf
        dwell = args.dwell
        rebuild_rows = args.rebuild_rows
    specs = campaign_specs(
        layout=args.layout,
        trials=trials,
        disks=args.disks,
        seed=args.seed,
        mttf_hours=mttf,
        faults=args.faults,
        degraded_dwell_ms=dwell,
        rebuild_rows=rebuild_rows,
        rebuild_parallel=args.rebuild_parallel,
        rebuild_throttle_ms=args.rebuild_throttle,
        lse_per_gb=args.lse_per_gb,
        scrub_interval_ms=args.scrub_interval,
        scrub_throttle_ms=args.scrub_throttle,
        clients=args.clients,
        transient_io_rate=args.transient_io_rate,
        oracle=args.oracle,
    )
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    checkpoint = (
        RunCheckpoint(args.checkpoint) if args.checkpoint else None
    )
    runner = ParallelRunner(
        workers=args.workers,
        cache=cache,
        timeout_s=args.timeout,
        retries=args.retries,
        checkpoint=checkpoint,
    )
    started = time.perf_counter()
    report = runner.run(specs)
    elapsed = time.perf_counter() - started

    trial_records = [r["trial"] for r in report.records]
    summary = summarize_campaign(trial_records)

    print(
        f"campaign: {args.layout}, {args.disks} disks,"
        f" {summary['trials']} trials, up to {args.faults} faults each"
        f" (MTTF {mttf} h, dwell {dwell:.0f} ms)"
    )
    print(
        f"  lost {summary['losses']}/{summary['trials']}"
        f" -> loss probability {summary['loss_probability']:.3f}"
        f" (95% CI [{summary['ci_low']:.3f}, {summary['ci_high']:.3f}])"
    )
    if summary["analytic"] is not None:
        analytic = summary["analytic"]
        verdict = "inside" if analytic["within_ci"] else "OUTSIDE"
        print(
            f"  analytic prediction {analytic['loss_probability']:.3f}"
            f" ({verdict} the CI;"
            f" exposure window {analytic['window_hours'] * 3600:.1f} s)"
        )
    if summary["empirical_mttdl_hours"] is not None:
        print(
            f"  empirical MTTDL {summary['empirical_mttdl_hours']:.4f} h"
            + (
                f" vs analytic {summary['analytic']['mttdl_hours']:.4f} h"
                if summary["analytic"] is not None
                else ""
            )
        )
    if args.oracle:
        corruption = sum(
            t["oracle"]["corruption_events"] for t in trial_records
        )
        print(
            f"  oracle: {corruption} silent corruption event(s)"
            f" across {summary['trials']} shadow-verified trials"
        )
    _print_io_recovery(summary)
    _print_scrub(summary)
    print(
        f"{len(specs)} trials: {report.executed} simulated,"
        f" {report.cache_hits} from cache,"
        f" {report.checkpoint_hits} from checkpoint"
        f" ({runner.workers} workers, {elapsed:.2f}s)"
    )
    if cache is not None:
        print(f"cache dir: {cache.root}")

    if args.out:
        # Deterministic payload (no wall-clock anywhere): the CI resume
        # job byte-compares this file across interrupted/uninterrupted
        # runs.
        payload = {
            "bench": "campaign",
            # Version stamp + sweep hash, so bench --compare attributes
            # a level shift to a commit range (CI comparisons that need
            # repo-state independence ignore the version stamp).
            "provenance": sweep_provenance(specs),
            "config": {
                "layout": args.layout,
                "disks": args.disks,
                "trials": trials,
                "faults": args.faults,
                "mttf_hours": mttf,
                "degraded_dwell_ms": dwell,
                "rebuild_rows": rebuild_rows,
                "lse_per_gb": args.lse_per_gb,
                "scrub_interval_ms": args.scrub_interval,
                "clients": args.clients,
                "seed": args.seed,
            },
            "summary": summary,
            "trials": [
                {
                    "trial": t["trial"],
                    "classification": t["classification"],
                    "cycle_ms": t["cycle_ms"],
                    "lost_units": t["lost_units"],
                    "second_faults": len(t["second_faults"]),
                }
                for t in trial_records
            ],
        }
        # New keys appear only when their features are on, so default
        # campaign reports stay byte-identical to pre-oracle builds.
        if args.oracle:
            payload["config"]["oracle"] = True
            payload["oracle"] = {
                "corruption_events": sum(
                    t["oracle"]["corruption_events"] for t in trial_records
                ),
                "torn_writes": sum(
                    t["oracle"]["torn_writes"] for t in trial_records
                ),
            }
        if args.transient_io_rate > 0:
            payload["config"]["transient_io_rate"] = args.transient_io_rate
        _write_report(args.out, payload)
    return 0


def _cmd_crash(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.crashtrial import crash_specs, summarize_crash
    from repro.runner import (
        ParallelRunner,
        ResultCache,
        RunCheckpoint,
        default_cache_dir,
        sweep_provenance,
    )

    if args.quick:
        layouts = ["pddl"]
        client_counts = [2, 4]
        max_pre_samples, post_samples = 80, 20
        # The boundary must land before the pre-crash budget runs out.
        boundary = 60
    else:
        layouts = args.layouts
        client_counts = args.clients
        max_pre_samples, post_samples = args.pre_samples, args.post_samples
        boundary = args.boundary
    specs = crash_specs(
        layouts=layouts,
        client_counts=client_counts,
        disks=args.disks,
        size_kb=args.size,
        seed=args.seed,
        crash_boundary=boundary,
        journal_latency_ms=args.journal_latency,
        resync_rows=args.resync_rows,
        max_pre_samples=max_pre_samples,
        post_samples=post_samples,
    )
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    checkpoint = (
        RunCheckpoint(args.checkpoint) if args.checkpoint else None
    )
    runner = ParallelRunner(
        workers=args.workers,
        cache=cache,
        timeout_s=args.timeout,
        retries=args.retries,
        checkpoint=checkpoint,
    )
    started = time.perf_counter()
    report = runner.run(specs)
    elapsed = time.perf_counter() - started

    trial_records = [r["crash_trial"] for r in report.records]
    summary = summarize_crash(trial_records)

    for t in trial_records:
        journal = "journal" if t["journal"] else "full-sweep"
        resync = (
            "--"
            if t["resync_ms"] is None
            else f"{t['resync_ms']:8.1f} ms"
        )
        print(
            f"crash: {t['layout']}, {t['clients']} clients, {journal:10s}"
            f" -> {t['classification']:9s}"
            f" torn {len(t['crash']['torn_stripes']):2d}"
            f" resync {resync}"
            f" oracle {t['oracle']['corruption_events']}"
        )
    print()
    print(
        f"resync: journal {summary['journal_resync_ms']:.1f} ms"
        f" vs full sweep {summary['full_sweep_resync_ms']:.1f} ms"
        f" ({summary['resync_speedup']:.1f}x),"
        f" recomputed {summary['stripes_recomputed_journal']}"
        f" vs {summary['stripes_recomputed_full_sweep']} stripes"
    )
    print(
        f"oracle: {summary['corruption_events']} silent corruption"
        f" event(s), {summary['data_loss_trials']} declared data-loss"
        f" trial(s) in {summary['trials']} trials"
    )
    print(
        f"{len(specs)} trials: {report.executed} simulated,"
        f" {report.cache_hits} from cache,"
        f" {report.checkpoint_hits} from checkpoint"
        f" ({runner.workers} workers, {elapsed:.2f}s)"
    )
    if cache is not None:
        print(f"cache dir: {cache.root}")

    if args.out:
        # Deterministic payload (no wall-clock anywhere): CI byte-compares
        # a resumed run's file against the committed baseline.
        payload = {
            "bench": "crash",
            # Version stamp + sweep hash for bench --compare attribution
            # (CI's --exact comparison ignores the version stamp).
            "provenance": sweep_provenance(specs),
            "config": {
                "layouts": layouts,
                "clients": client_counts,
                "disks": args.disks,
                "size_kb": args.size,
                "seed": args.seed,
                "crash_boundary": boundary,
                "journal_latency_ms": args.journal_latency,
                "resync_rows": args.resync_rows,
                "pre_samples": max_pre_samples,
                "post_samples": post_samples,
            },
            "summary": summary,
            "trials": [
                {
                    "layout": t["layout"],
                    "clients": t["clients"],
                    "journal": t["journal"],
                    "classification": t["classification"],
                    "crashed_at_ms": t["crash"]["crashed_at_ms"],
                    "torn_stripes": len(t["crash"]["torn_stripes"]),
                    "resync_ms": t["resync_ms"],
                    "stripes_swept": (
                        None
                        if t["resync"] is None
                        else t["resync"]["stripes_swept"]
                    ),
                    "pre_mean_ms": t["pre"]["mean_ms"],
                    "post_mean_ms": t["post"]["mean_ms"],
                    "corruption_events": t["oracle"]["corruption_events"],
                }
                for t in trial_records
            ],
        }
        _write_report(args.out, payload)
    return 0


def _cmd_nemesis(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.nemesistrial import (
        nemesis_specs,
        summarize_nemesis,
    )
    from repro.runner import (
        ParallelRunner,
        ResultCache,
        RunCheckpoint,
        default_cache_dir,
        sweep_provenance,
    )

    trials = 24 if args.quick else args.trials
    start = 0
    if args.trial is not None:
        # Replay exactly one schedule (the failing-seed repro path).
        trials, start = 1, args.trial
    specs = nemesis_specs(
        layout=args.layout,
        trials=trials,
        disks=args.disks,
        seed=args.seed,
        start=start,
        clients=args.clients,
        rows=args.rows,
        journal=not args.no_journal,
        scrub_interval_ms=(
            args.scrub_interval if args.scrub_interval > 0 else None
        ),
        max_samples=args.samples,
        transient_io_rate=args.transient_io_rate,
        lse_per_gb=args.lse_per_gb,
    )
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    checkpoint = (
        RunCheckpoint(args.checkpoint) if args.checkpoint else None
    )
    runner = ParallelRunner(
        workers=args.workers,
        cache=cache,
        timeout_s=args.timeout,
        retries=args.retries,
        checkpoint=checkpoint,
    )
    started = time.perf_counter()
    report = runner.run(specs)
    elapsed = time.perf_counter() - started

    trial_records = [r["nemesis_trial"] for r in report.records]
    summary = summarize_nemesis(trial_records)

    print(
        f"nemesis: {args.layout}, {args.disks} disks,"
        f" {summary['trials']} composed-fault trial(s), oracle on"
    )
    print(
        f"  survived {summary['survived']},"
        f" data-loss {summary['data_loss']},"
        f" SILENT CORRUPTION {summary['silent_corruption']}"
    )
    applied = summary["events_applied"]
    print(
        "  faults applied: "
        + ", ".join(f"{k} x{v}" for k, v in applied.items())
    )
    if summary["events_skipped"]:
        print(
            "  skipped (legality): "
            + ", ".join(
                f"{k} x{v}" for k, v in summary["skip_reasons"].items()
            )
        )
    if summary["mean_resync_ms"] is not None:
        print(
            f"  {summary['crashes']} crash(es), mean resync"
            f" {summary['mean_resync_ms']:.1f} ms,"
            f" {summary['write_hole_stripes']} write-hole stripe(s)"
        )
    _print_io_recovery(summary)
    _print_scrub(summary)
    print(
        f"{len(specs)} trials: {report.executed} simulated,"
        f" {report.cache_hits} from cache,"
        f" {report.checkpoint_hits} from checkpoint"
        f" ({runner.workers} workers, {elapsed:.2f}s)"
    )
    if cache is not None:
        print(f"cache dir: {cache.root}")

    failing = summary["failing_trials"]
    if failing:
        # One self-contained repro command per failing schedule, for
        # the CI artifact and for running locally.
        lines = [
            f"python -m repro nemesis --layout {args.layout}"
            f" --disks {args.disks} --seed {args.seed}"
            f" --trial {t} --no-cache"
            for t in failing
        ]
        for line in lines:
            print(f"reproduce: {line}")
        if args.failures_out:
            _write_report(
                args.failures_out,
                {"failing_trials": failing, "commands": lines},
            )

    if args.out:
        # Deterministic payload modulo the provenance version stamp:
        # CI compares a fresh run against the committed baseline with
        # bench --compare --exact.
        payload = {
            "bench": "nemesis",
            "provenance": sweep_provenance(specs),
            "config": {
                "layout": args.layout,
                "disks": args.disks,
                "trials": trials,
                "start": start,
                "seed": args.seed,
                "clients": args.clients,
                "rows": args.rows,
                "journal": not args.no_journal,
                "scrub_interval_ms": (
                    args.scrub_interval if args.scrub_interval > 0 else None
                ),
                "max_samples": args.samples,
                "transient_io_rate": args.transient_io_rate,
                "lse_per_gb": args.lse_per_gb,
            },
            "summary": summary,
            "trials": [
                {
                    "trial": t["trial"],
                    "classification": t["classification"],
                    "schedule_hash": t["schedule_hash"],
                    "events": [
                        {"kind": e["kind"], "outcome": e["outcome"]}
                        for e in t["events"]
                    ],
                    "crashes": len(t["crashes"]),
                    "lost_units": t["lost_units"],
                    "corruption_events": t["oracle"]["corruption_events"],
                    "samples": t["samples"],
                }
                for t in trial_records
            ],
        }
        _write_report(args.out, payload)
    return 1 if failing else 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.openloop import (
        openloop_specs,
        summarize_openloop,
    )
    from repro.runner import (
        ParallelRunner,
        ResultCache,
        RunCheckpoint,
        default_cache_dir,
        sweep_provenance,
    )

    layouts = args.layouts
    rates = args.rates
    arrivals = args.arrivals
    if args.quick:
        layouts = ["raid5", "pddl"]
        rates = [350.0, 550.0]
        arrivals = 150
    specs = openloop_specs(
        layouts,
        rates,
        phases=args.phases,
        arrival=args.arrival,
        arrivals=arrivals,
        seed=args.seed,
        disks=args.disks,
        queue_depth=args.queue_depth,
        service_slots=args.service_slots,
        slo_p99_ms=args.slo_p99,
        slo_p999_ms=args.slo_p999,
        horizon_ms=args.horizon,
    )
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    checkpoint = (
        RunCheckpoint(args.checkpoint) if args.checkpoint else None
    )
    runner = ParallelRunner(
        workers=args.workers,
        cache=cache,
        timeout_s=args.timeout,
        retries=args.retries,
        checkpoint=checkpoint,
    )
    started = time.perf_counter()
    report = runner.run(specs)
    elapsed = time.perf_counter() - started

    trial_records = [r["openloop"] for r in report.records]
    summary = summarize_openloop(trial_records)

    print(
        f"traffic: {args.arrival} arrivals, {len(layouts)} layout(s) x"
        f" {len(rates)} offered load(s) x {len(args.phases)} phase(s),"
        f" {arrivals} arrivals/trial"
    )
    print(
        f"  overloaded {summary['overloaded_trials']}/{summary['trials']}"
        f" trial(s), SLO-violating {summary['slo_violated_trials']},"
        f" shed {summary['shed_total']} arrival(s)"
    )
    for layout in sorted(summary["knees"]):
        knees = summary["knees"][layout]
        rendered = ", ".join(
            f"{phase}: {'-' if rate is None else f'{rate:g}/s'}"
            for phase, rate in sorted(knees.items())
        )
        print(f"  knee[{layout}]  {rendered}")
    for entry in summary["divergence"]:
        print(
            f"  diverges: {entry['layout']} @ {entry['rate_per_s']:g}/s"
            f" — rebuild p999 {entry['rebuild_p999_ms']:.1f} ms"
            f" (ff {entry['ff_p999_ms']:.1f} ms,"
            f" {entry['rebuild_shed']} shed)"
        )
    _print_io_recovery(summary)
    print(
        f"{len(specs)} trials: {report.executed} simulated,"
        f" {report.cache_hits} from cache,"
        f" {report.checkpoint_hits} from checkpoint"
        f" ({runner.workers} workers, {elapsed:.2f}s)"
    )
    if cache is not None:
        print(f"cache dir: {cache.root}")

    if args.out:
        # Deterministic payload modulo the provenance version stamp:
        # CI compares a fresh run against the committed baseline with
        # bench --compare --exact.  Trials are summarized (no raw
        # histogram buckets or per-disk counters) to keep the committed
        # file small; the full records live in the result cache.
        payload = {
            "bench": "traffic",
            "provenance": sweep_provenance(specs),
            "config": {
                "layouts": list(layouts),
                "rates_per_s": list(rates),
                "phases": list(args.phases),
                "arrival": args.arrival,
                "arrivals": arrivals,
                "seed": args.seed,
                "disks": args.disks,
                "queue_depth": args.queue_depth,
                "service_slots": args.service_slots,
                "slo_p99_ms": args.slo_p99,
                "slo_p999_ms": args.slo_p999,
                "horizon_ms": args.horizon,
            },
            "summary": summary,
            "trials": [
                {
                    "layout": t["layout"],
                    "phase": t["phase"],
                    "rate_per_s": t["rate_per_s"],
                    "offered": t["offered"],
                    "completed": t["completed"],
                    "shed": t["shed"],
                    "truncated": t["truncated"],
                    "overloaded": t["overloaded"],
                    "slo_violated": t["slo_violated"],
                    "tail": t["tail"],
                    "time_in_violation_ms": t["slo"][
                        "time_in_violation_ms"
                    ],
                    "violation_windows": t["slo"]["violation_windows"],
                    "queue_high_water": t["queue"]["queue_high_water"],
                    "mean_wait_ms": t["queue"]["mean_wait_ms"],
                    "overload": t["overload"],
                    "modes": t["modes"],
                }
                for t in trial_records
            ],
        }
        _write_report(args.out, payload)
    return 0


def _cmd_failslow(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.failslow import (
        failslow_specs,
        summarize_failslow,
    )
    from repro.runner import (
        ParallelRunner,
        ResultCache,
        RunCheckpoint,
        default_cache_dir,
        sweep_provenance,
    )

    layouts = args.layouts
    arrivals = args.arrivals
    rebuild_rows = args.rebuild_rows
    if args.quick:
        layouts = ["raid5", "pddl"]
        arrivals = 150
        rebuild_rows = 60
    specs = failslow_specs(
        layouts,
        defenses=args.defenses,
        rate_per_s=args.rate,
        arrivals=arrivals,
        seed=args.seed,
        disks=args.disks,
        slow_disk=args.slow_disk,
        slow_multiplier=args.slow_multiplier,
        rebuild_rows=rebuild_rows,
        hedge_deferral_ms=args.hedge_deferral,
        adaptive_max_ms=args.adaptive_max,
        slo_p99_ms=args.slo_p99,
        slo_p999_ms=args.slo_p999,
        horizon_ms=args.horizon,
    )
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    checkpoint = (
        RunCheckpoint(args.checkpoint) if args.checkpoint else None
    )
    runner = ParallelRunner(
        workers=args.workers,
        cache=cache,
        timeout_s=args.timeout,
        retries=args.retries,
        checkpoint=checkpoint,
    )
    started = time.perf_counter()
    report = runner.run(specs)
    elapsed = time.perf_counter() - started

    trial_records = [r["failslow"] for r in report.records]
    summary = summarize_failslow(trial_records)

    print(
        f"failslow: {len(layouts)} layout(s) x"
        f" {len(args.defenses)} defense(s),"
        f" {arrivals} arrivals/trial @ {args.rate:g}/s,"
        f" {args.slow_multiplier:g}x fail-slow disk"
    )
    print(
        f"  SLO-violating {summary['slo_violated_trials']}"
        f"/{summary['trials']} trial(s),"
        f" truncated {summary['truncated_trials']}"
    )
    for layout in sorted(summary["hedging"]):
        h = summary["hedging"][layout]
        win = "-" if h["win_rate"] is None else f"{h['win_rate']:.0%}"
        both = (
            ""
            if h["both_p999_ms"] is None
            else f" (both: {h['both_p999_ms']:.1f})"
        )
        print(
            f"  hedge[{layout}]  p999 {h['none_p999_ms']:.1f} ->"
            f" {h['hedge_p999_ms']:.1f} ms{both},"
            f" {h['won']}/{h['launched']} won ({win}),"
            f" {h['quarantines']} quarantine(s)"
        )
    for layout in sorted(summary["adaptive"]):
        a = summary["adaptive"][layout]
        inflation = (
            "-"
            if a["rebuild_inflation"] is None
            else f"{a['rebuild_inflation']:.2f}x"
        )
        print(
            f"  aimd[{layout}]   p99 violated"
            f" {a['none_p99_violated']} -> {a['adaptive_p99_violated']},"
            f" rebuild {inflation},"
            f" {a['backoffs']} backoff(s) / {a['sprints']} sprint(s)"
        )
    _print_io_recovery(summary)
    _print_scrub(summary)
    print(
        f"{len(specs)} trials: {report.executed} simulated,"
        f" {report.cache_hits} from cache,"
        f" {report.checkpoint_hits} from checkpoint"
        f" ({runner.workers} workers, {elapsed:.2f}s)"
    )
    if cache is not None:
        print(f"cache dir: {cache.root}")

    if args.out:
        # Deterministic payload modulo the provenance version stamp —
        # CI compares a fresh run against the committed baseline with
        # bench --compare --exact.  Trials are summarized (tails and
        # defense counters, no raw instrumentation) to keep the
        # committed file small.
        payload = {
            "bench": "failslow",
            "provenance": sweep_provenance(specs),
            "config": {
                "layouts": list(layouts),
                "defenses": list(args.defenses),
                "rate_per_s": args.rate,
                "arrivals": arrivals,
                "seed": args.seed,
                "disks": args.disks,
                "slow_disk": args.slow_disk,
                "slow_multiplier": args.slow_multiplier,
                "rebuild_rows": rebuild_rows,
                "hedge_deferral_ms": args.hedge_deferral,
                "adaptive_max_ms": args.adaptive_max,
                "slo_p99_ms": args.slo_p99,
                "slo_p999_ms": args.slo_p999,
                "horizon_ms": args.horizon,
            },
            "summary": summary,
            "trials": [
                {
                    "layout": t["layout"],
                    "defense": t["defense"],
                    "rate_per_s": t["rate_per_s"],
                    "offered": t["offered"],
                    "completed": t["completed"],
                    "shed": t["shed"],
                    "truncated": t["truncated"],
                    "slo_violated": t["slo_violated"],
                    "tail": t["tail"],
                    "time_in_violation_ms": t["slo"][
                        "time_in_violation_ms"
                    ],
                    "violation_windows": t["slo"]["violation_windows"],
                    "rebuild": {
                        "finished": t["rebuild"]["finished"],
                        "steps": t["rebuild"]["steps"],
                        "duration_ms": t["rebuild"]["duration_ms"],
                    },
                    "failslow": t["failslow"],
                    "hedging": t.get("hedging"),
                    "adaptive": t.get("adaptive"),
                }
                for t in trial_records
            ],
        }
        _write_report(args.out, payload)
    return 0


def _cmd_corruption(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.corruption import (
        corruption_specs,
        summarize_corruption,
    )
    from repro.runner import (
        ParallelRunner,
        ResultCache,
        RunCheckpoint,
        default_cache_dir,
        sweep_provenance,
    )

    layouts = args.layouts
    trials = args.trials
    arrivals = args.arrivals
    if args.quick:
        layouts = ["raid5", "pddl"]
        trials = 3
        arrivals = 120
    specs = corruption_specs(
        layouts,
        defenses=args.defenses,
        trials=trials,
        seed=args.seed,
        start=args.start,
        disks=args.disks,
        lost_rate=args.lost_rate,
        misdirected_rate=args.misdirected_rate,
        bitrot_cells=args.bitrot_cells,
        rate_per_s=args.rate,
        arrivals=arrivals,
        read_fraction=args.read_fraction,
        span_units=args.span,
        fail_at_ms=args.fail_at,
        checksum_latency_ms=args.checksum_latency,
        scrub_interval_ms=args.scrub_interval,
        horizon_ms=args.horizon,
    )
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    checkpoint = (
        RunCheckpoint(args.checkpoint) if args.checkpoint else None
    )
    runner = ParallelRunner(
        workers=args.workers,
        cache=cache,
        timeout_s=args.timeout,
        retries=args.retries,
        checkpoint=checkpoint,
    )
    started = time.perf_counter()
    report = runner.run(specs)
    elapsed = time.perf_counter() - started

    trial_records = [r["corruption"] for r in report.records]
    summary = summarize_corruption(trial_records)

    print(
        f"corruption: {len(layouts)} layout(s) x"
        f" {len(args.defenses)} defense(s) x {trials} trial(s),"
        f" {arrivals} arrivals/trial @ {args.rate:g}/s"
    )
    silent = summary["silent_by_defense"]
    print(
        "  silent by defense: "
        + ", ".join(f"{d}={silent[d]}" for d in sorted(silent))
    )
    print(
        f"  defended tiers served {summary['defended_silent_total']}"
        " silent corruption event(s);"
        f" undefended served {summary['undefended_silent_total']}"
    )
    for layout in summary["layouts"]:
        tiers = summary["by_tier"][layout]
        cost = summary["latency_cost_vs_none"].get(layout, {})
        parts = []
        for defense in sorted(tiers):
            entry = tiers[defense]
            factor = cost.get(defense)
            label = (
                f"{defense} {entry['mean_latency_ms']:.2f}ms"
                if entry["mean_latency_ms"] is not None
                else f"{defense} -"
            )
            if factor is not None and defense != "none":
                label += f" ({factor:.2f}x)"
            parts.append(label)
        print(f"  latency[{layout}]: " + ", ".join(parts))
        for defense in sorted(tiers):
            audit = tiers[defense].get("scrub_audit")
            if audit:
                print(
                    f"  audit[{layout}/{defense}]:"
                    f" {audit['stripes_audited']} stripe-cells audited,"
                    f" {audit['audit_mismatches']} mismatch(es),"
                    f" {audit['audit_repairs']} repaired,"
                    f" {audit['audit_unrepairable']} unrepairable"
                )
    print(
        f"{len(specs)} trials: {report.executed} simulated,"
        f" {report.cache_hits} from cache,"
        f" {report.checkpoint_hits} from checkpoint"
        f" ({runner.workers} workers, {elapsed:.2f}s)"
    )
    if cache is not None:
        print(f"cache dir: {cache.root}")

    if args.out:
        # Deterministic payload modulo the provenance version stamp —
        # CI compares a fresh run against the committed baseline with
        # bench --compare --exact.  Trials are summarized (ledger and
        # latency, no raw instrumentation) to keep the file small.
        payload = {
            "bench": "corruption",
            "provenance": sweep_provenance(specs),
            "config": {
                "layouts": list(layouts),
                "defenses": list(args.defenses),
                "trials": trials,
                "seed": args.seed,
                "start": args.start,
                "disks": args.disks,
                "lost_rate": args.lost_rate,
                "misdirected_rate": args.misdirected_rate,
                "bitrot_cells": args.bitrot_cells,
                "rate_per_s": args.rate,
                "arrivals": arrivals,
                "read_fraction": args.read_fraction,
                "span_units": args.span,
                "fail_at_ms": args.fail_at,
                "checksum_latency_ms": args.checksum_latency,
                "scrub_interval_ms": args.scrub_interval,
                "horizon_ms": args.horizon,
            },
            "summary": summary,
            "trials": [
                {
                    "layout": t["layout"],
                    "defense": t["defense"],
                    "trial": t["trial"],
                    "classification": t["classification"],
                    "offered": t["offered"],
                    "completed": t["completed"],
                    "shed": t["shed"],
                    "truncated": t["truncated"],
                    "latency": t["latency"]["all"],
                    "throughput_per_s": t["throughput_per_s"],
                    "corruption": t["corruption"],
                    "checksum": t.get("checksum"),
                    "scrub_audit": t.get("scrub_audit"),
                }
                for t in trial_records
            ],
        }
        _write_report(args.out, payload)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.runner.spec import ExperimentSpec, LifecycleSpec
    from repro.sim.profile import diff_profiles, profile_spec

    if args.lifecycle:
        spec = LifecycleSpec(
            layout=args.layout,
            size_kb=args.size,
            is_write=args.write,
            clients=args.clients,
            seed=args.seed,
            fault_time_ms=args.fault_time,
            degraded_dwell_ms=args.dwell,
            rebuild_rows=args.rebuild_rows,
            post_samples=args.post_samples,
            max_samples=args.samples,
        )
    else:
        spec = ExperimentSpec(
            layout=args.layout,
            size_kb=args.size,
            is_write=args.write,
            clients=args.clients,
            mode=args.mode,
            seed=args.seed,
            max_samples=args.samples,
        )
    report = profile_spec(spec, top=args.top, sort=args.sort)
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read profile baseline {args.baseline!r}: {exc}"
            ) from exc
        except ValueError as exc:
            raise ConfigurationError(
                f"profile baseline {args.baseline!r} is not JSON: {exc}"
            ) from exc
        diff = diff_profiles(baseline, report.to_dict())
        print(diff.render())
        if args.out:
            print()
            _write_report(args.out, diff.to_dict(), indent=1)
        return 0
    print(report.render())
    if args.out:
        print()
        _write_report(args.out, report.to_dict(), indent=1)
    return 0


def _int_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PDDL disk-array declustering reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    goals = sub.add_parser("goals", help="machine-checked layout goals")
    goals.add_argument("--layouts", nargs="+", default=DEFAULT_LAYOUTS)
    goals.add_argument("--disks", "-n", type=int, default=13)
    goals.add_argument("--width", "-k", type=int, default=4)
    goals.set_defaults(func=_cmd_goals)

    fig3 = sub.add_parser("figure3", help="disk working set sizes")
    fig3.add_argument(
        "--sizes", type=_int_list, default=[8, 48, 96, 144, 192, 240]
    )
    fig3.add_argument("--layouts", nargs="+", default=DEFAULT_LAYOUTS)
    fig3.set_defaults(func=_cmd_figure3)

    resp = sub.add_parser("response", help="response-time experiment")
    resp.add_argument("--size", type=int, default=96, help="access KB")
    resp.add_argument("--write", action="store_true")
    resp.add_argument("--clients", type=_int_list, default=[1, 8, 25])
    resp.add_argument("--mode", choices=sorted(_MODES), default="ff")
    resp.add_argument("--samples", type=int, default=300)
    resp.add_argument("--seed", type=int, default=0)
    resp.add_argument("--no-stopping-rule", action="store_true")
    resp.add_argument("--layouts", nargs="+", default=DEFAULT_LAYOUTS)
    resp.set_defaults(func=_cmd_response)

    seeks = sub.add_parser("seeks", help="seek/no-switch operation mixes")
    seeks.add_argument("--sizes", type=_int_list, default=[8, 96, 336])
    seeks.add_argument("--write", action="store_true")
    seeks.add_argument("--mode", choices=sorted(_MODES), default="ff")
    seeks.add_argument("--samples", type=int, default=200)
    seeks.add_argument("--layouts", nargs="+", default=DEFAULT_LAYOUTS)
    seeks.set_defaults(func=_cmd_seeks)

    t1 = sub.add_parser("table1", help="base permutation search")
    t1.add_argument("--widths", type=_int_list, default=[5, 6, 7])
    t1.add_argument("--stripes", type=_int_list, default=[1, 2, 3, 4])
    t1.add_argument("--restarts", type=int, default=10)
    t1.add_argument("--max-steps", type=int, default=2000)
    t1.set_defaults(func=_cmd_table1)

    t3 = sub.add_parser("table3", help="scheme implementation costs")
    t3.add_argument("--iterations", type=int, default=20_000)
    t3.set_defaults(func=_cmd_table3)

    plan = sub.add_parser("plan", help="plan a PDDL deployment")
    plan.add_argument("disks", type=int)
    plan.add_argument("width", type=int)
    plan.set_defaults(func=_cmd_plan)

    bench = sub.add_parser(
        "bench", help="parallel, cached response-time sweep"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small canned sweep (8/48 KB, 1/4 clients, 40 samples)",
    )
    bench.add_argument("--sizes", type=_int_list, default=[8, 48, 96, 240])
    bench.add_argument("--clients", type=_int_list, default=[1, 4, 10, 25])
    bench.add_argument("--samples", type=int, default=150)
    bench.add_argument("--write", action="store_true")
    bench.add_argument("--mode", choices=sorted(_MODES), default="ff")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: $REPRO_BENCH_WORKERS or 1)",
    )
    bench.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    bench.add_argument("--no-cache", action="store_true")
    bench.add_argument("--layouts", nargs="+", default=DEFAULT_LAYOUTS)
    bench.add_argument(
        "--compare", action="store_true",
        help="regression gate instead of a sweep: self-check the"
        " committed BENCH_*.json reports (or --baseline/--candidate"
        " pairs) and exit non-zero on any problem",
    )
    bench.add_argument(
        "--baseline", action="append", default=None, metavar="FILE",
        help="bench report(s) to check; with --candidate, the last one"
        " is the comparison baseline (default: ./BENCH_*.json)",
    )
    bench.add_argument(
        "--candidate", default=None, metavar="FILE",
        help="fresh report to compare against the baseline",
    )
    bench.add_argument(
        "--exact", action="store_true",
        help="require byte-agreement with the baseline, ignoring only"
        " the provenance version stamp (CI committed-baseline check)",
    )
    bench.set_defaults(func=_cmd_bench)

    life = sub.add_parser(
        "lifecycle",
        help="reconstruction-under-load lifecycle runs (Figures 8-14, 18)",
    )
    life.add_argument(
        "--quick", action="store_true",
        help="small canned sweep (pddl vs parity-declustering, 4 clients)",
    )
    life.add_argument(
        "--layouts", nargs="+", default=["pddl", "parity-declustering"]
    )
    life.add_argument("--clients", type=_int_list, default=[1, 4, 10])
    life.add_argument("--size", type=int, default=8, help="access KB")
    life.add_argument("--write", action="store_true")
    life.add_argument("--disks", "-n", type=int, default=13)
    life.add_argument(
        "--fault-time", type=float, default=500.0,
        help="scripted failure time in ms (ignored with --mttf)",
    )
    life.add_argument(
        "--mttf", type=float, default=None,
        help="draw the failure from per-disk exponential lifetimes"
        " with this MTTF in hours",
    )
    life.add_argument(
        "--dwell", type=float, default=0.0,
        help="degraded dwell before the rebuild starts, ms",
    )
    life.add_argument(
        "--rebuild-rows", type=int, default=None,
        help="limit the rebuild sweep to this many rows",
    )
    life.add_argument("--rebuild-parallel", type=int, default=1)
    life.add_argument(
        "--rebuild-throttle", type=float, default=0.0,
        help="idle ms per rebuild slot between steps",
    )
    life.add_argument("--post-samples", type=int, default=100)
    life.add_argument(
        "--samples", type=int, default=4000,
        help="overall response budget per run",
    )
    life.add_argument("--seed", type=int, default=0)
    life.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: $REPRO_BENCH_WORKERS or 1)",
    )
    life.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    life.add_argument("--no-cache", action="store_true")
    life.add_argument(
        "--oracle", action="store_true",
        help="shadow every run with the integrity oracle and report"
        " silent-corruption counts",
    )
    life.add_argument(
        "--out", default=None,
        help="write a JSON summary (rebuild duration, per-mode means)",
    )
    life.set_defaults(func=_cmd_lifecycle)

    camp = sub.add_parser(
        "campaign",
        help="multi-fault reliability campaign (loss probability, MTTDL)",
    )
    camp.add_argument(
        "--quick", action="store_true",
        help="small canned campaign (24 trials, aggressive MTTF/dwell so"
        " double faults actually land mid-rebuild)",
    )
    camp.add_argument("--layout", default="pddl")
    camp.add_argument("--disks", "-n", type=int, default=13)
    camp.add_argument("--trials", type=int, default=200)
    camp.add_argument(
        "--faults", type=int, default=2,
        help="whole-disk failures drawn per trial",
    )
    camp.add_argument(
        "--mttf", type=float, default=0.03,
        help="per-disk MTTF in hours (small on purpose: the exposure"
        " window is milliseconds of simulated time)",
    )
    camp.add_argument(
        "--dwell", type=float, default=4000.0,
        help="degraded dwell before each rebuild starts, ms",
    )
    camp.add_argument(
        "--rebuild-rows", type=int, default=26,
        help="limit the rebuild sweep to this many rows",
    )
    camp.add_argument("--rebuild-parallel", type=int, default=1)
    camp.add_argument(
        "--rebuild-throttle", type=float, default=0.0,
        help="idle ms per rebuild slot between steps",
    )
    camp.add_argument(
        "--lse-per-gb", type=float, default=0.0,
        help="expected latent sector errors seeded per GB of capacity",
    )
    camp.add_argument(
        "--scrub-interval", type=float, default=None,
        help="periodic scrub pass interval in ms (off by default)",
    )
    camp.add_argument(
        "--scrub-throttle", type=float, default=0.0,
        help="idle ms between scrub reads",
    )
    camp.add_argument(
        "--clients", type=int, default=0,
        help="foreground client load during each trial",
    )
    camp.add_argument(
        "--transient-io-rate", type=float, default=0.0,
        help="per-operation transient I/O error probability, recovered"
        " by the controller's retry/escalation machinery",
    )
    camp.add_argument(
        "--oracle", action="store_true",
        help="shadow every trial with the integrity oracle and report"
        " silent-corruption counts",
    )
    camp.add_argument("--seed", type=int, default=0)
    camp.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: $REPRO_BENCH_WORKERS or 1)",
    )
    camp.add_argument(
        "--timeout", type=float, default=None,
        help="per-trial deadline in seconds (enables the hardened pool)",
    )
    camp.add_argument(
        "--retries", type=int, default=0,
        help="crash/timeout retries per trial (capped exponential backoff)",
    )
    camp.add_argument(
        "--checkpoint", default=None,
        help="JSONL checkpoint file; a killed run resumes from it",
    )
    camp.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    camp.add_argument("--no-cache", action="store_true")
    camp.add_argument(
        "--out", default="BENCH_campaign.json",
        help="JSON report path (deterministic content; '' to skip)",
    )
    camp.set_defaults(func=_cmd_campaign)

    crash = sub.add_parser(
        "crash",
        help="controller-crash trials: journaled vs full-sweep resync",
    )
    crash.add_argument(
        "--quick", action="store_true",
        help="small canned sweep (pddl, 2/4 clients, journal on/off)",
    )
    crash.add_argument("--layouts", nargs="+", default=["pddl"])
    crash.add_argument("--clients", type=_int_list, default=[2, 4, 8])
    crash.add_argument("--disks", "-n", type=int, default=13)
    crash.add_argument("--size", type=int, default=8, help="access KB")
    crash.add_argument(
        "--boundary", type=int, default=150,
        help="crash at this write-plan phase boundary (array-wide count;"
        " keep it below --pre-samples or the crash never fires)",
    )
    crash.add_argument(
        "--journal-latency", type=float, default=0.05,
        help="NVRAM journal write latency in ms (journal-on trials)",
    )
    crash.add_argument(
        "--resync-rows", type=int, default=26,
        help="rows the full-sweep resync baseline covers (client writes"
        " are confined to the same region)",
    )
    crash.add_argument("--pre-samples", type=int, default=200)
    crash.add_argument("--post-samples", type=int, default=50)
    crash.add_argument("--seed", type=int, default=0)
    crash.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: $REPRO_BENCH_WORKERS or 1)",
    )
    crash.add_argument(
        "--timeout", type=float, default=None,
        help="per-trial deadline in seconds (enables the hardened pool)",
    )
    crash.add_argument(
        "--retries", type=int, default=0,
        help="crash/timeout retries per trial (capped exponential backoff)",
    )
    crash.add_argument(
        "--checkpoint", default=None,
        help="JSONL checkpoint file; a killed run resumes from it",
    )
    crash.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    crash.add_argument("--no-cache", action="store_true")
    crash.add_argument(
        "--out", default="BENCH_crash.json",
        help="JSON report path (deterministic content; '' to skip)",
    )
    crash.set_defaults(func=_cmd_crash)

    nem = sub.add_parser(
        "nemesis",
        help="composed-fault campaigns under the integrity oracle",
    )
    nem.add_argument(
        "--quick", action="store_true",
        help="small canned campaign (24 drawn schedules)",
    )
    nem.add_argument("--layout", default="pddl")
    nem.add_argument("--disks", "-n", type=int, default=13)
    nem.add_argument("--trials", type=int, default=200)
    nem.add_argument(
        "--trial", type=int, default=None,
        help="replay exactly this trial index (the failing-seed repro"
        " path; overrides --trials/--quick)",
    )
    nem.add_argument("--seed", type=int, default=0)
    nem.add_argument(
        "--clients", type=int, default=2,
        help="closed-loop writers per cohort (a crash stalls the live"
        " cohort; recovery starts a fresh one)",
    )
    nem.add_argument(
        "--rows", type=int, default=26,
        help="rows covered by rebuild/resync/scrub sweeps (client"
        " writes are confined to the same region)",
    )
    nem.add_argument(
        "--no-journal", action="store_true",
        help="recover crashes with the full-sweep resync baseline"
        " instead of the NVRAM dirty-stripe journal",
    )
    nem.add_argument(
        "--scrub-interval", type=float, default=400.0,
        help="periodic scrub pass interval in ms (scrub-off windows"
        " pause it; pass 0 to disable scrubbing entirely)",
    )
    nem.add_argument(
        "--samples", type=int, default=240,
        help="total client responses per trial across all cohorts",
    )
    nem.add_argument(
        "--transient-io-rate", type=float, default=0.0,
        help="ambient per-operation transient error probability"
        " outside storm windows",
    )
    nem.add_argument(
        "--lse-per-gb", type=float, default=0.0,
        help="latent sector errors seeded up front per GB (bursts in"
        " the schedule add more mid-run)",
    )
    nem.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: $REPRO_BENCH_WORKERS or 1)",
    )
    nem.add_argument(
        "--timeout", type=float, default=None,
        help="per-trial deadline in seconds (enables the hardened pool)",
    )
    nem.add_argument(
        "--retries", type=int, default=0,
        help="crash/timeout retries per trial (capped exponential backoff)",
    )
    nem.add_argument(
        "--checkpoint", default=None,
        help="JSONL checkpoint file; a killed run resumes from it",
    )
    nem.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    nem.add_argument("--no-cache", action="store_true")
    nem.add_argument(
        "--out", default="BENCH_nemesis.json",
        help="JSON report path (deterministic content; '' to skip)",
    )
    nem.add_argument(
        "--failures-out", default="nemesis_failures.txt",
        help="repro-command file written when any trial silently"
        " corrupts ('' to skip)",
    )
    nem.set_defaults(func=_cmd_nemesis)

    traffic = sub.add_parser(
        "traffic",
        help="open-loop offered-load sweeps with SLO/overload accounting",
    )
    traffic.add_argument(
        "--quick", action="store_true",
        help="small canned sweep (raid5+pddl at two offered loads)",
    )
    traffic.add_argument("--layouts", nargs="+", default=DEFAULT_LAYOUTS)
    traffic.add_argument(
        "--rates", nargs="+", type=float,
        default=[250.0, 350.0, 450.0, 550.0],
        help="offered loads in arrivals/second",
    )
    traffic.add_argument(
        "--phases", nargs="+", default=["ff", "rebuild"],
        choices=["ff", "degraded", "rebuild"],
        help="array states the traffic is offered against",
    )
    traffic.add_argument(
        "--arrival", default="poisson",
        choices=["poisson", "mmpp", "trace"],
        help="arrival process (Poisson / bursty MMPP / diurnal trace)",
    )
    traffic.add_argument(
        "--arrivals", type=int, default=300,
        help="arrivals offered per trial",
    )
    traffic.add_argument("--seed", type=int, default=0)
    traffic.add_argument("--disks", "-n", type=int, default=13)
    traffic.add_argument(
        "--queue-depth", type=int, default=64,
        help="admission FIFO bound; arrivals beyond it are shed",
    )
    traffic.add_argument(
        "--service-slots", type=int, default=12,
        help="accesses in flight in the array at once",
    )
    traffic.add_argument(
        "--slo-p99", type=float, default=120.0,
        help="declared p99 latency ceiling, ms",
    )
    traffic.add_argument(
        "--slo-p999", type=float, default=250.0,
        help="declared p999 latency ceiling, ms",
    )
    traffic.add_argument(
        "--horizon", type=float, default=30000.0,
        help="per-trial simulation-time safety stop, ms",
    )
    traffic.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: $REPRO_BENCH_WORKERS or 1)",
    )
    traffic.add_argument(
        "--timeout", type=float, default=None,
        help="per-trial deadline in seconds (enables the hardened pool)",
    )
    traffic.add_argument(
        "--retries", type=int, default=0,
        help="crash/timeout retries per trial (capped exponential backoff)",
    )
    traffic.add_argument(
        "--checkpoint", default=None,
        help="JSONL checkpoint file; a killed run resumes from it",
    )
    traffic.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    traffic.add_argument("--no-cache", action="store_true")
    traffic.add_argument(
        "--out", default="BENCH_traffic.json",
        help="JSON report path (deterministic content; '' to skip)",
    )
    traffic.set_defaults(func=_cmd_traffic)

    fslow = sub.add_parser(
        "failslow",
        help="tail-tolerance defenses under a fail-slow disk mid-rebuild",
    )
    fslow.add_argument(
        "--quick", action="store_true",
        help="small canned comparison (raid5+pddl, short rebuild)",
    )
    fslow.add_argument(
        "--layouts", nargs="+", default=["raid5", "pddl"],
        help="layouts to compare (the bench contrasts raid5 vs pddl)",
    )
    fslow.add_argument(
        "--defenses", nargs="+",
        default=["none", "hedge", "adaptive", "both"],
        choices=["none", "hedge", "adaptive", "both"],
        help="tail-tolerance configurations to run",
    )
    fslow.add_argument(
        "--rate", type=float, default=40.0,
        help="offered load in arrivals/second",
    )
    fslow.add_argument(
        "--arrivals", type=int, default=1000,
        help="arrivals offered per trial",
    )
    fslow.add_argument("--seed", type=int, default=2)
    fslow.add_argument("--disks", "-n", type=int, default=13)
    fslow.add_argument(
        "--slow-disk", type=int, default=1,
        help="the gray-failure disk (must differ from the failed disk 0)",
    )
    fslow.add_argument(
        "--slow-multiplier", type=float, default=5.0,
        help="service-time multiplier of the fail-slow disk",
    )
    fslow.add_argument(
        "--rebuild-rows", type=int, default=300,
        help="stripe rows swept by the rebuild",
    )
    fslow.add_argument(
        "--hedge-deferral", type=float, default=30.0,
        help="ms a degraded read waits before hedging",
    )
    fslow.add_argument(
        "--adaptive-max", type=float, default=512.0,
        help="AIMD rebuild-throttle ceiling, ms",
    )
    fslow.add_argument(
        "--slo-p99", type=float, default=250.0,
        help="declared p99 latency ceiling, ms",
    )
    fslow.add_argument(
        "--slo-p999", type=float, default=1500.0,
        help="declared p999 latency ceiling, ms",
    )
    fslow.add_argument(
        "--horizon", type=float, default=120000.0,
        help="per-trial simulation-time safety stop, ms",
    )
    fslow.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: $REPRO_BENCH_WORKERS or 1)",
    )
    fslow.add_argument(
        "--timeout", type=float, default=None,
        help="per-trial deadline in seconds (enables the hardened pool)",
    )
    fslow.add_argument(
        "--retries", type=int, default=0,
        help="crash/timeout retries per trial (capped exponential backoff)",
    )
    fslow.add_argument(
        "--checkpoint", default=None,
        help="JSONL checkpoint file; a killed run resumes from it",
    )
    fslow.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    fslow.add_argument("--no-cache", action="store_true")
    fslow.add_argument(
        "--out", default="BENCH_failslow.json",
        help="JSON report path (deterministic content; '' to skip)",
    )
    fslow.set_defaults(func=_cmd_failslow)

    corr = sub.add_parser(
        "corruption",
        help="silent-corruption defense tiers: checksums, write-verify,"
        " parity-audit scrub",
    )
    corr.add_argument(
        "--quick", action="store_true",
        help="small canned comparison (raid5+pddl, 3 trials/tier)",
    )
    corr.add_argument(
        "--layouts", nargs="+", default=["raid5", "pddl"],
        help="layouts to compare (the bench contrasts raid5 vs pddl)",
    )
    corr.add_argument(
        "--defenses", nargs="+",
        default=["none", "checksum", "verify", "audit"],
        choices=["none", "checksum", "verify", "audit"],
        help="defense tiers to run",
    )
    corr.add_argument(
        "--trials", type=int, default=25,
        help="seeded trials per (layout, defense) tier",
    )
    corr.add_argument(
        "--start", type=int, default=0,
        help="first trial index (replay a failing trial from CI)",
    )
    corr.add_argument("--seed", type=int, default=0)
    corr.add_argument("--disks", "-n", type=int, default=13)
    corr.add_argument(
        "--lost-rate", type=float, default=0.02,
        help="per-write probability the drive acks without persisting",
    )
    corr.add_argument(
        "--misdirected-rate", type=float, default=0.01,
        help="per-write probability the payload lands at the wrong LBA",
    )
    corr.add_argument(
        "--bitrot-cells", type=float, default=0.0,
        help="Poisson mean of decayed cells per disk",
    )
    corr.add_argument(
        "--rate", type=float, default=60.0,
        help="offered load in arrivals/second",
    )
    corr.add_argument(
        "--arrivals", type=int, default=300,
        help="arrivals offered per trial",
    )
    corr.add_argument(
        "--read-fraction", type=float, default=0.5,
        help="fraction of arrivals that are reads",
    )
    corr.add_argument(
        "--span", type=int, default=64,
        help="working-set size in data units (small = cells get re-read)",
    )
    corr.add_argument(
        "--fail-at", type=float, default=None,
        help="optionally fail disk 0 at this ms; the array stays degraded",
    )
    corr.add_argument(
        "--checksum-latency", type=float, default=0.02,
        help="per-write checksum+version metadata persist cost, ms",
    )
    corr.add_argument(
        "--scrub-interval", type=float, default=120.0,
        help="parity-audit scrub cadence, ms (audit tier only)",
    )
    corr.add_argument(
        "--horizon", type=float, default=60000.0,
        help="per-trial simulation-time safety stop, ms",
    )
    corr.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: $REPRO_BENCH_WORKERS or 1)",
    )
    corr.add_argument(
        "--timeout", type=float, default=None,
        help="per-trial deadline in seconds (enables the hardened pool)",
    )
    corr.add_argument(
        "--retries", type=int, default=0,
        help="crash/timeout retries per trial (capped exponential backoff)",
    )
    corr.add_argument(
        "--checkpoint", default=None,
        help="JSONL checkpoint file; a killed run resumes from it",
    )
    corr.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    corr.add_argument("--no-cache", action="store_true")
    corr.add_argument(
        "--out", default="BENCH_corruption.json",
        help="JSON report path (deterministic content; '' to skip)",
    )
    corr.set_defaults(func=_cmd_corruption)

    prof = sub.add_parser(
        "profile",
        help="cProfile one simulation point (hot functions, events/sec)",
    )
    prof.add_argument("--layout", default="pddl")
    prof.add_argument("--size", type=int, default=96, help="access KB")
    prof.add_argument("--write", action="store_true")
    prof.add_argument("--clients", type=int, default=8)
    prof.add_argument("--mode", choices=sorted(_MODES), default="ff")
    prof.add_argument("--samples", type=int, default=300)
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument(
        "--lifecycle", action="store_true",
        help="profile a reconstruction lifecycle run instead of a"
        " response point",
    )
    prof.add_argument(
        "--fault-time", type=float, default=500.0,
        help="lifecycle failure time in ms",
    )
    prof.add_argument(
        "--dwell", type=float, default=300.0,
        help="lifecycle degraded dwell before the rebuild, ms",
    )
    prof.add_argument(
        "--rebuild-rows", type=int, default=26,
        help="lifecycle rebuild sweep row limit",
    )
    prof.add_argument("--post-samples", type=int, default=40)
    prof.add_argument(
        "--top", type=int, default=15, help="hot functions to show"
    )
    prof.add_argument(
        "--sort", choices=["cumulative", "tottime"], default="cumulative"
    )
    prof.add_argument(
        "--out", default=None, help="write the JSON profile report"
    )
    prof.add_argument(
        "--baseline", default=None,
        help="previous profile report (--out JSON) to diff against:"
        " prints per-function cumulative-time deltas and new/vanished"
        " hot functions instead of the raw table",
    )
    prof.set_defaults(func=_cmd_profile)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
