"""Capped exponential backoff shared by every retry loop in the repo.

Two retry loops grew the same arithmetic independently — the
controller's :class:`~repro.array.controller.RetryPolicy` (milliseconds,
simulated clock) and the hardened worker pool's requeue path (seconds,
wall clock).  Both sequences are pinned by regression tests and by
byte-determinism contracts (the controller's delays feed the event
engine, so changing them changes golden traces), so the helper must
reproduce ``min(base * 2**(attempt-1), cap)`` exactly — same operation
order, same float semantics.
"""

from __future__ import annotations

__all__ = ["capped_exponential"]


def capped_exponential(attempt: int, base: float, cap: float) -> float:
    """Delay before retry ``attempt`` (1-indexed): ``base`` doubling per
    attempt, never exceeding ``cap``.

    Attempt 1 waits ``base``, attempt 2 waits ``2*base``, and so on;
    units are the caller's (the controller passes milliseconds, the
    worker pool seconds).  Callers validate ``attempt >= 1`` and
    ``0 <= base <= cap`` themselves — this helper is pure arithmetic on
    the hot retry path.
    """
    return min(base * (2 ** (attempt - 1)), cap)
