"""Analytic reliability models.

Quantifies the paper's §5 claim that "the provision of a spare is one of
the most effective ways to increase mean time to data loss": Markov MTTDL
models for RAID-5, declustered arrays without sparing, and PDDL-style
arrays with distributed sparing, driven by the simulator's measured
rebuild times.
"""

from repro.reliability.mttdl import (
    ArrayReliability,
    CampaignPrediction,
    campaign_loss_probability,
    exponential_lifetime_ms,
    mttdl_declustered,
    mttdl_distributed_sparing,
    mttdl_raid5,
    predict_campaign_loss,
)

__all__ = [
    "ArrayReliability",
    "CampaignPrediction",
    "campaign_loss_probability",
    "exponential_lifetime_ms",
    "mttdl_declustered",
    "mttdl_distributed_sparing",
    "mttdl_raid5",
    "predict_campaign_loss",
]
