"""Mean time to data loss (MTTDL) Markov models.

All models assume exponential disk lifetimes (rate ``1 / mttf``) and
exponential repairs (rate ``1 / mttr``), the standard Gibson-Patterson
analysis.  Data loss means a second failure strikes a stripe that has not
regained redundancy.

Three regimes:

- **RAID-5 / no sparing**: after a failure, the array is exposed until a
  *replacement* disk is installed and rebuilt (``mttr_replace``, hours on
  a good day — a human has to swap hardware).
- **Declustered, no sparing**: same exposure window, but declustering
  shortens rebuild once the replacement arrives; the exposure is dominated
  by replacement time.
- **Distributed sparing (PDDL)**: rebuild starts immediately into spare
  space at rate ``1 / mttr_rebuild`` (minutes to hours, no human in the
  loop); after rebuild, redundancy is restored even before the dead disk
  is replaced.  This is why the paper calls distributed sparing "a sure
  win".

The k-out-of-n structure: during the exposed window, any failure among the
``k - 1`` stripe peers of a lost unit loses data; declustering spreads the
risk over all survivors, so the classic formula uses the full surviving
population for the second-failure rate with a ``(k-1)/(n-1)`` data-loss
probability factor.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ConfigurationError

HOURS_PER_YEAR = 24 * 365.25
MS_PER_HOUR = 3_600_000.0


@dataclass(frozen=True)
class ArrayReliability:
    """MTTDL result with its inputs, for reporting."""

    scheme: str
    n: int
    k: int
    mttf_hours: float
    repair_hours: float
    mttdl_hours: float

    @property
    def mttdl_years(self) -> float:
        return self.mttdl_hours / HOURS_PER_YEAR

    def as_row(self) -> str:
        return (
            f"{self.scheme:28s} n={self.n:<3d} k={self.k:<3d}"
            f" repair={self.repair_hours:7.2f}h"
            f" MTTDL={self.mttdl_years:12.1f} years"
        )


def _validate(n: int, k: int, mttf: float, repair: float) -> None:
    if n < 2 or not 2 <= k <= n:
        raise ConfigurationError(f"bad array shape n={n}, k={k}")
    if mttf <= 0 or repair <= 0:
        raise ConfigurationError("mttf and repair time must be positive")
    if repair >= mttf:
        raise ConfigurationError(
            "repair must be much shorter than disk lifetime"
        )


def mttdl_raid5(
    n: int, mttf_hours: float, mttr_replace_hours: float
) -> ArrayReliability:
    """Classic two-state model: MTTDL = mttf^2 / (n (n-1) mttr).

    Every second failure during the exposure window loses data (the whole
    array is one reliability group).
    """
    _validate(n, n, mttf_hours, mttr_replace_hours)
    mttdl = mttf_hours**2 / (n * (n - 1) * mttr_replace_hours)
    return ArrayReliability(
        scheme="RAID-5 (no sparing)",
        n=n,
        k=n,
        mttf_hours=mttf_hours,
        repair_hours=mttr_replace_hours,
        mttdl_hours=mttdl,
    )


def mttdl_declustered(
    n: int,
    k: int,
    mttf_hours: float,
    mttr_replace_hours: float,
) -> ArrayReliability:
    """Declustered array without spare space.

    A second failure during the window hits a stripe shared with the dead
    disk with probability ~ (k-1)/(n-1) per failed peer; equivalently the
    loss rate scales by that factor relative to RAID-5's.
    """
    _validate(n, k, mttf_hours, mttr_replace_hours)
    loss_fraction = (k - 1) / (n - 1)
    mttdl = mttf_hours**2 / (
        n * (n - 1) * mttr_replace_hours * loss_fraction
    )
    return ArrayReliability(
        scheme="Declustered (no sparing)",
        n=n,
        k=k,
        mttf_hours=mttf_hours,
        repair_hours=mttr_replace_hours,
        mttdl_hours=mttdl,
    )


def mttdl_distributed_sparing(
    n: int,
    k: int,
    mttf_hours: float,
    mttr_rebuild_hours: float,
) -> ArrayReliability:
    """Declustered array with distributed sparing (PDDL).

    The exposure window is the *rebuild into spare space* — no human, no
    replacement drive — after which the array tolerates a further failure
    (running without spare headroom until serviced).  Same formula, much
    smaller repair time, same (k-1)/(n-1) declustering factor over the
    n-1 survivors that keep serving.
    """
    _validate(n, k, mttf_hours, mttr_rebuild_hours)
    loss_fraction = (k - 1) / (n - 1)
    mttdl = mttf_hours**2 / (
        n * (n - 1) * mttr_rebuild_hours * loss_fraction
    )
    return ArrayReliability(
        scheme="PDDL (distributed sparing)",
        n=n,
        k=k,
        mttf_hours=mttf_hours,
        repair_hours=mttr_rebuild_hours,
        mttdl_hours=mttdl,
    )


def exponential_lifetime_ms(
    mttf_hours: float, rng: random.Random
) -> float:
    """One exponential disk-lifetime draw in simulator milliseconds.

    The same MTTF that parameterizes the MTTDL models above also drives
    stochastic fault injection (`repro.faults`): a disk's time-to-failure
    is exponential with rate ``1 / mttf``.
    """
    if mttf_hours <= 0:
        raise ConfigurationError(f"mttf must be positive, got {mttf_hours}")
    return rng.expovariate(1.0 / (mttf_hours * MS_PER_HOUR))


def campaign_loss_probability(
    n: int, mttf_hours: float, window_hours: float
) -> float:
    """P(a second failure lands inside the exposure window).

    After the first failure, each of the ``n - 1`` survivors keeps its
    exponential lifetime (memorylessness), so the time to the *next*
    failure is exponential with rate ``(n - 1) / mttf`` and the second
    failure falls inside a ``window_hours`` exposure with probability
    ``1 - exp(-(n - 1) * window / mttf)``.  This is the per-cycle loss
    probability the multi-fault campaigns estimate empirically — the
    same exposure logic the MTTDL models above integrate analytically.
    """
    if n < 2:
        raise ConfigurationError(f"need >= 2 disks, got {n}")
    if mttf_hours <= 0:
        raise ConfigurationError(f"mttf must be positive, got {mttf_hours}")
    if window_hours < 0:
        raise ConfigurationError(f"negative window {window_hours}")
    return 1.0 - math.exp(-(n - 1) * window_hours / mttf_hours)


@dataclass(frozen=True)
class CampaignPrediction:
    """Analytic per-cycle loss probability, with its inputs."""

    n: int
    mttf_hours: float
    window_hours: float
    loss_probability: float


def predict_campaign_loss(
    n: int, mttf_hours: float, window_hours: float
) -> CampaignPrediction:
    """The analytic counterpart of a simulated multi-fault campaign.

    ``window_hours`` is the exposure per cycle — the degraded dwell plus
    the rebuild duration, both measured by the simulator — over which a
    second whole-disk failure loses data.
    """
    return CampaignPrediction(
        n=n,
        mttf_hours=mttf_hours,
        window_hours=window_hours,
        loss_probability=campaign_loss_probability(
            n, mttf_hours, window_hours
        ),
    )


def rebuild_hours_from_simulation(
    rebuild_ms_per_pattern: float,
    patterns_per_disk: int,
) -> float:
    """Convert a simulated per-pattern rebuild time into a full-disk
    rebuild duration in hours."""
    if rebuild_ms_per_pattern <= 0 or patterns_per_disk < 1:
        raise ConfigurationError("need positive rebuild time and patterns")
    return rebuild_ms_per_pattern * patterns_per_disk / 3_600_000.0
