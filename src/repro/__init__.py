"""repro — Permutation Development Data Layout (PDDL) disk array
declustering, reproduced.

A full reimplementation of Schwarz, Steinberg & Burkhard's HPCA 1999 paper:
the PDDL layout family (Bose construction, GF(2^m) variant, permutation
search, distributed sparing, wrapping), the comparison layouts (DATUM,
PRIME, Parity Declustering, left-symmetric RAID-5, Pseudo-Random), a
mechanical disk-array simulator in the RAIDframe mold, and drivers that
regenerate every table and figure of the paper's evaluation.

Quick start::

    from repro import pddl_for, check_layout

    layout = pddl_for(g=2, k=3)          # the paper's 7-disk example
    report = check_layout(layout)        # machine-checked goals #1-#8
    assert report.goals_met() == [1, 2, 3, 4, 6, 7, 8]

See ``examples/`` for simulation walk-throughs and ``benchmarks/`` for the
figure reproductions.
"""

from repro.array import ArrayController, ArrayMode, LogicalAccess, plan_access
from repro.array.reconstructor import Reconstructor
from repro.core import (
    BasePermutation,
    PDDLLayout,
    PermutationGroup,
    bose_base_permutation,
    bose_gf2_base_permutation,
    pddl_for,
    search_permutation_group,
    wrapped_layout,
)
from repro.errors import ReproError
from repro.layouts import Layout, available_layouts, make_layout
from repro.layouts.properties import PropertyReport, check_layout
from repro.sim import CalendarEngine, HeapEngine, SimulationEngine, make_engine
from repro.workload import AccessSpec, ClosedLoopClient, UniformGenerator

__version__ = "1.0.0"

__all__ = [
    "AccessSpec",
    "ArrayController",
    "ArrayMode",
    "BasePermutation",
    "ClosedLoopClient",
    "CalendarEngine",
    "HeapEngine",
    "Layout",
    "LogicalAccess",
    "PDDLLayout",
    "PermutationGroup",
    "PropertyReport",
    "Reconstructor",
    "ReproError",
    "SimulationEngine",
    "UniformGenerator",
    "available_layouts",
    "bose_base_permutation",
    "bose_gf2_base_permutation",
    "check_layout",
    "make_engine",
    "make_layout",
    "pddl_for",
    "plan_access",
    "search_permutation_group",
    "wrapped_layout",
]
