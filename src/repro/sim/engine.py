"""The event loop.

Deterministic: events at equal times fire in scheduling order.  Time is a
float in milliseconds (matching the disk model's units).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

Callback = Callable[[], None]


class SimulationEngine:
    """A binary-heap discrete-event scheduler.

    >>> engine = SimulationEngine()
    >>> fired = []
    >>> engine.schedule(5.0, lambda: fired.append(engine.now))
    >>> engine.schedule(1.0, lambda: fired.append(engine.now))
    >>> engine.run()
    >>> fired
    [1.0, 5.0]
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callback]] = []
        self._counter = itertools.count()
        self._stopped = False
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` ``delay`` ms from the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callback) -> None:
        """Run ``callback`` at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now = {self.now}"
            )
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def stop(self) -> None:
        """Stop the run loop after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired (whichever comes first)."""
        self._stopped = False
        processed = 0
        while self._heap and not self._stopped:
            if max_events is not None and processed >= max_events:
                break
            time, _, callback = self._heap[0]
            if until is not None and time > until:
                self.now = until
                break
            heapq.heappop(self._heap)
            self.now = time
            callback()
            processed += 1
            self.events_processed += 1

    def pending(self) -> int:
        return len(self._heap)
