"""The event loop.

Deterministic: events at equal times fire in scheduling order.  Time is a
float in milliseconds (matching the disk model's units).

This is the innermost loop of every experiment — millions of events per
figure — so the common cases are deliberately lean: :meth:`run` with no
arguments drains the heap through a tight loop with bound-method locals,
the tie-break counter is a plain integer (no ``itertools.count``
indirection), and the horizon/budget bookkeeping only exists on the
paths that asked for it (:meth:`run_until`, ``max_events``).  All paths
fire the same events in the same order — the golden-trace tests pin it.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

Callback = Callable[[], None]


class SimulationEngine:
    """A binary-heap discrete-event scheduler.

    >>> engine = SimulationEngine()
    >>> fired = []
    >>> engine.schedule(5.0, lambda: fired.append(engine.now))
    >>> engine.schedule(1.0, lambda: fired.append(engine.now))
    >>> engine.run()
    2
    >>> fired
    [1.0, 5.0]
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callback]] = []
        self._seq = 0  # monotonic tie-break: equal times fire in push order
        self._stopped = False
        self.events_processed = 0
        #: Largest pending-event count ever reached (memory footprint probe).
        self.heap_high_water = 0

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` ``delay`` ms from the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        heap = self._heap
        self._seq += 1
        heappush(heap, (self.now + delay, self._seq, callback))
        if len(heap) > self.heap_high_water:
            self.heap_high_water = len(heap)

    def schedule_at(self, time: float, callback: Callback) -> None:
        """Run ``callback`` at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now = {self.now}"
            )
        heap = self._heap
        self._seq += 1
        heappush(heap, (time, self._seq, callback))
        if len(heap) > self.heap_high_water:
            self.heap_high_water = len(heap)

    def stop(self) -> None:
        """Stop the run loop after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired (whichever comes first).

        Returns the number of events processed by *this* call.  A
        :meth:`stop` issued from inside a callback halts the loop before
        the next event fires — including one scheduled at the very same
        timestamp — and leaves the remainder on the heap (visible via
        :meth:`pending`).  A stop requested before ``run`` is discarded:
        each call starts fresh.
        """
        self._stopped = False
        if until is None and max_events is None:
            return self._drain()
        if max_events is None:
            return self._run_until(until)
        return self._run_general(until, max_events)

    def run_until(self, horizon: float) -> int:
        """Batched horizon run: process every event with ``time <=
        horizon``.

        Identical semantics to ``run(until=horizon)`` — the clock
        advances to ``horizon`` (never rewound) when a later event is
        still pending, and stays at the last fired event when the heap
        drains first — but skips the per-event ``max_events``
        bookkeeping: the runner's timeslicing path.
        """
        self._stopped = False
        return self._run_until(horizon)

    # ------------------------------------------------------------------
    # Loop bodies.  All three fire identical events in identical order;
    # they differ only in which stop conditions they check per event.
    # ------------------------------------------------------------------

    def _drain(self) -> int:
        heap = self._heap
        pop = heappop
        processed = 0
        try:
            while heap:
                time, _, callback = pop(heap)
                self.now = time
                callback()
                processed += 1
                if self._stopped:
                    break
        finally:
            self.events_processed += processed
        return processed

    def _run_until(self, until: float) -> int:
        heap = self._heap
        pop = heappop
        processed = 0
        try:
            while heap:
                if heap[0][0] > until:
                    # Never rewind: run(until=...) with a past horizon is
                    # a no-op on the clock, not a time machine.
                    if until > self.now:
                        self.now = until
                    break
                time, _, callback = pop(heap)
                self.now = time
                callback()
                processed += 1
                if self._stopped:
                    break
        finally:
            self.events_processed += processed
        return processed

    def _run_general(
        self, until: Optional[float], max_events: int
    ) -> int:
        heap = self._heap
        pop = heappop
        processed = 0
        try:
            while heap:
                if processed >= max_events:
                    break
                if until is not None and heap[0][0] > until:
                    if until > self.now:
                        self.now = until
                    break
                time, _, callback = pop(heap)
                self.now = time
                callback()
                processed += 1
                if self._stopped:
                    break
        finally:
            self.events_processed += processed
        return processed

    def pending(self) -> int:
        return len(self._heap)

    def clear_pending(self) -> int:
        """Drop every scheduled event (power loss): nothing pending fires.

        Returns the number of events dropped.  The clock and counters are
        untouched — a restarted simulation continues from ``now``.
        """
        dropped = len(self._heap)
        self._heap.clear()
        return dropped
