"""The event loop.

Deterministic: events at equal times fire in scheduling order.  Time is a
float in milliseconds (matching the disk model's units).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

Callback = Callable[[], None]


class SimulationEngine:
    """A binary-heap discrete-event scheduler.

    >>> engine = SimulationEngine()
    >>> fired = []
    >>> engine.schedule(5.0, lambda: fired.append(engine.now))
    >>> engine.schedule(1.0, lambda: fired.append(engine.now))
    >>> engine.run()
    2
    >>> fired
    [1.0, 5.0]
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callback]] = []
        self._counter = itertools.count()
        self._stopped = False
        self.events_processed = 0
        #: Largest pending-event count ever reached (memory footprint probe).
        self.heap_high_water = 0

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` ``delay`` ms from the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callback) -> None:
        """Run ``callback`` at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now = {self.now}"
            )
        heapq.heappush(self._heap, (time, next(self._counter), callback))
        if len(self._heap) > self.heap_high_water:
            self.heap_high_water = len(self._heap)

    def stop(self) -> None:
        """Stop the run loop after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired (whichever comes first).

        Returns the number of events processed by *this* call.  A
        :meth:`stop` issued from inside a callback halts the loop before
        the next event fires — including one scheduled at the very same
        timestamp — and leaves the remainder on the heap (visible via
        :meth:`pending`).  A stop requested before ``run`` is discarded:
        each call starts fresh.
        """
        self._stopped = False
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                break
            time, _, callback = self._heap[0]
            if until is not None and time > until:
                # Never rewind: run(until=...) with a past horizon is a
                # no-op on the clock, not a time machine.
                if until > self.now:
                    self.now = until
                break
            heapq.heappop(self._heap)
            self.now = time
            callback()
            processed += 1
            self.events_processed += 1
            if self._stopped:
                break
        return processed

    def pending(self) -> int:
        return len(self._heap)
