"""The event loop.

Deterministic: events at equal times fire in scheduling order.  Time is a
float in milliseconds (matching the disk model's units).

Two interchangeable schedulers implement the same contract:

- :class:`HeapEngine` — the binary-heap reference implementation
  (``heapq`` of ``(time, seq, callback)`` tuples);
- :class:`CalendarEngine` — a calendar queue (Brown 1988): events hash
  into day-width buckets by ``int(time / width)``, inserts and pops are
  O(1) amortized, and the bucket count / width adapt to the queue as it
  grows and shrinks.

Both fire *identical events in identical order*: the total order is
``(time, seq)`` with ``seq`` a monotonic per-engine tie-break counter,
events with equal times always land in the same calendar bucket, and
each bucket is kept ``(time, seq)``-sorted — so the calendar queue's pop
sequence is bit-for-bit the heap's.  The golden-trace tests pin this
under both implementations.

:func:`make_engine` selects the implementation: the ``REPRO_ENGINE``
environment variable (``calendar`` — the default — or ``heap``) or an
explicit ``kind`` argument.

This is the innermost loop of every experiment — millions of events per
figure — so the common cases are deliberately lean: :meth:`run` with no
arguments drains the queue through a tight loop with bound-method
locals, the tie-break counter is a plain integer (no ``itertools.count``
indirection), and the horizon/budget bookkeeping only exists on the
paths that asked for it (:meth:`run_until`, ``max_events``).
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError

Callback = Callable[[], None]


class SimulationEngine:
    """A binary-heap discrete-event scheduler.

    >>> engine = SimulationEngine()
    >>> fired = []
    >>> engine.schedule(5.0, lambda: fired.append(engine.now))
    >>> engine.schedule(1.0, lambda: fired.append(engine.now))
    >>> engine.run()
    2
    >>> fired
    [1.0, 5.0]
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callback]] = []
        self._seq = 0  # monotonic tie-break: equal times fire in push order
        self._stopped = False
        self.events_processed = 0
        #: Largest pending-event count ever reached (memory footprint probe).
        self.heap_high_water = 0

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` ``delay`` ms from the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        heap = self._heap
        self._seq += 1
        heappush(heap, (self.now + delay, self._seq, callback))
        if len(heap) > self.heap_high_water:
            self.heap_high_water = len(heap)

    def schedule_at(self, time: float, callback: Callback) -> None:
        """Run ``callback`` at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now = {self.now}"
            )
        heap = self._heap
        self._seq += 1
        heappush(heap, (time, self._seq, callback))
        if len(heap) > self.heap_high_water:
            self.heap_high_water = len(heap)

    def stop(self) -> None:
        """Stop the run loop after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired (whichever comes first).

        Returns the number of events processed by *this* call.  A
        :meth:`stop` issued from inside a callback halts the loop before
        the next event fires — including one scheduled at the very same
        timestamp — and leaves the remainder on the heap (visible via
        :meth:`pending`).  A stop requested before ``run`` is discarded:
        each call starts fresh.
        """
        self._stopped = False
        if until is None and max_events is None:
            return self._drain()
        if max_events is None:
            return self._run_until(until)
        return self._run_general(until, max_events)

    def run_until(self, horizon: float) -> int:
        """Batched horizon run: process every event with ``time <=
        horizon``.

        Identical semantics to ``run(until=horizon)`` — the clock
        advances to ``horizon`` (never rewound) when a later event is
        still pending, and stays at the last fired event when the heap
        drains first — but skips the per-event ``max_events``
        bookkeeping: the runner's timeslicing path.
        """
        self._stopped = False
        return self._run_until(horizon)

    # ------------------------------------------------------------------
    # Loop bodies.  All three fire identical events in identical order;
    # they differ only in which stop conditions they check per event.
    # ------------------------------------------------------------------

    def _drain(self) -> int:
        heap = self._heap
        pop = heappop
        processed = 0
        try:
            while heap:
                time, _, callback = pop(heap)
                self.now = time
                callback()
                processed += 1
                if self._stopped:
                    break
        finally:
            self.events_processed += processed
        return processed

    def _run_until(self, until: float) -> int:
        heap = self._heap
        pop = heappop
        processed = 0
        try:
            while heap:
                if heap[0][0] > until:
                    # Never rewind: run(until=...) with a past horizon is
                    # a no-op on the clock, not a time machine.
                    if until > self.now:
                        self.now = until
                    break
                time, _, callback = pop(heap)
                self.now = time
                callback()
                processed += 1
                if self._stopped:
                    break
        finally:
            self.events_processed += processed
        return processed

    def _run_general(
        self, until: Optional[float], max_events: int
    ) -> int:
        heap = self._heap
        pop = heappop
        processed = 0
        try:
            while heap:
                if processed >= max_events:
                    break
                if until is not None and heap[0][0] > until:
                    if until > self.now:
                        self.now = until
                    break
                time, _, callback = pop(heap)
                self.now = time
                callback()
                processed += 1
                if self._stopped:
                    break
        finally:
            self.events_processed += processed
        return processed

    def pending(self) -> int:
        return len(self._heap)

    def clear_pending(self) -> int:
        """Drop every scheduled event (power loss): nothing pending fires.

        Returns the number of events dropped.  The clock and counters are
        untouched — a restarted simulation continues from ``now``.
        """
        dropped = len(self._heap)
        self._heap.clear()
        return dropped


class HeapEngine(SimulationEngine):
    """The binary-heap scheduler, by its role name.

    Kept as the reference implementation the calendar queue is checked
    against (registry-wide equivalence test, golden traces under both
    engines); :class:`SimulationEngine` remains the historical alias.
    """


class CalendarEngine(SimulationEngine):
    """A calendar-queue scheduler (Brown 1988) with adaptive resizing.

    Events hash into ``nbuckets`` buckets by day index ``int(time /
    width) % nbuckets``; each bucket stays ``(time, seq)``-sorted via
    ``bisect.insort``, so the head of the bucket owning the current day
    is the global minimum — pops walk days forward from ``now`` and
    almost always find the next event in the first bucket probed.

    Determinism: equal times share one bucket (same day index), and the
    in-bucket sort key ``(time, seq)`` is exactly the heap's total
    order, so the pop sequence is bit-for-bit :class:`HeapEngine`'s.
    Day-membership checks reuse the *insert-side* computation
    ``int(time / width)`` rather than comparing against ``(day + 1) *
    width``, so float rounding can never disagree between insert and
    scan.

    Resizing: the bucket count doubles when occupancy exceeds two
    events per bucket and halves when it falls below one per eight
    buckets; each resize re-derives the bucket width from the average
    gap of the earliest pending events (Brown's sampled-gap policy).
    A full-cycle scan that finds only future-year heads falls back to
    a direct minimum over bucket heads, so sparse queues stay correct
    (the overflow path) at O(nbuckets) instead of looping years.

    >>> engine = CalendarEngine()
    >>> fired = []
    >>> engine.schedule(5.0, lambda: fired.append(engine.now))
    >>> engine.schedule(1.0, lambda: fired.append(engine.now))
    >>> engine.run()
    2
    >>> fired
    [1.0, 5.0]
    """

    #: Bucket-count bounds: never shrink below _MIN_BUCKETS, never grow
    #: beyond _MAX_BUCKETS (a resize stops helping once buckets outnumber
    #: any plausible pending-event population).
    _MIN_BUCKETS = 16
    _MAX_BUCKETS = 1 << 16

    def __init__(self, width: float = 4.0, nbuckets: int = 32):
        if width <= 0:
            raise ConfigurationError(f"bucket width must be positive: {width}")
        if nbuckets < 1 or nbuckets & (nbuckets - 1):
            raise ConfigurationError(
                f"bucket count must be a positive power of two: {nbuckets}"
            )
        self.now: float = 0.0
        self._seq = 0
        self._stopped = False
        self.events_processed = 0
        #: Largest pending-event count ever reached.  Same name as the
        #: heap engine's counter so instrumentation snapshots are
        #: identical under either implementation.
        self.heap_high_water = 0
        self._width = width
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._buckets: List[List[Tuple[float, int, Callback]]] = [
            [] for _ in range(nbuckets)
        ]
        self._count = 0
        self._grow_at = nbuckets * 2
        #: Cumulative empty-day probes since the last width change; when
        #: it builds up, days are too narrow for the workload's event
        #: spacing and the queue rebuilds with wider buckets.
        self._scan_debt = 0

    # ------------------------------------------------------------------
    # Insert side.
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` ``delay`` ms from the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        time = self.now + delay
        self._seq += 1
        insort(
            self._buckets[int(time / self._width) & self._mask],
            (time, self._seq, callback),
        )
        count = self._count + 1
        self._count = count
        if count > self.heap_high_water:
            self.heap_high_water = count
        if count > self._grow_at and self._nbuckets < self._MAX_BUCKETS:
            self._resize(self._nbuckets * 2)

    def schedule_at(self, time: float, callback: Callback) -> None:
        """Run ``callback`` at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now = {self.now}"
            )
        self._seq += 1
        insort(
            self._buckets[int(time / self._width) & self._mask],
            (time, self._seq, callback),
        )
        count = self._count + 1
        self._count = count
        if count > self.heap_high_water:
            self.heap_high_water = count
        if count > self._grow_at and self._nbuckets < self._MAX_BUCKETS:
            self._resize(self._nbuckets * 2)

    # ------------------------------------------------------------------
    # Pop side.
    # ------------------------------------------------------------------

    def _min_bucket(self) -> Optional[List[Tuple[float, int, Callback]]]:
        """The bucket whose head is the global minimum (None if empty).

        Walks day-by-day from ``now``'s day; a head belongs to the
        scanned day iff its own insert-side day index ``int(time /
        width)`` has been reached — never a boundary-product
        comparison, so insert and scan can never disagree on bucket
        membership.  A full cycle of future-year heads falls back to a
        direct minimum (sparse-queue overflow path).
        """
        if not self._count:
            return None
        width = self._width
        mask = self._mask
        buckets = self._buckets
        day = int(self.now / width)
        i = day & mask
        for probes in range(self._nbuckets):
            bucket = buckets[i]
            if bucket and int(bucket[0][0] / width) <= day:
                self._scan_debt += probes
                if self._scan_debt >= 64:
                    # Days are too narrow for this workload's spacing:
                    # widen and re-locate the (unchanged) minimum.
                    self._scan_debt = 0
                    head_time = bucket[0][0]
                    self._rebuild(self._nbuckets, width * 4.0)
                    return self._buckets[
                        int(head_time / self._width) & self._mask
                    ]
                return bucket
            i = (i + 1) & mask
            day += 1
        # Sparse overflow path: every head is in a future year — take
        # the direct minimum instead of looping years, and widen (the
        # day width is clearly far below the event spacing).
        best = None
        for bucket in buckets:
            if bucket and (best is None or bucket[0] < best[0]):
                best = bucket
        self._scan_debt = 0
        self._rebuild(self._nbuckets, width * 4.0)
        day = int(best[0][0] / self._width)
        return self._buckets[day & self._mask]

    # ------------------------------------------------------------------
    # Loop bodies: identical event order and stop semantics to the
    # heap's, with the pop inlined around _min_bucket.
    # ------------------------------------------------------------------

    def _drain(self) -> int:
        min_bucket = self._min_bucket
        processed = 0
        try:
            while self._count:
                # Fast path: the next event usually lives in the bucket
                # owning now's day — probe it before the full scan.
                width = self._width
                day = int(self.now / width)
                bucket = self._buckets[day & self._mask]
                if not bucket or int(bucket[0][0] / width) > day:
                    bucket = min_bucket()
                time, _, callback = bucket.pop(0)
                self._count -= 1
                self.now = time
                callback()
                processed += 1
                if self._stopped:
                    break
        finally:
            self.events_processed += processed
        self._maybe_shrink()
        return processed

    def _run_until(self, until: float) -> int:
        min_bucket = self._min_bucket
        processed = 0
        try:
            while self._count:
                width = self._width
                day = int(self.now / width)
                bucket = self._buckets[day & self._mask]
                if not bucket or int(bucket[0][0] / width) > day:
                    bucket = min_bucket()
                if bucket[0][0] > until:
                    if until > self.now:
                        self.now = until
                    break
                time, _, callback = bucket.pop(0)
                self._count -= 1
                self.now = time
                callback()
                processed += 1
                if self._stopped:
                    break
        finally:
            self.events_processed += processed
        self._maybe_shrink()
        return processed

    def _run_general(
        self, until: Optional[float], max_events: int
    ) -> int:
        min_bucket = self._min_bucket
        processed = 0
        try:
            while self._count:
                if processed >= max_events:
                    break
                width = self._width
                day = int(self.now / width)
                bucket = self._buckets[day & self._mask]
                if not bucket or int(bucket[0][0] / width) > day:
                    bucket = min_bucket()
                if until is not None and bucket[0][0] > until:
                    if until > self.now:
                        self.now = until
                    break
                time, _, callback = bucket.pop(0)
                self._count -= 1
                self.now = time
                callback()
                processed += 1
                if self._stopped:
                    break
        finally:
            self.events_processed += processed
        self._maybe_shrink()
        return processed

    # ------------------------------------------------------------------
    # Resizing.
    # ------------------------------------------------------------------

    def _maybe_shrink(self) -> None:
        """Shrink after a loop exits, not per pop: loops are where the
        queue drains, and checking here keeps the pop path branch-free."""
        if (
            self._nbuckets > self._MIN_BUCKETS
            and self._count < self._nbuckets // 8
        ):
            self._resize(max(self._MIN_BUCKETS, self._nbuckets // 2))

    def _resize(self, nbuckets: int) -> None:
        events = self._sorted_events()
        self._rebuild(nbuckets, self._choose_width(events), events)

    def _rebuild(
        self,
        nbuckets: int,
        width: float,
        events: Optional[List[Tuple[float, int, Callback]]] = None,
    ) -> None:
        if events is None:
            events = self._sorted_events()
        self._width = width
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._grow_at = nbuckets * 2
        self._scan_debt = 0
        buckets: List[List[Tuple[float, int, Callback]]] = [
            [] for _ in range(nbuckets)
        ]
        mask = self._mask
        for event in events:  # sorted order: every insert appends
            buckets[int(event[0] / width) & mask].append(event)
        self._buckets = buckets

    def _sorted_events(self) -> List[Tuple[float, int, Callback]]:
        events: List[Tuple[float, int, Callback]] = []
        for bucket in self._buckets:
            events.extend(bucket)
        events.sort()  # (time, seq) is a total order; callbacks never compared
        return events

    def _choose_width(
        self, events: List[Tuple[float, int, Callback]]
    ) -> float:
        """Brown's sampled-gap width policy, deterministically.

        Average the inter-event gap over the earliest pending events
        (up to 64) and size a day at four gaps, so consecutive pops
        usually resolve within a bucket or two.  Simultaneous events
        (zero span) keep the current width — gaps carry no signal.
        """
        sample = events[:64]
        if len(sample) < 2:
            return self._width
        span = sample[-1][0] - sample[0][0]
        if span <= 0.0:
            return self._width
        return 16.0 * span / (len(sample) - 1)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def pending(self) -> int:
        return self._count

    def clear_pending(self) -> int:
        """Drop every scheduled event (power loss): nothing pending fires."""
        dropped = self._count
        for bucket in self._buckets:
            bucket.clear()
        self._count = 0
        return dropped


#: Engine registry for the selection knob.
ENGINE_KINDS = {
    "heap": HeapEngine,
    "calendar": CalendarEngine,
}

DEFAULT_ENGINE_KIND = "calendar"

#: Environment variable naming the engine implementation to use.
ENGINE_ENV = "REPRO_ENGINE"


def engine_kind() -> str:
    """The selected engine kind: ``REPRO_ENGINE`` or the default."""
    kind = os.environ.get(ENGINE_ENV, "").strip().lower()
    if not kind:
        return DEFAULT_ENGINE_KIND
    if kind not in ENGINE_KINDS:
        raise ConfigurationError(
            f"unknown {ENGINE_ENV}={kind!r}; choose from "
            f"{sorted(ENGINE_KINDS)}"
        )
    return kind


def make_engine(kind: Optional[str] = None) -> SimulationEngine:
    """Build the selected event engine.

    ``kind`` overrides the ``REPRO_ENGINE`` environment variable; both
    default to :data:`DEFAULT_ENGINE_KIND`.  Every experiment entry
    point builds its engine here, so one knob switches the whole
    registry — and the equivalence tests can pin that the choice never
    changes a result byte.
    """
    if kind is None:
        kind = engine_kind()
    engine_cls = ENGINE_KINDS.get(kind)
    if engine_cls is None:
        raise ConfigurationError(
            f"unknown engine kind {kind!r}; choose from "
            f"{sorted(ENGINE_KINDS)}"
        )
    return engine_cls()
