"""Lightweight simulation instrumentation.

Always-on counters live on the simulated objects themselves (engine heap
high-water mark, per-drive busy time, per-server queue depth high-water);
this module turns them into plain JSON-able records, and provides the
physical-operation :class:`TraceRecorder` behind the golden-trace
regression tests.  Everything here is pure data — no numpy, no pickling
surprises — so records survive multiprocessing boundaries and the on-disk
result cache byte-identically.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.engine import SimulationEngine


class TraceRecorder:
    """Ordered log of every physical operation the array services.

    Attach with :meth:`ArrayController.attach_trace`; each serviced
    request appends one entry at service-start time.  Entries are plain
    dicts so a trace can be dumped to JSON and compared exactly —
    floats round-trip through ``json`` without loss, which is what makes
    golden-trace tests byte-stable.
    """

    def __init__(self):
        self.entries: List[dict] = []

    def record(self, disk_id: int, now_ms: float, request, service) -> None:
        self.entries.append(
            {
                "disk": disk_id,
                "start_ms": now_ms,
                "lba": request.lba,
                "sectors": request.sectors,
                "op": "W" if request.is_write else "R",
                "access_id": request.access_id,
                "seek_ms": service.seek_ms,
                "latency_ms": service.latency_ms,
                "transfer_ms": service.transfer_ms,
            }
        )

    def __len__(self) -> int:
        return len(self.entries)


class ProgressTimeline:
    """``(time_ms, fraction)`` samples of a background process.

    The lifecycle experiment hooks one into the reconstructor's per-step
    callback to get the rebuild-progress-over-time curve; entries are
    plain two-element lists so the timeline drops into a result record
    (and the on-disk cache) byte-identically.

    >>> timeline = ProgressTimeline()
    >>> timeline.record(10.0, 0.5)
    >>> timeline.record(20.0, 1.0)
    >>> timeline.points
    [[10.0, 0.5], [20.0, 1.0]]
    """

    def __init__(self):
        self.points: List[list] = []

    def record(self, time_ms: float, fraction: float) -> None:
        self.points.append([time_ms, fraction])

    def __len__(self) -> int:
        return len(self.points)


class DepthTimeline:
    """``(time_ms, depth)`` samples of a queue, recorded on change only.

    The open-loop admission queue feeds one of these; consecutive
    samples at the same depth collapse into the first, so a saturated
    queue does not grow the record linearly with arrivals.  Entries are
    plain two-element lists (same contract as
    :class:`ProgressTimeline`), so the timeline drops into result
    records byte-identically.

    >>> t = DepthTimeline()
    >>> t.record(1.0, 0); t.record(2.0, 1); t.record(3.0, 1)
    >>> t.points
    [[1.0, 0], [2.0, 1]]
    """

    def __init__(self):
        self.points: List[list] = []
        self.high_water = 0

    def record(self, time_ms: float, depth: int) -> None:
        if depth > self.high_water:
            self.high_water = depth
        if self.points and self.points[-1][1] == depth:
            return
        self.points.append([time_ms, depth])

    def __len__(self) -> int:
        return len(self.points)


def engine_snapshot(engine: SimulationEngine) -> Dict[str, float]:
    """The engine-level counters as a JSON-able record."""
    return {
        "events_processed": engine.events_processed,
        "heap_high_water": engine.heap_high_water,
        "pending": engine.pending(),
        "now_ms": engine.now,
    }
