"""Whole-spec profiling harness (``repro profile``).

Wraps one :func:`~repro.runner.execute.execute_spec` run in
:mod:`cProfile` and reduces the result to the numbers that matter for
the simulator's hot path: end-to-end events/second and the top functions
by cumulative (or internal) time.  The report is JSON-able, so profiles
can be archived next to ``BENCH_hotpath.json`` and diffed across
optimization passes.

Caveat for absolute numbers: the profiler's tracing hook inflates
call-heavy code by roughly 2x, so events/second from a profiled run is
*not* comparable with ``benchmarks/bench_hotpath.py`` (which measures
plain wall clock).  Use the profile for *where the time goes*, the
benchmark for *how fast it is*.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from dataclasses import dataclass
from typing import List, NamedTuple

from repro.errors import ConfigurationError
from repro.runner.execute import execute_spec
from repro.runner.spec import Spec, spec_to_dict

#: Valid ``sort`` arguments for :func:`profile_spec`.
SORT_KEYS = ("cumulative", "tottime")


class HotFunction(NamedTuple):
    """One row of the profile: a function and its aggregate costs."""

    function: str        # "path:lineno(name)", path shortened to the package
    calls: int           # primitive call count
    total_ms: float      # time inside the function itself (tottime)
    cumulative_ms: float  # time including callees (cumtime)


@dataclass(frozen=True)
class ProfileReport:
    """Profile of one spec execution."""

    spec: dict
    wall_ms: float
    events_processed: int
    events_per_second: float
    sort: str
    hot_functions: List[HotFunction]

    def to_dict(self) -> dict:
        """Flat JSON-able form."""
        return {
            "spec": self.spec,
            "wall_ms": self.wall_ms,
            "events_processed": self.events_processed,
            "events_per_second": self.events_per_second,
            "sort": self.sort,
            "hot_functions": [f._asdict() for f in self.hot_functions],
        }

    def render(self) -> str:
        """Aligned text table for terminal output."""
        lines = [
            f"profiled: {_spec_label(self.spec)}",
            f"wall: {self.wall_ms:.1f} ms,"
            f" {self.events_processed} engine events,"
            f" {self.events_per_second:.0f} ev/s (under profiler)",
            "",
            f"{'calls':>9}  {'tottime':>9}  {'cumtime':>9}"
            f"  function (sorted by {self.sort})",
        ]
        for row in self.hot_functions:
            lines.append(
                f"{row.calls:>9}  {row.total_ms:>8.1f}m"
                f"  {row.cumulative_ms:>8.1f}m  {row.function}"
            )
        return "\n".join(lines)


def _spec_label(spec_dict: dict) -> str:
    kind = spec_dict.get("kind", "?")
    layout = spec_dict.get("layout", "?")
    size = spec_dict.get("size_kb", "?")
    clients = spec_dict.get("clients", "?")
    return f"{kind}/{layout}/{size}KB/c{clients}"


def _short_path(path: str) -> str:
    """Shorten absolute source paths to start at the package root."""
    for marker in ("repro/", "site-packages/", "lib/python"):
        index = path.rfind(marker)
        if index >= 0:
            return path[index:]
    return path


def _hot_functions(
    profiler: cProfile.Profile, top: int, sort: str
) -> List[HotFunction]:
    stats = pstats.Stats(profiler)
    rows = []
    for (path, line, name), (cc, _nc, tt, ct, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        if path == "~":  # built-ins: show just the name
            function = name
        else:
            function = f"{_short_path(path)}:{line}({name})"
        rows.append(
            HotFunction(
                function=function,
                calls=cc,
                total_ms=tt * 1000.0,
                cumulative_ms=ct * 1000.0,
            )
        )
    key = (
        (lambda r: r.cumulative_ms)
        if sort == "cumulative"
        else (lambda r: r.total_ms)
    )
    rows.sort(key=key, reverse=True)
    return rows[:top]


@dataclass(frozen=True)
class ProfileDiff:
    """Per-function deltas between two profile reports.

    Built by :func:`diff_profiles` from the JSON forms (``to_dict`` or
    a report loaded back from ``--out``), so a profile archived last
    month diffs against a fresh run without re-profiling anything.
    """

    baseline_wall_ms: float
    candidate_wall_ms: float
    baseline_events_per_second: float
    candidate_events_per_second: float
    changed: List[dict]   # both sides; sorted by |cumulative delta|
    appeared: List[dict]  # hot in candidate only
    vanished: List[dict]  # hot in baseline only

    def to_dict(self) -> dict:
        return {
            "baseline_wall_ms": self.baseline_wall_ms,
            "candidate_wall_ms": self.candidate_wall_ms,
            "baseline_events_per_second": self.baseline_events_per_second,
            "candidate_events_per_second": self.candidate_events_per_second,
            "changed": self.changed,
            "appeared": self.appeared,
            "vanished": self.vanished,
        }

    def render(self) -> str:
        """Aligned text table for terminal output."""
        wall_delta = self.candidate_wall_ms - self.baseline_wall_ms
        lines = [
            f"wall: {self.baseline_wall_ms:.1f} ms ->"
            f" {self.candidate_wall_ms:.1f} ms ({wall_delta:+.1f} ms)",
            f"ev/s: {self.baseline_events_per_second:.0f} ->"
            f" {self.candidate_events_per_second:.0f} (under profiler)",
        ]
        if self.changed:
            lines += [
                "",
                f"{'cum delta':>10}  {'cum base':>9}  {'cum cand':>9}"
                "  function",
            ]
            for row in self.changed:
                lines.append(
                    f"{row['cumulative_delta_ms']:>+9.1f}m"
                    f"  {row['baseline_cumulative_ms']:>8.1f}m"
                    f"  {row['candidate_cumulative_ms']:>8.1f}m"
                    f"  {row['function']}"
                )
        for title, rows in (
            ("new hot functions:", self.appeared),
            ("no longer hot:", self.vanished),
        ):
            if rows:
                lines += ["", title]
                for row in rows:
                    lines.append(
                        f"  {row['cumulative_ms']:>8.1f}m  {row['function']}"
                    )
        return "\n".join(lines)


def diff_profiles(baseline: dict, candidate: dict) -> ProfileDiff:
    """Diff two profile reports (JSON dict form, as written by ``--out``).

    Functions present in both reports land in ``changed`` with their
    cumulative/tottime deltas; functions hot in only one side land in
    ``appeared``/``vanished``.  Both reports should profile the same
    spec for the deltas to mean anything, but that is not enforced —
    cross-spec diffs are occasionally useful and obviously so.
    """
    for name, report in (("baseline", baseline), ("candidate", candidate)):
        if "hot_functions" not in report:
            raise ConfigurationError(
                f"{name} is not a profile report (no hot_functions)"
            )
    base_by_fn = {
        row["function"]: row for row in baseline["hot_functions"]
    }
    cand_by_fn = {
        row["function"]: row for row in candidate["hot_functions"]
    }
    changed = []
    for function, cand in cand_by_fn.items():
        base = base_by_fn.get(function)
        if base is None:
            continue
        changed.append(
            {
                "function": function,
                "baseline_cumulative_ms": base["cumulative_ms"],
                "candidate_cumulative_ms": cand["cumulative_ms"],
                "cumulative_delta_ms": round(
                    cand["cumulative_ms"] - base["cumulative_ms"], 3
                ),
                "baseline_total_ms": base["total_ms"],
                "candidate_total_ms": cand["total_ms"],
                "total_delta_ms": round(
                    cand["total_ms"] - base["total_ms"], 3
                ),
                "baseline_calls": base["calls"],
                "candidate_calls": cand["calls"],
            }
        )
    changed.sort(
        key=lambda row: abs(row["cumulative_delta_ms"]), reverse=True
    )
    appeared = [
        row for fn, row in cand_by_fn.items() if fn not in base_by_fn
    ]
    vanished = [
        row for fn, row in base_by_fn.items() if fn not in cand_by_fn
    ]
    appeared.sort(key=lambda row: row["cumulative_ms"], reverse=True)
    vanished.sort(key=lambda row: row["cumulative_ms"], reverse=True)
    return ProfileDiff(
        baseline_wall_ms=baseline.get("wall_ms", 0.0),
        candidate_wall_ms=candidate.get("wall_ms", 0.0),
        baseline_events_per_second=baseline.get("events_per_second", 0.0),
        candidate_events_per_second=candidate.get("events_per_second", 0.0),
        changed=changed,
        appeared=appeared,
        vanished=vanished,
    )


def profile_spec(
    spec: Spec, top: int = 15, sort: str = "cumulative"
) -> ProfileReport:
    """Execute ``spec`` under cProfile and distill the hot functions.

    ``sort`` is "cumulative" (time including callees — where the run
    went) or "tottime" (time inside each function — what to optimize).
    """
    if sort not in SORT_KEYS:
        raise ConfigurationError(
            f"sort must be one of {SORT_KEYS}, got {sort!r}"
        )
    if top < 1:
        raise ConfigurationError(f"need top >= 1, got {top}")
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    try:
        record = execute_spec(spec)
    finally:
        profiler.disable()
    wall_s = time.perf_counter() - started
    # Table 1 search specs run no simulation engine: count 0 events.
    engine = record.get("instrumentation", {}).get("engine", {})
    events = engine.get("events_processed", 0)
    return ProfileReport(
        spec=spec_to_dict(spec),
        wall_ms=wall_s * 1000.0,
        events_processed=events,
        events_per_second=events / wall_s if wall_s > 0 else 0.0,
        sort=sort,
        hot_functions=_hot_functions(profiler, top, sort),
    )
