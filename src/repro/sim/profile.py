"""Whole-spec profiling harness (``repro profile``).

Wraps one :func:`~repro.runner.execute.execute_spec` run in
:mod:`cProfile` and reduces the result to the numbers that matter for
the simulator's hot path: end-to-end events/second and the top functions
by cumulative (or internal) time.  The report is JSON-able, so profiles
can be archived next to ``BENCH_hotpath.json`` and diffed across
optimization passes.

Caveat for absolute numbers: the profiler's tracing hook inflates
call-heavy code by roughly 2x, so events/second from a profiled run is
*not* comparable with ``benchmarks/bench_hotpath.py`` (which measures
plain wall clock).  Use the profile for *where the time goes*, the
benchmark for *how fast it is*.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from dataclasses import dataclass
from typing import List, NamedTuple

from repro.errors import ConfigurationError
from repro.runner.execute import execute_spec
from repro.runner.spec import Spec, spec_to_dict

#: Valid ``sort`` arguments for :func:`profile_spec`.
SORT_KEYS = ("cumulative", "tottime")


class HotFunction(NamedTuple):
    """One row of the profile: a function and its aggregate costs."""

    function: str        # "path:lineno(name)", path shortened to the package
    calls: int           # primitive call count
    total_ms: float      # time inside the function itself (tottime)
    cumulative_ms: float  # time including callees (cumtime)


@dataclass(frozen=True)
class ProfileReport:
    """Profile of one spec execution."""

    spec: dict
    wall_ms: float
    events_processed: int
    events_per_second: float
    sort: str
    hot_functions: List[HotFunction]

    def to_dict(self) -> dict:
        """Flat JSON-able form."""
        return {
            "spec": self.spec,
            "wall_ms": self.wall_ms,
            "events_processed": self.events_processed,
            "events_per_second": self.events_per_second,
            "sort": self.sort,
            "hot_functions": [f._asdict() for f in self.hot_functions],
        }

    def render(self) -> str:
        """Aligned text table for terminal output."""
        lines = [
            f"profiled: {_spec_label(self.spec)}",
            f"wall: {self.wall_ms:.1f} ms,"
            f" {self.events_processed} engine events,"
            f" {self.events_per_second:.0f} ev/s (under profiler)",
            "",
            f"{'calls':>9}  {'tottime':>9}  {'cumtime':>9}"
            f"  function (sorted by {self.sort})",
        ]
        for row in self.hot_functions:
            lines.append(
                f"{row.calls:>9}  {row.total_ms:>8.1f}m"
                f"  {row.cumulative_ms:>8.1f}m  {row.function}"
            )
        return "\n".join(lines)


def _spec_label(spec_dict: dict) -> str:
    kind = spec_dict.get("kind", "?")
    layout = spec_dict.get("layout", "?")
    size = spec_dict.get("size_kb", "?")
    clients = spec_dict.get("clients", "?")
    return f"{kind}/{layout}/{size}KB/c{clients}"


def _short_path(path: str) -> str:
    """Shorten absolute source paths to start at the package root."""
    for marker in ("repro/", "site-packages/", "lib/python"):
        index = path.rfind(marker)
        if index >= 0:
            return path[index:]
    return path


def _hot_functions(
    profiler: cProfile.Profile, top: int, sort: str
) -> List[HotFunction]:
    stats = pstats.Stats(profiler)
    rows = []
    for (path, line, name), (cc, _nc, tt, ct, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        if path == "~":  # built-ins: show just the name
            function = name
        else:
            function = f"{_short_path(path)}:{line}({name})"
        rows.append(
            HotFunction(
                function=function,
                calls=cc,
                total_ms=tt * 1000.0,
                cumulative_ms=ct * 1000.0,
            )
        )
    key = (
        (lambda r: r.cumulative_ms)
        if sort == "cumulative"
        else (lambda r: r.total_ms)
    )
    rows.sort(key=key, reverse=True)
    return rows[:top]


def profile_spec(
    spec: Spec, top: int = 15, sort: str = "cumulative"
) -> ProfileReport:
    """Execute ``spec`` under cProfile and distill the hot functions.

    ``sort`` is "cumulative" (time including callees — where the run
    went) or "tottime" (time inside each function — what to optimize).
    """
    if sort not in SORT_KEYS:
        raise ConfigurationError(
            f"sort must be one of {SORT_KEYS}, got {sort!r}"
        )
    if top < 1:
        raise ConfigurationError(f"need top >= 1, got {top}")
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    try:
        record = execute_spec(spec)
    finally:
        profiler.disable()
    wall_s = time.perf_counter() - started
    # Table 1 search specs run no simulation engine: count 0 events.
    engine = record.get("instrumentation", {}).get("engine", {})
    events = engine.get("events_processed", 0)
    return ProfileReport(
        spec=spec_to_dict(spec),
        wall_ms=wall_s * 1000.0,
        events_processed=events,
        events_per_second=events / wall_s if wall_s > 0 else 0.0,
        sort=sort,
        hot_functions=_hot_functions(profiler, top, sort),
    )
