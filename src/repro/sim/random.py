"""Named, independently seeded random streams and shared samplers.

Keeping each stochastic component (one stream per client, one for failures,
...) on its own generator makes experiments reproducible under configuration
changes: adding a client does not perturb the other clients' draws.

The samplers here are the single home for distribution draws used across
subsystems (latent-sector-error counts, open-loop inter-arrival times), so
every consumer shares one numerically vetted implementation.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List

from repro.errors import ConfigurationError

#: Above this mean, ``exp(-lam)`` loses enough precision that the product
#: form of Knuth's method drifts (and underflows outright near lam ~ 745);
#: the log-space accumulation takes over.  Below it, the product form is
#: kept verbatim so historical seeded draws stay byte-identical.
_POISSON_PRODUCT_LIMIT = 500.0


def poisson_draw(lam: float, rng: random.Random) -> int:
    """One Poisson(lam) draw, numerically safe for arbitrary ``lam``.

    Knuth's product method, in two regimes sharing the same uniform-draw
    sequence: for small means the classic running product is compared
    against ``exp(-lam)`` (bit-for-bit the historical behaviour the
    media-error regression pins rely on); for large means the product
    would underflow, so the comparison moves to log space —
    ``sum(log u_i) > -lam`` — which consumes the identical number of
    draws without ever forming a subnormal.

    >>> poisson_draw(0.0, random.Random(1))
    0
    >>> poisson_draw(2.5, random.Random(7)) == poisson_draw(
    ...     2.5, random.Random(7))
    True
    """
    if lam < 0:
        raise ConfigurationError(f"negative Poisson rate {lam}")
    if lam == 0:
        return 0
    if lam <= _POISSON_PRODUCT_LIMIT:
        limit = math.exp(-lam)
        count = 0
        product = rng.random()
        while product > limit:
            count += 1
            product *= rng.random()
        return count
    count = 0
    total = math.log(rng.random())
    while total > -lam:
        count += 1
        total += math.log(rng.random())
    return count


def poisson_block(lam: float, rng: random.Random, count: int) -> List[int]:
    """``count`` Poisson(lam) draws, byte-identical to ``count``
    sequential :func:`poisson_draw` calls on the same generator.

    Block draws exist so batch executors can amortize per-draw call
    overhead; the contract — pinned by a hypothesis test — is that
    blocking never changes the stream: the same uniforms are consumed
    in the same order, producing the same values.

    >>> rng_a, rng_b = random.Random(5), random.Random(5)
    >>> poisson_block(2.5, rng_a, 4) == [
    ...     poisson_draw(2.5, rng_b) for _ in range(4)]
    True
    """
    if count < 0:
        raise ConfigurationError(f"negative block size {count}")
    return [poisson_draw(lam, rng) for _ in range(count)]


def exponential_ms(mean_ms: float, rng: random.Random) -> float:
    """One exponential inter-arrival draw with the given mean, in ms.

    Inverse-CDF on ``1 - u`` so the half-open ``[0, 1)`` uniform can
    never reach ``log(0)``; the draw is always finite and non-negative.

    >>> exponential_ms(10.0, random.Random(3)) >= 0.0
    True
    """
    if mean_ms <= 0:
        raise ConfigurationError(
            f"exponential mean must be positive, got {mean_ms}"
        )
    return -mean_ms * math.log(1.0 - rng.random())


def exponential_block_ms(
    mean_ms: float, rng: random.Random, count: int
) -> List[float]:
    """``count`` exponential draws, byte-identical to ``count``
    sequential :func:`exponential_ms` calls on the same generator.

    The mean is validated once and the uniform/log pipeline is the same
    expression per draw, so the consumed stream — and therefore every
    value — matches the sequential path bit for bit.

    >>> rng_a, rng_b = random.Random(9), random.Random(9)
    >>> exponential_block_ms(10.0, rng_a, 3) == [
    ...     exponential_ms(10.0, rng_b) for _ in range(3)]
    True
    """
    if mean_ms <= 0:
        raise ConfigurationError(
            f"exponential mean must be positive, got {mean_ms}"
        )
    if count < 0:
        raise ConfigurationError(f"negative block size {count}")
    rand = rng.random
    log = math.log
    return [-mean_ms * log(1.0 - rand()) for _ in range(count)]


class RandomStreams:
    """A family of :class:`random.Random` instances keyed by name.

    >>> streams = RandomStreams(42)
    >>> a = streams.get("client-0").random()
    >>> b = RandomStreams(42).get("client-0").random()
    >>> a == b
    True
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(f"{self.seed}/{name}")
            self._streams[name] = stream
        return stream
