"""Named, independently seeded random streams.

Keeping each stochastic component (one stream per client, one for failures,
...) on its own generator makes experiments reproducible under configuration
changes: adding a client does not perturb the other clients' draws.
"""

from __future__ import annotations

import random
from typing import Dict


class RandomStreams:
    """A family of :class:`random.Random` instances keyed by name.

    >>> streams = RandomStreams(42)
    >>> a = streams.get("client-0").random()
    >>> b = RandomStreams(42).get("client-0").random()
    >>> a == b
    True
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(f"{self.seed}/{name}")
            self._streams[name] = stream
        return stream
