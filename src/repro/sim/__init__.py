"""Discrete-event simulation kernel.

A small deterministic event engine in the RAIDframe tradition:
components schedule callbacks, the engine advances virtual time in
milliseconds.  Two interchangeable schedulers (binary heap and calendar
queue) share one contract — FIFO tie-breaking at equal times — and
:func:`make_engine` picks between them (``REPRO_ENGINE``).
"""

from repro.sim.engine import (
    CalendarEngine,
    HeapEngine,
    SimulationEngine,
    engine_kind,
    make_engine,
)
from repro.sim.random import RandomStreams

__all__ = [
    "CalendarEngine",
    "HeapEngine",
    "SimulationEngine",
    "RandomStreams",
    "engine_kind",
    "make_engine",
]
