"""Discrete-event simulation kernel.

A small deterministic event engine (binary-heap scheduler with FIFO
tie-breaking) in the RAIDframe tradition: components schedule callbacks, the
engine advances virtual time in milliseconds.
"""

from repro.sim.engine import SimulationEngine
from repro.sim.random import RandomStreams

__all__ = ["SimulationEngine", "RandomStreams"]
