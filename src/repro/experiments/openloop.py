"""Open-loop traffic trials: arrivals x admission x lifecycle.

One trial offers a fixed number of open-loop arrivals (Poisson, MMPP, or
diurnal trace) to an array through a bounded admission queue, in one of
three phases:

- ``ff``       — fault-free array;
- ``degraded`` — a disk failed before traffic starts and the rebuild has
  not begun (the detection/dwell window, stretched past the run);
- ``rebuild``  — the rebuild sweep is running for the whole measurement
  window (full-disk sweep, throttled, armed before traffic starts).

The measurand is the *tail*: p99/p999/exact-max latency from offer to
completion (admission wait included), SLO time-in-violation, shed
counts, and the overload detector's verdict.  The flagship sweep holds
the offered load fixed across phases, so "the knee" — the offered load
where a layout's mid-rebuild tail diverges from its fault-free tail —
falls straight out of the committed BENCH_traffic.json.

Every draw comes from named seeded streams (``{seed}/arrivals``,
``{seed}/openloop-loc``), so trials are pure functions of their specs
and plug into the runner's byte-determinism contract.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.array.controller import ArrayController, LogicalAccess
from repro.errors import ConfigurationError
from repro.experiments.config import (
    PAPER_SCHEDULER,
    PAPER_SCHEDULER_WINDOW,
    PAPER_STRIPE_UNIT_KB,
    layout_for,
)
from repro.experiments.iorecovery import aggregate_io_recovery
from repro.faults.lifecycle import ArrayLifecycle
from repro.faults.scenario import FaultScenario
from repro.sim.engine import make_engine
from repro.sim.instrument import DepthTimeline, ProgressTimeline
from repro.traffic.admission import AdmissionQueue, OverloadDetector
from repro.traffic.arrivals import (
    ArrivalProcess,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.traffic.sla import SlaTracker, SloPolicy
from repro.workload.generators import UniformGenerator
from repro.workload.spec import AccessSpec

#: Trial phases (see module docstring).
PHASES = ("ff", "degraded", "rebuild")

#: Supported arrival models.
ARRIVALS = ("poisson", "mmpp", "trace")

#: Non-fault-free phases fail the disk this early, before any traffic.
_FAULT_AT_MS = 1.0

#: Gap between the last phase transition and the first arrival draw, so
#: every offered access sees the phase the trial name promises.
_SETTLE_MS = 9.0


def _build_arrivals(
    arrival: str,
    rate_per_s: float,
    burst_ratio: float,
    burst_fraction: float,
    burst_dwell_ms: float,
    trace_period_ms: float,
    rng: random.Random,
) -> ArrivalProcess:
    if arrival == "poisson":
        return PoissonArrivals(rate_per_s, rng)
    if arrival == "mmpp":
        return MMPPArrivals.bursty(
            rate_per_s, burst_ratio, burst_fraction, burst_dwell_ms, rng
        )
    if arrival == "trace":
        return TraceArrivals.diurnal(rate_per_s, trace_period_ms, rng)
    raise ConfigurationError(
        f"arrival model must be one of {ARRIVALS}, got {arrival!r}"
    )


def run_openloop_trial(
    layout_name: str,
    rate_per_s: float,
    arrival: str = "poisson",
    phase: str = "ff",
    arrivals: int = 300,
    seed: int = 0,
    size_kb: int = 8,
    is_write: bool = False,
    disks: Optional[int] = None,
    width: Optional[int] = None,
    burst_ratio: float = 6.0,
    burst_fraction: float = 0.15,
    burst_dwell_ms: float = 120.0,
    trace_period_ms: float = 600.0,
    failed_disk: int = 0,
    degraded_dwell_ms: float = 40.0,
    rebuild_parallel: int = 1,
    rebuild_throttle_ms: float = 4.0,
    queue_depth: int = 64,
    service_slots: int = 12,
    slo_p99_ms: float = 120.0,
    slo_p999_ms: float = 250.0,
    window_ms: float = 100.0,
    overload_windows: int = 3,
    horizon_ms: float = 30000.0,
    record_timelines: bool = False,
    layout=None,
) -> dict:
    """One open-loop trial; returns a JSON-able record.

    The run ends when every offered arrival is resolved (completed or
    shed) or at ``horizon_ms``, whichever comes first; a horizon stop
    marks the record ``truncated``.

    ``layout`` lets a batch executor pass a pre-built (shared) layout
    matching ``layout_name``/``disks``/``width``; layouts are immutable
    mappings (controllers wrap rather than mutate them), so sharing
    cannot change the record.
    """
    if phase not in PHASES:
        raise ConfigurationError(
            f"phase must be one of {PHASES}, got {phase!r}"
        )
    if arrivals < 1:
        raise ConfigurationError(f"need >= 1 arrival, got {arrivals}")
    if horizon_ms <= 0:
        raise ConfigurationError(
            f"horizon must be positive, got {horizon_ms}"
        )
    engine = make_engine()
    if layout is None:
        layout = layout_for(layout_name, disks=disks, width=width)
    controller = ArrayController(
        engine,
        layout,
        scheduler_name=PAPER_SCHEDULER,
        scheduler_window=PAPER_SCHEDULER_WINDOW,
        stripe_unit_kb=PAPER_STRIPE_UNIT_KB,
        record_timelines=record_timelines,
    )

    # Fault machinery: the degraded phase stretches the dwell past the
    # horizon so the rebuild never starts; the rebuild phase sweeps the
    # whole disk, throttled, so reconstruction is in flight for the
    # entire measurement window.
    lifecycle: Optional[ArrayLifecycle] = None
    progress = ProgressTimeline()
    traffic_start_ms = 0.0
    if phase != "ff":
        dwell = (
            horizon_ms + _SETTLE_MS
            if phase == "degraded"
            else degraded_dwell_ms
        )
        scenario = FaultScenario(
            failed_disk=failed_disk,
            fault_time_ms=_FAULT_AT_MS,
            degraded_dwell_ms=dwell,
            rebuild_rows=None,
            rebuild_parallel=rebuild_parallel,
            rebuild_throttle_ms=rebuild_throttle_ms,
        )
        lifecycle = ArrayLifecycle(
            controller,
            scenario,
            on_rebuild_step=lambda recon: progress.record(
                engine.now, recon.fraction_complete
            ),
        )
        lifecycle.arm()
        traffic_start_ms = _FAULT_AT_MS + _SETTLE_MS
        if phase == "rebuild":
            traffic_start_ms += degraded_dwell_ms

    tracker = SlaTracker(
        SloPolicy(p99_ms=slo_p99_ms, p999_ms=slo_p999_ms),
        window_ms=window_ms,
    )
    detector = OverloadDetector(
        window_ms=window_ms, windows=overload_windows
    )
    timeline = DepthTimeline()
    totals = {"resolved": 0}
    mode_counts: dict = {}

    def resolve() -> None:
        totals["resolved"] += 1
        if totals["resolved"] >= arrivals:
            engine.stop()

    def on_response(
        access: LogicalAccess, total_ms: float, wait_ms: float
    ) -> None:
        now = engine.now
        tracker.record(now, total_ms)
        mode = (
            lifecycle.mode_at(now - total_ms)
            if lifecycle is not None
            else "fault-free"
        )
        mode_counts[mode] = mode_counts.get(mode, 0) + 1
        resolve()

    queue = AdmissionQueue(
        controller,
        on_response,
        depth=queue_depth,
        service_slots=service_slots,
        detector=detector,
        timeline=timeline,
    )

    units = AccessSpec(size_kb, is_write).units(PAPER_STRIPE_UNIT_KB)
    location = UniformGenerator(
        controller.addressable_data_units,
        units,
        random.Random(f"{seed}/openloop-loc"),
    )
    process = _build_arrivals(
        arrival,
        rate_per_s,
        burst_ratio,
        burst_fraction,
        burst_dwell_ms,
        trace_period_ms,
        random.Random(f"{seed}/arrivals"),
    )

    # Every trial offers at most ``arrivals`` delays; drawing them as
    # one block up front amortizes per-draw overhead and is
    # byte-identical to drawing lazily (the buffered prefetch consumes
    # the same stream in the same order).
    process.prefetch(arrivals)

    state = {"offered": 0}

    def arrive() -> None:
        access = LogicalAccess(
            access_id=state["offered"],
            first_unit=location.next_start(),
            unit_count=units,
            is_write=is_write,
        )
        state["offered"] += 1
        if not queue.offer(access):
            resolve()
        if state["offered"] < arrivals:
            engine.schedule(process.next_delay_ms(), arrive)

    engine.schedule_at(
        traffic_start_ms + process.next_delay_ms(), arrive
    )
    engine.schedule_at(horizon_ms, engine.stop)
    engine.run()

    truncated = totals["resolved"] < arrivals
    overload = detector.report()
    slo = tracker.report()
    stats = queue.stats()
    # "Detected overload": the detector latched sustained queue growth,
    # or arrivals were shed outright (the queue hit its bound).
    overloaded = bool(overload["overloaded"] or stats["shed"] > 0)
    record = {
        "layout": layout_name,
        "phase": phase,
        "arrival": arrival,
        "rate_per_s": rate_per_s,
        "offered": state["offered"],
        "completed": stats["completed"],
        "shed": stats["shed"],
        "truncated": truncated,
        "overloaded": overloaded,
        "slo_violated": bool(
            slo["p99_violated"] or slo["p999_violated"]
        ),
        "tail": slo["tail"],
        "slo": slo,
        "queue": stats,
        "overload": overload,
        "modes": dict(sorted(mode_counts.items())),
        "histogram": tracker.histogram.to_dict(),
        "instrumentation": controller.instrumentation_record(
            include_timelines=record_timelines
        ),
    }
    if lifecycle is not None:
        recon = lifecycle.reconstructor
        record["rebuild"] = {
            "transitions": [list(t) for t in lifecycle.transitions],
            "fraction": (
                0.0 if recon is None else recon.fraction_complete
            ),
            "steps": 0 if recon is None else recon.steps_completed,
            "finished": lifecycle.complete,
        }
    if record_timelines:
        record["timelines"] = {
            "queue_depth": list(timeline.points),
            "rebuild_progress": list(progress.points),
        }
    record["queue"]["waiting_high_water"] = timeline.high_water
    return record


def openloop_specs(
    layouts: List[str],
    rates_per_s: List[float],
    phases: List[str] = ("ff", "rebuild"),
    arrival: str = "poisson",
    arrivals: int = 300,
    seed: int = 0,
    disks: Optional[int] = None,
    **overrides,
) -> list:
    """The offered-load sweep as runner specs (layout x rate x phase)."""
    # Local import: repro.runner imports the experiment drivers' specs.
    from repro.runner.spec import OpenLoopSpec

    specs = []
    for layout in layouts:
        for rate in rates_per_s:
            for phase in phases:
                kwargs = dict(overrides)
                if disks is not None:
                    kwargs["disks"] = disks
                specs.append(
                    OpenLoopSpec(
                        layout=layout,
                        rate_per_s=rate,
                        phase=phase,
                        arrival=arrival,
                        arrivals=arrivals,
                        seed=seed,
                        **kwargs,
                    )
                )
    return specs


def summarize_openloop(records: List[dict]) -> dict:
    """Reduce trial records to the knee/divergence summary.

    The *knee* of a (layout, phase) curve is the lowest offered load
    where the trial detected overload; *divergence* entries are
    (layout, rate) points where the mid-rebuild array is overloaded
    while the fault-free array at the same offered load is not — the
    headline comparison of the open-loop experiment.
    """
    by_config = {
        (r["layout"], r["phase"], r["rate_per_s"]): r for r in records
    }
    layouts = sorted({r["layout"] for r in records})
    phases = sorted({r["phase"] for r in records})
    rates = sorted({r["rate_per_s"] for r in records})
    knees: dict = {}
    for layout in layouts:
        knees[layout] = {}
        for phase in phases:
            knee = None
            for rate in rates:
                record = by_config.get((layout, phase, rate))
                if record is not None and record["overloaded"]:
                    knee = rate
                    break
            knees[layout][phase] = knee
    divergence = []
    for layout in layouts:
        for rate in rates:
            ff = by_config.get((layout, "ff", rate))
            rebuild = by_config.get((layout, "rebuild", rate))
            if ff is None or rebuild is None:
                continue
            if rebuild["overloaded"] and not ff["overloaded"]:
                divergence.append(
                    {
                        "layout": layout,
                        "rate_per_s": rate,
                        "rebuild_p999_ms": rebuild["tail"]["p999_ms"],
                        "ff_p999_ms": ff["tail"]["p999_ms"],
                        "rebuild_shed": rebuild["shed"],
                        "rebuild_slo_violated": rebuild["slo_violated"],
                    }
                )
    summary = {
        "trials": len(records),
        "overloaded_trials": sum(1 for r in records if r["overloaded"]),
        "slo_violated_trials": sum(
            1 for r in records if r["slo_violated"]
        ),
        "shed_total": sum(r["shed"] for r in records),
        "truncated_trials": sum(1 for r in records if r["truncated"]),
        "knees": knees,
        "divergence": divergence,
    }
    io_recovery = aggregate_io_recovery(records)
    if io_recovery is not None:
        summary["io_recovery"] = io_recovery
    return summary
