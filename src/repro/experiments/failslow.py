"""Fail-slow trials: tail-tolerance defenses under a gray failure.

One trial offers open-loop Poisson arrivals to an array that is
rebuilding one failed disk while *another* disk fail-slows (a seeded
service-time multiplier — the gray failure the fault model in
:mod:`repro.faults.failslow` scripts).  The ``defense`` axis switches
the two tail-tolerance mechanisms on and off independently:

- ``none``      — no defense: unthrottled rebuild, no hedging;
- ``hedge``     — hedged degraded-reads (deferral-timeout reconstruction
  races, quarantine via the slow-disk detector);
- ``adaptive``  — SLO-feedback AIMD rebuild throttling;
- ``both``      — hedging and adaptive rebuild together.

The measurands are the foreground latency tail (p99/p999/max), SLO
time-in-violation, the rebuild duration, and the hedge/quarantine
counters — the committed ``BENCH_failslow.json`` compares all four
defenses for PDDL and RAID-5.  The layout story: mid-rebuild, *every*
RAID-5 stripe contains the failed disk, so a hedge has no redundancy to
read from; PDDL's declustered width leaves most stripes fully redundant
and hedging keeps working.

Every draw comes from named seeded streams, so trials are pure
functions of their specs and plug into the runner's byte-determinism
contract.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.array.controller import (
    ArrayController,
    HedgePolicy,
    LogicalAccess,
)
from repro.array.reconstructor import AdaptiveThrottle
from repro.errors import ConfigurationError
from repro.experiments.config import (
    PAPER_SCHEDULER,
    PAPER_SCHEDULER_WINDOW,
    PAPER_STRIPE_UNIT_KB,
    layout_for,
)
from repro.experiments.iorecovery import aggregate_io_recovery
from repro.faults.failslow import FailSlowModel
from repro.faults.scrubber import aggregate_scrub
from repro.faults.lifecycle import ArrayLifecycle
from repro.faults.scenario import FaultScenario
from repro.sim.engine import make_engine
from repro.traffic.admission import AdmissionQueue
from repro.traffic.arrivals import PoissonArrivals
from repro.traffic.sla import SlaTracker, SloPolicy
from repro.workload.generators import UniformGenerator
from repro.workload.spec import AccessSpec

#: Defense configurations (see module docstring).
DEFENSES = ("none", "hedge", "adaptive", "both")

#: The disk fails this early, before any traffic.
_FAULT_AT_MS = 1.0

#: Gap between the rebuild start and the first arrival draw.
_SETTLE_MS = 9.0


def run_failslow_trial(
    layout_name: str,
    rate_per_s: float = 40.0,
    defense: str = "none",
    arrivals: int = 1000,
    seed: int = 2,
    size_kb: int = 8,
    disks: Optional[int] = None,
    width: Optional[int] = None,
    failed_disk: int = 0,
    slow_disk: int = 1,
    slow_multiplier: float = 5.0,
    degraded_dwell_ms: float = 40.0,
    rebuild_rows: Optional[int] = 300,
    rebuild_parallel: int = 4,
    rebuild_throttle_ms: float = 16.0,
    hedge_deferral_ms: float = 30.0,
    adaptive_max_ms: float = 512.0,
    queue_depth: int = 64,
    service_slots: int = 12,
    slo_p99_ms: float = 250.0,
    slo_p999_ms: float = 1500.0,
    window_ms: float = 100.0,
    horizon_ms: float = 120000.0,
    layout=None,
) -> dict:
    """One fail-slow trial; returns a JSON-able record.

    The trial always runs the mid-rebuild phase: ``failed_disk`` dies at
    1ms, the rebuild starts after the dwell, and ``slow_disk`` serves
    every operation ``slow_multiplier`` x slower from the start.  The
    run ends when every arrival is resolved *and* the rebuild finished,
    or at ``horizon_ms`` (marking the record ``truncated``).

    ``layout`` lets a batch executor pass a pre-built shared layout.
    """
    if defense not in DEFENSES:
        raise ConfigurationError(
            f"defense must be one of {DEFENSES}, got {defense!r}"
        )
    if arrivals < 1:
        raise ConfigurationError(f"need >= 1 arrival, got {arrivals}")
    if slow_disk == failed_disk:
        raise ConfigurationError(
            f"the fail-slow disk must differ from the failed disk,"
            f" both are {slow_disk}"
        )
    if slow_multiplier <= 1.0:
        raise ConfigurationError(
            f"fail-slow multiplier must exceed 1.0, got {slow_multiplier}"
        )
    if horizon_ms <= 0:
        raise ConfigurationError(
            f"horizon must be positive, got {horizon_ms}"
        )
    engine = make_engine()
    if layout is None:
        layout = layout_for(layout_name, disks=disks, width=width)
    if not 0 <= failed_disk < layout.n or not 0 <= slow_disk < layout.n:
        raise ConfigurationError(
            f"disk indices {failed_disk}/{slow_disk} out of range"
        )
    controller = ArrayController(
        engine,
        layout,
        scheduler_name=PAPER_SCHEDULER,
        scheduler_window=PAPER_SCHEDULER_WINDOW,
        stripe_unit_kb=PAPER_STRIPE_UNIT_KB,
    )

    hedging = defense in ("hedge", "both")
    adapting = defense in ("adaptive", "both")
    if hedging:
        controller.set_hedge_policy(
            HedgePolicy(deferral_ms=hedge_deferral_ms)
        )

    tracker = SlaTracker(
        SloPolicy(p99_ms=slo_p99_ms, p999_ms=slo_p999_ms),
        window_ms=window_ms,
    )
    adaptive = (
        AdaptiveThrottle(
            tracker,
            # Slow-start: open at the ceiling and sprint down while the
            # foreground stays healthy.  Opening fast would let the
            # rebuild outrun its own violation signal — the completions
            # proving the tail blew out only arrive after the slow
            # disk's queue drains, well after the damage is done.
            initial_ms=adaptive_max_ms,
            max_ms=adaptive_max_ms,
            recover_step_ms=2.0,
            # At tens of arrivals per second a single 100ms window holds
            # too few completions for a stable violation fraction; a
            # 500ms lookback keeps the AIMD signal from flapping.
            windows=5,
        )
        if adapting
        else None
    )

    # The gray failure: active from time zero, constant multiplier.
    controller.servers[slow_disk].drive.fail_slow = FailSlowModel(
        slow_multiplier, onset_ms=0.0
    )

    scenario = FaultScenario(
        failed_disk=failed_disk,
        fault_time_ms=_FAULT_AT_MS,
        degraded_dwell_ms=degraded_dwell_ms,
        rebuild_rows=rebuild_rows,
        rebuild_parallel=rebuild_parallel,
        # The undefended baseline pays this static idle gap per rebuild
        # step; the adaptive defense replaces it with the AIMD decision.
        rebuild_throttle_ms=rebuild_throttle_ms,
    )
    lifecycle = ArrayLifecycle(
        controller,
        scenario,
        # The rebuild finishing is a stop condition too (transitions are
        # recorded before the callback fires, so ``complete`` is fresh).
        on_transition=lambda mode, now: check_stop(),
        adaptive_throttle=adaptive,
    )
    lifecycle.arm()
    traffic_start_ms = _FAULT_AT_MS + _SETTLE_MS + degraded_dwell_ms

    totals = {"resolved": 0}

    def check_stop() -> None:
        if totals["resolved"] >= arrivals and (
            lifecycle.complete or lifecycle.data_loss
        ):
            engine.stop()

    def resolve() -> None:
        totals["resolved"] += 1
        check_stop()

    def on_response(
        access: LogicalAccess, total_ms: float, wait_ms: float
    ) -> None:
        tracker.record(engine.now, total_ms)
        resolve()

    queue = AdmissionQueue(
        controller,
        on_response,
        depth=queue_depth,
        service_slots=service_slots,
    )

    units = AccessSpec(size_kb, False).units(PAPER_STRIPE_UNIT_KB)
    location = UniformGenerator(
        controller.addressable_data_units,
        units,
        random.Random(f"{seed}/failslow-loc"),
    )
    process = PoissonArrivals(rate_per_s, random.Random(f"{seed}/arrivals"))
    process.prefetch(arrivals)

    state = {"offered": 0}

    def arrive() -> None:
        access = LogicalAccess(
            access_id=state["offered"],
            first_unit=location.next_start(),
            unit_count=units,
            is_write=False,
        )
        state["offered"] += 1
        if not queue.offer(access):
            resolve()
        if state["offered"] < arrivals:
            engine.schedule(process.next_delay_ms(), arrive)

    engine.schedule_at(
        traffic_start_ms + process.next_delay_ms(), arrive
    )
    engine.schedule_at(horizon_ms, engine.stop)
    engine.run()

    recon = lifecycle.reconstructor
    slo = tracker.report()
    stats = queue.stats()
    truncated = totals["resolved"] < arrivals or not lifecycle.complete
    record = {
        "layout": layout_name,
        "defense": defense,
        "rate_per_s": rate_per_s,
        "slow_disk": slow_disk,
        "slow_multiplier": slow_multiplier,
        "offered": state["offered"],
        "completed": stats["completed"],
        "shed": stats["shed"],
        "truncated": truncated,
        "slo_violated": bool(
            slo["p99_violated"] or slo["p999_violated"]
        ),
        "tail": slo["tail"],
        "slo": slo,
        "queue": stats,
        "failslow": controller.servers[slow_disk].drive.fail_slow.report(),
        "rebuild": {
            "transitions": [list(t) for t in lifecycle.transitions],
            "finished": lifecycle.complete,
            "steps": 0 if recon is None else recon.steps_completed,
            "duration_ms": (
                recon.duration_ms
                if recon is not None and recon.finished_ms is not None
                else None
            ),
        },
        "instrumentation": controller.instrumentation_record(),
    }
    if hedging:
        io = controller.io_stats
        record["hedging"] = {
            "launched": io.hedges_launched,
            "won": io.hedges_won,
            "lost": io.hedges_lost,
            "aborts": io.hedge_aborts,
            "detector": controller.slow_disk_detector.report(),
        }
    if adaptive is not None:
        record["adaptive"] = adaptive.report()
    return record


def failslow_specs(
    layouts: List[str],
    defenses: List[str] = DEFENSES,
    rate_per_s: float = 40.0,
    arrivals: int = 1000,
    seed: int = 2,
    disks: Optional[int] = None,
    **overrides,
) -> list:
    """The defense-comparison sweep as runner specs (layout x defense)."""
    # Local import: repro.runner imports the experiment drivers' specs.
    from repro.runner.spec import FailSlowTrialSpec

    specs = []
    for layout in layouts:
        for defense in defenses:
            kwargs = dict(overrides)
            if disks is not None:
                kwargs["disks"] = disks
            specs.append(
                FailSlowTrialSpec(
                    layout=layout,
                    defense=defense,
                    rate_per_s=rate_per_s,
                    arrivals=arrivals,
                    seed=seed,
                    **kwargs,
                )
            )
    return specs


def summarize_failslow(records: List[dict]) -> dict:
    """Reduce trial records to the defense-comparison summary.

    Per layout: the tail cut hedging buys over no-defense (the
    acceptance headline), the hedge win rate, and the rebuild-time
    inflation the adaptive throttle pays to keep the foreground p99
    within its SLO.
    """
    by_config = {(r["layout"], r["defense"]): r for r in records}
    layouts = sorted({r["layout"] for r in records})
    hedging: dict = {}
    adaptive: dict = {}
    for layout in layouts:
        none = by_config.get((layout, "none"))
        hedge = by_config.get((layout, "hedge"))
        adapt = by_config.get((layout, "adaptive"))
        both = by_config.get((layout, "both"))
        if none is not None and hedge is not None:
            launched = hedge["hedging"]["launched"]
            won = hedge["hedging"]["won"]
            hedging[layout] = {
                "none_p999_ms": none["tail"]["p999_ms"],
                "hedge_p999_ms": hedge["tail"]["p999_ms"],
                # Hedging composed with the adaptive rebuild: the AIMD
                # backoff shortens the slow-disk queue the hedges race,
                # so the combined tail cut is deeper than either alone.
                "both_p999_ms": (
                    both["tail"]["p999_ms"] if both is not None else None
                ),
                "none_max_ms": none["tail"]["max_ms"],
                "hedge_max_ms": hedge["tail"]["max_ms"],
                "launched": launched,
                "won": won,
                "win_rate": won / launched if launched else None,
                "quarantines": hedge["hedging"]["detector"][
                    "quarantines"
                ],
            }
        if none is not None and adapt is not None:
            base_ms = none["rebuild"]["duration_ms"]
            adapt_ms = adapt["rebuild"]["duration_ms"]
            adaptive[layout] = {
                "none_rebuild_ms": base_ms,
                "adaptive_rebuild_ms": adapt_ms,
                "rebuild_inflation": (
                    adapt_ms / base_ms
                    if base_ms and adapt_ms is not None
                    else None
                ),
                "none_p99_violated": none["slo"]["p99_violated"],
                "adaptive_p99_violated": adapt["slo"]["p99_violated"],
                "none_violation_ms": none["slo"]["time_in_violation_ms"],
                "adaptive_violation_ms": adapt["slo"][
                    "time_in_violation_ms"
                ],
                "backoffs": adapt["adaptive"]["backoffs"],
                "sprints": adapt["adaptive"]["sprints"],
            }
    summary = {
        "trials": len(records),
        "truncated_trials": sum(1 for r in records if r["truncated"]),
        "slo_violated_trials": sum(
            1 for r in records if r["slo_violated"]
        ),
        "hedging": hedging,
        "adaptive": adaptive,
    }
    io_recovery = aggregate_io_recovery(records)
    if io_recovery is not None:
        summary["io_recovery"] = io_recovery
    scrub = aggregate_scrub(records)
    if scrub is not None:
        summary["scrub"] = scrub
    return summary
