"""Aggregation of per-trial I/O-recovery counters.

Campaign, crash, nemesis, open-loop, and fail-slow trials all run the
controller's transient-error machinery; a trial record carries its
:class:`repro.array.controller.IoRecoveryStats` dump only when a retry
or hedge policy was installed — top-level ``"io_recovery"`` for the
fault campaigns, nested under ``"instrumentation"`` for the traffic
trials.  The summarizers fold those into one totals block
*conditionally*: sweeps that never enabled the machinery must keep
their summaries byte-identical with committed bench baselines, so the
aggregate is omitted rather than zero-filled.
"""

from __future__ import annotations

from typing import List, Optional


def trial_io_recovery(record: dict) -> Optional[dict]:
    """The trial's recovery counters, wherever the record put them."""
    block = record.get("io_recovery")
    if block is None:
        block = (record.get("instrumentation") or {}).get("io_recovery")
    return block


def aggregate_io_recovery(records: List[dict]) -> Optional[dict]:
    """Sum recovery counters across trials.

    Returns ``None`` when no trial carried counters; keys are the union
    of the per-trial blocks (hedge counters only appear when a hedge
    policy ran), plus ``trials_reporting``.
    """
    blocks = [b for b in map(trial_io_recovery, records) if b]
    if not blocks:
        return None
    totals: dict = {}
    for block in blocks:
        for key in sorted(block):
            totals[key] = totals.get(key, 0) + block[key]
    return {
        "trials_reporting": len(blocks),
        **{key: totals[key] for key in sorted(totals)},
    }
