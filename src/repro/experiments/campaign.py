"""Multi-fault reliability campaigns.

A *campaign* runs many seeded array lifetimes to completion-or-loss and
estimates the per-cycle data-loss probability empirically: each trial
draws a failure sequence (typically two exponential disk lifetimes from
the MTTDL models' assumptions, plus optional latent sector errors),
simulates the full repair arc — degraded dwell, rebuild under optional
client load, second failures classified exactly against the rebuild
frontier — and ends classified **survived** or **lost**.  Never a crash:
data loss is a first-class terminal state of the lifecycle.

The summary cross-checks the Monte-Carlo estimate against the analytic
exposure model (:func:`repro.reliability.mttdl.predict_campaign_loss`):
with per-disk MTTF ``m`` and a measured exposure window ``W`` (dwell +
rebuild), the analytic per-cycle loss probability is
``q = 1 - exp(-(n-1) W / m)``, which must land inside the Wilson
confidence interval of the observed loss fraction.  Dividing the mean
regenerative-cycle length by the loss probability turns either number
into an MTTDL.

Every trial is a pure function of its spec — seeded fault draws, seeded
media errors, a deterministic event loop — so campaign records plug into
the runner's byte-determinism contract (cache, checkpoint/resume,
parallel workers all produce identical bytes).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.array.controller import ArrayController
from repro.array.raidops import ArrayMode
from repro.errors import ConfigurationError
from repro.experiments.config import (
    PAPER_SCHEDULER,
    PAPER_SCHEDULER_WINDOW,
    PAPER_STRIPE_UNIT_KB,
    layout_for,
)
from repro.experiments.iorecovery import aggregate_io_recovery
from repro.faults.lifecycle import ArrayLifecycle
from repro.faults.media import MediaErrorMap
from repro.faults.scenario import FaultScenario
from repro.faults.scrubber import Scrubber, aggregate_scrub
from repro.reliability.mttdl import MS_PER_HOUR, predict_campaign_loss
from repro.sim.engine import make_engine
from repro.stats.confidence import wilson_interval
from repro.workload.client import ClosedLoopClient
from repro.workload.generators import UniformGenerator
from repro.workload.spec import AccessSpec


def run_campaign_trial(
    layout_name: str,
    scenario: FaultScenario,
    trial: int = 0,
    seed: int = 0,
    clients: int = 0,
    size_kb: int = 8,
    is_write: bool = False,
    disks: Optional[int] = None,
    width: Optional[int] = None,
    oracle: bool = False,
    layout=None,
    instrument_out: Optional[dict] = None,
) -> dict:
    """One seeded array lifetime, to completion or data loss.

    ``clients = 0`` runs the repair arc with no foreground load (the
    common campaign configuration — thousands of trials, reliability is
    the measurand); positive ``clients`` adds the closed-loop client
    traffic of the lifecycle experiments, whose draws come from the same
    ``{seed}/client-{c}`` stream family.

    ``oracle=True`` attaches the integrity shadow
    (:class:`repro.faults.oracle.IntegrityOracle`): every write, rebuild
    step, and on-the-fly reconstruction is checked and the trial record
    gains an ``"oracle"`` verification block whose
    ``corruption_events`` must be zero — silent corruption is never an
    acceptable campaign outcome.  A scenario with ``transient_io_rate``
    set additionally injects per-operation I/O errors recovered by the
    controller's retry/escalation machinery (``"io_recovery"`` block).

    ``layout`` lets a batch executor pass a pre-built (shared) layout
    matching ``layout_name``/``disks``/``width``; layouts are immutable
    mappings (controllers wrap rather than mutate them), so sharing
    cannot change the record.  ``instrument_out``, when given a dict,
    receives out-of-band engine counters (``events_processed``) — kept
    off the record so campaign bytes stay pinned.
    """
    if clients < 0:
        raise ConfigurationError(f"negative client count {clients}")
    engine = make_engine()
    if layout is None:
        layout = layout_for(layout_name, disks=disks, width=width)
    controller = ArrayController(
        engine,
        layout,
        scheduler_name=PAPER_SCHEDULER,
        scheduler_window=PAPER_SCHEDULER_WINDOW,
        stripe_unit_kb=PAPER_STRIPE_UNIT_KB,
    )
    oracle_model = None
    if oracle:
        from repro.faults.oracle import IntegrityOracle

        oracle_model = controller.attach_oracle(IntegrityOracle(layout))
    if scenario.transient_io_rate > 0:
        controller.enable_transient_errors(
            scenario.transient_io_rate, scenario.fault_seed
        )
    rows = (
        scenario.rebuild_rows
        if scenario.rebuild_rows is not None
        else controller.periods * layout.period
    )
    media = (
        MediaErrorMap.from_rate(
            layout.n,
            rows,
            PAPER_STRIPE_UNIT_KB,
            scenario.lse_per_gb,
            seed=scenario.fault_seed,
        )
        if scenario.lse_per_gb > 0
        else None
    )

    scrubber: Optional[Scrubber] = None
    if scenario.scrub_interval_ms is not None and media is not None:
        scrubber = Scrubber(
            controller,
            media,
            interval_ms=scenario.scrub_interval_ms,
            throttle_ms=scenario.scrub_throttle_ms,
            rows=rows,
        )

    done = {"classification": None}

    def finish(classification: str) -> None:
        if done["classification"] is not None:
            return
        done["classification"] = classification
        if scrubber is not None:
            scrubber.stop()
        engine.stop()

    lifecycle = ArrayLifecycle(
        controller,
        scenario,
        media=media,
        on_transition=lambda mode, t: _on_transition(mode),
    )

    def _on_transition(mode: ArrayMode) -> None:
        if mode is ArrayMode.DATA_LOSS:
            finish("lost")
        elif mode is ArrayMode.POST_RECONSTRUCTION:
            injector = lifecycle.injector
            if injector.fired_count == len(injector.faults):
                finish("survived")

    injector = lifecycle.arm()
    if scrubber is not None:
        scrubber.start()

    samples = {"count": 0}
    if clients > 0:
        spec = AccessSpec(size_kb=size_kb, is_write=is_write)
        units = spec.units(PAPER_STRIPE_UNIT_KB)

        def on_response(client, access, response_ms) -> bool:
            samples["count"] += 1
            return True

        for c in range(clients):
            generator = UniformGenerator(
                controller.addressable_data_units,
                units,
                random.Random(f"{seed}/client-{c}"),
            )
            ClosedLoopClient(
                c, controller, generator, spec, on_response,
                stripe_unit_kb=PAPER_STRIPE_UNIT_KB,
            ).start()

    engine.run()
    if instrument_out is not None:
        instrument_out["events_processed"] = engine.events_processed

    if done["classification"] is None:
        # Drained with faults still pending is impossible (they are
        # scheduled events); drained without reaching a terminal regime
        # means the scenario never completed a repair arc.
        raise ConfigurationError(
            f"campaign trial ended unclassified in mode"
            f" {controller.mode.value}"
        )

    survived = done["classification"] == "survived"
    first_fault_ms = injector.faults[0][0]
    first_completion_ms = next(
        (
            t
            for mode, t in lifecycle.transitions
            if mode == ArrayMode.POST_RECONSTRUCTION.value
        ),
        None,
    )
    if survived:
        cycle_ms = first_completion_ms
        window_ms = first_completion_ms - first_fault_ms
    else:
        cycle_ms = lifecycle.data_loss_ms
        window_ms = None
    recon = lifecycle.reconstructor
    record = {
        "layout": layout_name,
        "disks": layout.n,
        "trial": trial,
        "seed": seed,
        "mttf_hours": scenario.mttf_hours,
        "classification": done["classification"],
        "survived": survived,
        "loss_reason": controller.data_loss_reason,
        "fault_times_ms": [t for t, _ in injector.faults],
        "fault_disks": [d for _, d in injector.faults],
        "first_fault_ms": first_fault_ms,
        "data_loss_ms": lifecycle.data_loss_ms,
        "completed_ms": first_completion_ms if survived else None,
        "cycle_ms": cycle_ms,
        "window_ms": window_ms,
        "lost_units": lifecycle.lost_units,
        "second_faults": list(lifecycle.second_faults),
        "rebuild": {
            "duration_ms": (
                recon.duration_ms
                if recon is not None and recon.finished_ms is not None
                else None
            ),
            "steps_completed": 0 if recon is None else recon.steps_completed,
            "total_steps": 0 if recon is None else recon.total_steps,
            "skipped_steps": 0 if recon is None else recon.skipped_steps,
        },
        "media": None if media is None else media.to_dict(),
        "scrub": None if scrubber is None else scrubber.to_dict(),
        "samples": samples["count"],
    }
    # Feature-gated keys only: inactive-default trials keep producing the
    # exact bytes existing caches and baselines hold.
    if oracle_model is not None:
        record["oracle"] = oracle_model.verify(
            failed_disk=controller.failed_disk
        )
    if scenario.transient_io_rate > 0:
        record["io_recovery"] = controller.io_stats.to_dict()
    return record


def campaign_specs(
    layout: str = "pddl",
    trials: int = 200,
    disks: int = 13,
    width: Optional[int] = None,
    seed: int = 0,
    mttf_hours: float = 1000.0,
    faults: int = 2,
    degraded_dwell_ms: float = 0.0,
    rebuild_rows: Optional[int] = None,
    rebuild_parallel: int = 1,
    rebuild_throttle_ms: float = 0.0,
    lse_per_gb: float = 0.0,
    scrub_interval_ms: Optional[float] = None,
    scrub_throttle_ms: float = 0.0,
    clients: int = 0,
    size_kb: int = 8,
    is_write: bool = False,
    transient_io_rate: float = 0.0,
    oracle: bool = False,
):
    """One :class:`~repro.runner.spec.CampaignTrialSpec` per trial.

    Each trial gets an independent fault-seed stream derived from
    ``(seed, trial)``, so the campaign is embarrassingly parallel and
    individual trials replay bit-identically in isolation.
    """
    # Local import: repro.runner imports the executor module, which
    # imports this one.
    from repro.runner.spec import CampaignTrialSpec

    if trials < 1:
        raise ConfigurationError(f"need >= 1 trial, got {trials}")
    return [
        CampaignTrialSpec(
            layout=layout,
            disks=disks,
            width=width,
            trial=trial,
            seed=seed,
            mttf_hours=mttf_hours,
            faults=faults,
            degraded_dwell_ms=degraded_dwell_ms,
            rebuild_rows=rebuild_rows,
            rebuild_parallel=rebuild_parallel,
            rebuild_throttle_ms=rebuild_throttle_ms,
            lse_per_gb=lse_per_gb,
            scrub_interval_ms=scrub_interval_ms,
            scrub_throttle_ms=scrub_throttle_ms,
            clients=clients,
            size_kb=size_kb,
            is_write=is_write,
            transient_io_rate=transient_io_rate,
            oracle=oracle,
        )
        for trial in range(trials)
    ]


def summarize_campaign(records: List[dict], confidence: float = 0.95) -> dict:
    """Loss probability with Wilson CI, TTDL samples, and the analytic
    cross-check.

    ``records`` are ``run_campaign_trial`` results (every trial of one
    campaign — same layout, same scenario parameters).  The analytic
    prediction needs stochastic lifetimes (``mttf_hours`` set) and at
    least one survived trial to measure the exposure window from.
    """
    if not records:
        raise ConfigurationError("no campaign records to summarize")
    trials = len(records)
    losses = sum(1 for r in records if not r["survived"])
    p_hat = losses / trials
    ci_low, ci_high = wilson_interval(losses, trials, confidence)
    ttdl_ms = [r["data_loss_ms"] for r in records if not r["survived"]]
    windows_ms = [
        r["window_ms"] for r in records if r["window_ms"] is not None
    ]
    cycles_ms = [r["cycle_ms"] for r in records]
    mean_cycle_ms = sum(cycles_ms) / len(cycles_ms)
    summary = {
        "trials": trials,
        "losses": losses,
        "loss_probability": p_hat,
        "confidence": confidence,
        "ci_low": ci_low,
        "ci_high": ci_high,
        "lost_units_total": sum(r["lost_units"] for r in records),
        "ttdl_ms": {
            "samples": len(ttdl_ms),
            "mean": sum(ttdl_ms) / len(ttdl_ms) if ttdl_ms else None,
            "min": min(ttdl_ms) if ttdl_ms else None,
            "max": max(ttdl_ms) if ttdl_ms else None,
        },
        "mean_cycle_ms": mean_cycle_ms,
        "mean_window_ms": (
            sum(windows_ms) / len(windows_ms) if windows_ms else None
        ),
        "empirical_mttdl_hours": (
            (mean_cycle_ms / MS_PER_HOUR) / p_hat if losses else None
        ),
        "analytic": None,
    }
    mttf_hours = records[0]["mttf_hours"]
    if mttf_hours is not None and windows_ms:
        n = records[0]["disks"]
        window_hours = summary["mean_window_ms"] / MS_PER_HOUR
        prediction = predict_campaign_loss(n, mttf_hours, window_hours)
        q = prediction.loss_probability
        summary["analytic"] = {
            "n": n,
            "mttf_hours": mttf_hours,
            "window_hours": window_hours,
            "loss_probability": q,
            "within_ci": ci_low <= q <= ci_high,
            "mttdl_hours": (
                (mean_cycle_ms / MS_PER_HOUR) / q if q > 0 else None
            ),
        }
    io_recovery = aggregate_io_recovery(records)
    if io_recovery is not None:
        summary["io_recovery"] = io_recovery
    scrub = aggregate_scrub(records)
    if scrub is not None:
        summary["scrub"] = scrub
    return summary
