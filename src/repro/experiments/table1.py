"""Table 1 driver: satisfactory base permutation search.

For each (stripe width, stripe count) cell: constructive routes first (Bose
for prime n — always a solitary '1'), then hill-climbing for groups of
growing size under a bounded budget.  Cells the search cannot settle within
budget are reported as '?', exactly like the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.bose import satisfactory_permutation
from repro.core.permutation import BasePermutation
from repro.core.search import search_permutation_group
from repro.core.tables import PAPER_TABLE1
from repro.errors import ConfigurationError, SearchError
from repro.gf.prime import is_prime


@dataclass(frozen=True)
class Table1Cell:
    """One cell of Table 1: permutations needed, and how we found them."""

    k: int
    g: int
    n: int
    group_size: Optional[int]  # None = not found ('?')
    method: str                # "bose", "gf2", "search", "none"
    paper_value: Optional[int]

    def rendered(self) -> str:
        return "?" if self.group_size is None else str(self.group_size)


def solve_cell(
    k: int,
    g: int,
    seed: int = 0,
    restarts: int = 12,
    max_steps: int = 1200,
    p_max: int = 3,
) -> Table1Cell:
    """Find the smallest satisfactory permutation group for one cell."""
    n = g * k + 1
    paper = PAPER_TABLE1.get((k, g))
    try:
        perm = satisfactory_permutation(g, k)
        if is_prime(n):
            method = "bose"
        elif n & (n - 1) == 0:
            method = "gf2"
        else:
            method = "gf"  # odd prime power via GF(p^m)
        assert isinstance(perm, BasePermutation)
        return Table1Cell(k, g, n, 1, method, paper)
    except ConfigurationError:
        pass
    try:
        result = search_permutation_group(
            g, k, seed=seed, restarts=restarts,
            max_steps=max_steps, p_max=p_max,
        )
        size = 1 if isinstance(result, BasePermutation) else result.p
        return Table1Cell(k, g, n, size, "search", paper)
    except SearchError:
        return Table1Cell(k, g, n, None, "none", paper)


def reproduce_table1(
    widths=range(5, 11),
    stripe_counts=range(1, 11),
    seed: int = 0,
    **search_kwargs,
) -> Dict[Tuple[int, int], Table1Cell]:
    """Solve every cell of the Table 1 grid."""
    return {
        (k, g): solve_cell(k, g, seed=seed, **search_kwargs)
        for k in widths
        for g in stripe_counts
    }
