"""Table 3 driver: implementation-cost comparison of the schemes.

Columns: mapping table size (entries), translation time (measured, ns per
mapping — the benchmark harness times it), sparing support, and layout
period in rows.
"""

from __future__ import annotations

import timeit
from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.config import paper_layout
from repro.layouts.pseudorandom import PseudoRandomLayout


@dataclass(frozen=True)
class Table3Row:
    scheme: str
    table_entries: int
    sparing: bool
    period_rows: Optional[int]
    translation_ns: float

    def as_row(self) -> str:
        period = "expected only" if self.period_rows is None else str(
            self.period_rows
        )
        return (
            f"{self.scheme:22s} entries={self.table_entries:5d}"
            f"  sparing={'yes' if self.sparing else 'no':3s}"
            f"  period={period:14s}"
            f"  translate={self.translation_ns:8.1f} ns"
        )


def _time_translation(layout, iterations: int = 20_000) -> float:
    """Mean nanoseconds per data-unit mapping, via the public API."""
    total_units = layout.data_units_per_period
    stride = max(1, total_units // 64)

    def body():
        for unit in range(0, total_units, stride):
            layout.data_unit_address(unit)

    calls = len(range(0, total_units, stride))
    loops = max(1, iterations // calls)
    seconds = timeit.timeit(body, number=loops)
    return seconds / (loops * calls) * 1e9


def table3_rows(iterations: int = 20_000) -> Dict[str, Table3Row]:
    """Measure every scheme of Table 3 (plus Pseudo-Random)."""
    rows: Dict[str, Table3Row] = {}
    for name in ("parity-declustering", "datum", "prime", "pddl"):
        layout = paper_layout(name)
        rows[name] = Table3Row(
            scheme=name,
            table_entries=layout.mapping_table_entries(),
            sparing=layout.has_sparing,
            period_rows=layout.period,
            translation_ns=_time_translation(layout, iterations),
        )
    pseudo = PseudoRandomLayout(13, 4, rows=128, seed=0)
    rows["pseudo-random"] = Table3Row(
        scheme="pseudo-random",
        table_entries=pseudo.mapping_table_entries(),
        sparing=pseudo.has_sparing,
        period_rows=None,  # "expected values only"
        translation_ns=_time_translation(pseudo, iterations),
    )
    return rows
