"""Corruption trials: the end-to-end defense stack under silent faults.

One trial offers open-loop Poisson arrivals — a read/write mix over a
small, deliberately re-read working set — to an array whose disks lie:
a seeded :class:`~repro.faults.corruption.CorruptionModel` loses writes,
misdirects them onto victim cells, and rots stored bits.  The
``defense`` axis switches the protection stack one layer at a time:

- ``none``     — no defense: corrupt cells are served as good data
  (counted silently, per kind, by the model and the oracle), and
  undefended read-modify-writes fold stale pre-reads into parity
  (*parity pollution*);
- ``checksum`` — per-stripe-unit checksum+write-version metadata
  validated on every read path; a mismatch is demoted to a media error
  and repaired from redundancy via the existing escalation;
- ``verify``   — ``checksum`` plus write-verify: every write is read
  back (charged on the engine clock) so lost and misdirected writes are
  caught at write time, not at next read;
- ``audit``    — ``checksum`` plus a parity-audit scrub that sweeps
  every live cell, verifies it against its metadata, and repairs
  mismatches from stripe peers before any client reads them.

The measurands are the per-kind corruption ledger (injected / detected
/ silent / repaired / remaining), the foreground latency each tier
costs, and the classification headline the committed
``BENCH_corruption.json`` asserts: the full stack serves *zero* silent
corruption while no-defense serves plenty.

Every draw comes from named seeded streams, so trials are pure
functions of their specs and plug into the runner's byte-determinism
contract.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.array.controller import ArrayController, LogicalAccess
from repro.errors import ConfigurationError
from repro.experiments.config import (
    PAPER_SCHEDULER,
    PAPER_SCHEDULER_WINDOW,
    PAPER_STRIPE_UNIT_KB,
    layout_for,
)
from repro.faults.corruption import ALL_CORRUPTION_KINDS, CorruptionModel
from repro.faults.lifecycle import ArrayLifecycle
from repro.faults.media import MediaErrorMap
from repro.faults.oracle import IntegrityOracle
from repro.faults.scenario import FaultScenario
from repro.faults.scrubber import Scrubber
from repro.sim.engine import make_engine
from repro.traffic.admission import AdmissionQueue
from repro.traffic.arrivals import PoissonArrivals
from repro.workload.generators import UniformGenerator
from repro.workload.spec import AccessSpec

#: Defense tiers, weakest to strongest (see module docstring).
DEFENSES = ("none", "checksum", "verify", "audit")

#: Trial outcome classifications.
OUTCOMES = ("clean", "detected_and_repaired", "silent_corruption")


def _latency_stats(samples: List[float]) -> dict:
    """Mean / p99 / max over a latency series (None-safe when empty)."""
    if not samples:
        return {"count": 0, "mean_ms": None, "p99_ms": None, "max_ms": None}
    ordered = sorted(samples)
    p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
    return {
        "count": len(ordered),
        "mean_ms": sum(ordered) / len(ordered),
        "p99_ms": p99,
        "max_ms": ordered[-1],
    }


def run_corruption_trial(
    layout_name: str,
    defense: str = "none",
    trial: int = 0,
    seed: int = 0,
    lost_rate: float = 0.02,
    misdirected_rate: float = 0.01,
    bitrot_cells: float = 0.0,
    rate_per_s: float = 60.0,
    arrivals: int = 300,
    read_fraction: float = 0.5,
    span_units: int = 64,
    size_kb: int = 8,
    disks: Optional[int] = None,
    width: Optional[int] = None,
    fail_at_ms: Optional[float] = None,
    failed_disk: int = 0,
    checksum_latency_ms: float = 0.02,
    scrub_interval_ms: float = 120.0,
    queue_depth: int = 64,
    service_slots: int = 12,
    horizon_ms: float = 60000.0,
    layout=None,
) -> dict:
    """One corruption trial; returns a JSON-able record.

    The working set is ``span_units`` data units — small on purpose, so
    cells the workload writes (and the model corrupts) are re-read
    within the trial and every latent corruption gets a chance to be
    served or caught.  The corruption model's offset domain is bounded
    to the physical rows holding that working set, so misdirected-write
    victims stay inside what the workload will actually read back.

    ``fail_at_ms`` optionally fails a disk mid-trial and leaves the
    array degraded (no rebuild within the horizon), exercising the
    degraded-read and escalation validation paths.  ``layout`` lets a
    batch executor pass a pre-built shared layout.
    """
    if defense not in DEFENSES:
        raise ConfigurationError(
            f"defense must be one of {DEFENSES}, got {defense!r}"
        )
    if arrivals < 1:
        raise ConfigurationError(f"need >= 1 arrival, got {arrivals}")
    if rate_per_s <= 0:
        raise ConfigurationError(
            f"arrival rate must be positive, got {rate_per_s}"
        )
    if not 0.0 <= read_fraction <= 1.0:
        raise ConfigurationError(
            f"read fraction must be in [0, 1], got {read_fraction}"
        )
    if span_units < 1:
        raise ConfigurationError(f"need >= 1 span unit, got {span_units}")
    if horizon_ms <= 0:
        raise ConfigurationError(
            f"horizon must be positive, got {horizon_ms}"
        )
    engine = make_engine()
    if layout is None:
        layout = layout_for(layout_name, disks=disks, width=width)
    controller = ArrayController(
        engine,
        layout,
        scheduler_name=PAPER_SCHEDULER,
        scheduler_window=PAPER_SCHEDULER_WINDOW,
        stripe_unit_kb=PAPER_STRIPE_UNIT_KB,
    )
    oracle_model = controller.attach_oracle(IntegrityOracle(layout))
    span = min(span_units, controller.addressable_data_units)

    #: Physical rows holding the working set: the corruption model's
    #: offset domain, so misdirected victims stay consumable.
    periods_swept = -(-span // layout.data_units_per_period)
    rows = periods_swept * layout.period

    stream_root = seed * 1_000_003 + trial
    model = CorruptionModel(
        layout.n,
        rows,
        seed=f"{stream_root}/corruption",
        lost_rate=lost_rate,
        misdirected_rate=misdirected_rate,
        bitrot_cells=bitrot_cells,
    )
    controller.attach_corruption(model)
    if defense != "none":
        controller.enable_checksums(
            write_verify=(defense == "verify"),
            metadata_latency_ms=checksum_latency_ms,
        )
    scrubber = None
    if defense == "audit":
        scrubber = Scrubber(
            controller,
            MediaErrorMap({}),
            interval_ms=scrub_interval_ms,
            rows=rows,
            audit=True,
        )
        scrubber.start()

    lifecycle = None
    if fail_at_ms is not None:
        scenario = FaultScenario(
            failed_disk=failed_disk,
            fault_time_ms=fail_at_ms,
            # The dwell outlasts the horizon: the array stays degraded,
            # so surviving-peer reads exercise the degraded validation
            # path without paying for a rebuild.
            degraded_dwell_ms=2 * horizon_ms,
            rebuild_rows=rows,
        )
        lifecycle = ArrayLifecycle(controller, scenario)
        lifecycle.arm()

    totals = {"resolved": 0}
    lat_read: List[float] = []
    lat_write: List[float] = []

    def check_stop() -> None:
        if totals["resolved"] >= arrivals:
            engine.stop()

    def on_response(
        access: LogicalAccess, total_ms: float, wait_ms: float
    ) -> None:
        (lat_write if access.is_write else lat_read).append(total_ms)
        totals["resolved"] += 1
        check_stop()

    queue = AdmissionQueue(
        controller,
        on_response,
        depth=queue_depth,
        service_slots=service_slots,
    )

    units = AccessSpec(size_kb, False).units(PAPER_STRIPE_UNIT_KB)
    location = UniformGenerator(
        span, units, random.Random(f"{stream_root}/corruption-loc")
    )
    rw_rng = random.Random(f"{stream_root}/corruption-rw")
    process = PoissonArrivals(
        rate_per_s, random.Random(f"{stream_root}/arrivals")
    )
    process.prefetch(arrivals)

    state = {"offered": 0}

    def arrive() -> None:
        access = LogicalAccess(
            access_id=state["offered"],
            first_unit=location.next_start(),
            unit_count=units,
            is_write=rw_rng.random() >= read_fraction,
        )
        state["offered"] += 1
        if not queue.offer(access):
            totals["resolved"] += 1
            check_stop()
        if state["offered"] < arrivals:
            engine.schedule(process.next_delay_ms(), arrive)

    engine.schedule(process.next_delay_ms(), arrive)
    engine.schedule_at(horizon_ms, engine.stop)
    engine.run()

    if scrubber is not None:
        scrubber.stop()

    report = model.report()
    if report["silent_total"] > 0:
        classification = "silent_corruption"
    elif report["detected_total"] > 0:
        classification = "detected_and_repaired"
    else:
        classification = "clean"

    stats = queue.stats()
    makespan_ms = engine.now
    record = {
        "layout": layout_name,
        "defense": defense,
        "trial": trial,
        "seed": seed,
        "lost_rate": lost_rate,
        "misdirected_rate": misdirected_rate,
        "bitrot_cells": bitrot_cells,
        "rows": rows,
        "offered": state["offered"],
        "completed": stats["completed"],
        "shed": stats["shed"],
        "truncated": totals["resolved"] < arrivals,
        "makespan_ms": makespan_ms,
        "throughput_per_s": (
            stats["completed"] / (makespan_ms / 1000.0)
            if makespan_ms > 0
            else None
        ),
        "latency": {
            "read": _latency_stats(lat_read),
            "write": _latency_stats(lat_write),
            "all": _latency_stats(lat_read + lat_write),
        },
        "classification": classification,
        "corruption": report,
        "oracle": oracle_model.verify(failed_disk=controller.failed_disk),
        "instrumentation": controller.instrumentation_record(),
    }
    if defense != "none":
        record["checksum"] = controller.checksum_stats.to_dict()
    if scrubber is not None:
        record["scrub_audit"] = scrubber.to_dict()
    if lifecycle is not None:
        record["transitions"] = [list(t) for t in lifecycle.transitions]
    return record


def corruption_specs(
    layouts: List[str],
    defenses: List[str] = DEFENSES,
    trials: int = 25,
    seed: int = 0,
    start: int = 0,
    disks: Optional[int] = None,
    **overrides,
) -> list:
    """The defense sweep as runner specs (layout x defense x trial)."""
    # Local import: repro.runner imports the experiment drivers' specs.
    from repro.runner.spec import CorruptionTrialSpec

    if trials < 1:
        raise ConfigurationError(f"need >= 1 trial, got {trials}")
    specs = []
    for layout in layouts:
        for defense in defenses:
            for trial in range(start, start + trials):
                kwargs = dict(overrides)
                if disks is not None:
                    kwargs["disks"] = disks
                specs.append(
                    CorruptionTrialSpec(
                        layout=layout,
                        defense=defense,
                        trial=trial,
                        seed=seed,
                        **kwargs,
                    )
                )
    return specs


def summarize_corruption(records: List[dict]) -> dict:
    """Reduce trial records to the defense-comparison summary.

    Per (layout, defense): outcome counts, the per-kind ledger totals,
    and the latency/throughput cost of the tier.  The headline — the
    committed bench's acceptance — is ``silent_by_defense``: zero for
    every checksummed tier, positive for ``none``.
    """
    if not records:
        raise ConfigurationError("no corruption records to summarize")
    tiers: dict = {}
    for record in records:
        key = (record["layout"], record["defense"])
        tiers.setdefault(key, []).append(record)
    by_tier: dict = {}
    for (layout, defense), recs in sorted(tiers.items()):
        ledger = {
            bucket: {
                kind: sum(
                    r["corruption"][bucket].get(kind, 0) for r in recs
                )
                for kind in ALL_CORRUPTION_KINDS
            }
            for bucket in ("injected", "detected", "silent", "repaired")
        }
        means = [
            r["latency"]["all"]["mean_ms"]
            for r in recs
            if r["latency"]["all"]["mean_ms"] is not None
        ]
        p99s = [
            r["latency"]["all"]["p99_ms"]
            for r in recs
            if r["latency"]["all"]["p99_ms"] is not None
        ]
        throughputs = [
            r["throughput_per_s"]
            for r in recs
            if r["throughput_per_s"] is not None
        ]
        entry = {
            "trials": len(recs),
            "outcomes": {
                outcome: sum(
                    1 for r in recs if r["classification"] == outcome
                )
                for outcome in OUTCOMES
            },
            "ledger": ledger,
            "silent_total": sum(
                r["corruption"]["silent_total"] for r in recs
            ),
            "detected_total": sum(
                r["corruption"]["detected_total"] for r in recs
            ),
            "cells_corrupted": sum(
                r["corruption"]["cells_corrupted"] for r in recs
            ),
            "remaining": sum(r["corruption"]["remaining"] for r in recs),
            "truncated_trials": sum(1 for r in recs if r["truncated"]),
            "mean_latency_ms": (
                sum(means) / len(means) if means else None
            ),
            "mean_p99_ms": sum(p99s) / len(p99s) if p99s else None,
            "mean_throughput_per_s": (
                sum(throughputs) / len(throughputs)
                if throughputs
                else None
            ),
        }
        checksum_recs = [r for r in recs if "checksum" in r]
        if checksum_recs:
            entry["checksum"] = {
                field: sum(r["checksum"][field] for r in checksum_recs)
                for field in checksum_recs[0]["checksum"]
            }
        audit_recs = [r for r in recs if "scrub_audit" in r]
        if audit_recs:
            entry["scrub_audit"] = {
                field: sum(r["scrub_audit"][field] for r in audit_recs)
                for field in (
                    "stripes_audited",
                    "audit_mismatches",
                    "audit_repairs",
                    "audit_unrepairable",
                )
            }
        by_tier.setdefault(layout, {})[defense] = entry

    silent_by_defense: dict = {}
    latency_cost: dict = {}
    for layout, defenses in by_tier.items():
        for defense, entry in defenses.items():
            silent_by_defense[defense] = (
                silent_by_defense.get(defense, 0) + entry["silent_total"]
            )
        base = defenses.get("none")
        if base is not None and base["mean_latency_ms"]:
            latency_cost[layout] = {
                defense: (
                    entry["mean_latency_ms"] / base["mean_latency_ms"]
                    if entry["mean_latency_ms"] is not None
                    else None
                )
                for defense, entry in defenses.items()
            }
    return {
        "trials": len(records),
        "layouts": sorted(by_tier),
        "silent_by_defense": {
            k: silent_by_defense[k] for k in sorted(silent_by_defense)
        },
        "defended_silent_total": sum(
            count
            for defense, count in silent_by_defense.items()
            if defense != "none"
        ),
        "undefended_silent_total": silent_by_defense.get("none", 0),
        "latency_cost_vs_none": latency_cost,
        "by_tier": {
            layout: defenses for layout, defenses in sorted(by_tier.items())
        },
    }
