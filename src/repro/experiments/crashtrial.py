"""Controller-crash trials: tear a write workload mid-plan, recover.

One trial is a complete crash/recovery arc on the event loop:

1. Closed-loop clients write into the array (optionally degraded first
   via a scripted disk failure, optionally under transient I/O errors).
2. A :class:`~repro.faults.crash.CrashInjector` fires — at a scripted
   time, a scripted write-plan phase boundary, or a seeded boundary —
   wiping the engine's pending events and tearing in-flight writes.
3. After ``restart_delay_ms`` the controller "reboots":
   a :class:`~repro.array.resync.Resynchronizer` replays the NVRAM
   journal's dirty stripes (or full-sweeps the write region when the
   trial runs journal-less — the measurable baseline).
4. Fresh post-crash clients write again, so the journal's latency cost
   and the recovery's response-time shadow are both visible.

The :class:`~repro.faults.oracle.IntegrityOracle` shadows the whole arc;
a trial record's ``oracle.corruption_events`` must be zero unless the
trial *correctly* ended in data loss.  Client writes are confined to the
stripe region the resync sweep covers (``resync_rows``), so the
full-sweep baseline genuinely closes every hole the crash opened —
making journal-on and journal-off trials end in the same consistent
state by different amounts of work.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.array.controller import ArrayController
from repro.array.journal import StripeJournal
from repro.array.raidops import ArrayMode
from repro.array.resync import Resynchronizer
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.config import (
    PAPER_SCHEDULER,
    PAPER_SCHEDULER_WINDOW,
    PAPER_STRIPE_UNIT_KB,
    layout_for,
)
from repro.faults.crash import CrashInjector
from repro.faults.oracle import IntegrityOracle
from repro.sim.engine import make_engine
from repro.workload.client import ClosedLoopClient
from repro.workload.generators import UniformGenerator
from repro.workload.spec import AccessSpec


def run_crash_trial(
    layout_name: str,
    disks: int = 13,
    width: Optional[int] = None,
    clients: int = 4,
    size_kb: int = 8,
    seed: int = 0,
    journal: bool = True,
    journal_latency_ms: float = 0.05,
    crash_time_ms: Optional[float] = None,
    crash_boundary: Optional[int] = None,
    crash_seed: Optional[int] = None,
    crash_max_boundary: int = 64,
    fail_disk_at_ms: Optional[float] = None,
    failed_disk: int = 0,
    transient_io_rate: float = 0.0,
    restart_delay_ms: float = 10.0,
    resync_rows: int = 26,
    resync_parallel: int = 1,
    max_pre_samples: int = 200,
    post_samples: int = 50,
    layout=None,
) -> dict:
    """One crash/recovery arc (see module docstring).  Pure function of
    its arguments — every RNG is a named stream, so trials plug into the
    runner's byte-determinism contract.  ``layout`` accepts a pre-built
    shared layout from a batch executor (layouts are immutable
    mappings, so sharing cannot change the record)."""
    if clients < 1:
        raise ConfigurationError(f"need >= 1 client, got {clients}")
    engine = make_engine()
    if layout is None:
        layout = layout_for(layout_name, disks=disks, width=width)
    controller = ArrayController(
        engine,
        layout,
        scheduler_name=PAPER_SCHEDULER,
        scheduler_window=PAPER_SCHEDULER_WINDOW,
        stripe_unit_kb=PAPER_STRIPE_UNIT_KB,
    )
    oracle = controller.attach_oracle(IntegrityOracle(layout))
    journal_log = (
        controller.attach_journal(StripeJournal(journal_latency_ms))
        if journal
        else None
    )
    if transient_io_rate > 0:
        controller.enable_transient_errors(transient_io_rate, seed)

    # Confine client writes to the stripe region the resync sweep covers,
    # so the full-sweep baseline really does close every hole.
    periods_swept = max(1, resync_rows // layout.period)
    write_units = periods_swept * layout.data_units_per_period
    if write_units > controller.addressable_data_units:
        write_units = controller.addressable_data_units

    spec = AccessSpec(size_kb=size_kb, is_write=True)
    units = spec.units(PAPER_STRIPE_UNIT_KB)

    pre = {"samples": 0, "total_ms": 0.0}
    post = {"samples": 0, "total_ms": 0.0}
    state = {"resync": None, "resync_ms": None}

    def pre_response(client, access, response_ms) -> bool:
        pre["samples"] += 1
        pre["total_ms"] += response_ms
        return pre["samples"] < max_pre_samples

    for c in range(clients):
        generator = UniformGenerator(
            write_units,
            units,
            random.Random(f"{seed}/client-{c}"),
        )
        ClosedLoopClient(
            c, controller, generator, spec, pre_response,
            stripe_unit_kb=PAPER_STRIPE_UNIT_KB,
        ).start()

    if fail_disk_at_ms is not None:

        def fail() -> None:
            if controller.mode is ArrayMode.FAULT_FREE:
                controller.fail_disk(failed_disk)

        engine.schedule_at(fail_disk_at_ms, fail)

    def post_response(client, access, response_ms) -> bool:
        post["samples"] += 1
        post["total_ms"] += response_ms
        if post["samples"] >= post_samples:
            engine.stop()
            return False
        return True

    def start_post_clients() -> None:
        if post_samples < 1 or controller.mode is ArrayMode.DATA_LOSS:
            return
        for c in range(clients):
            generator = UniformGenerator(
                write_units,
                units,
                random.Random(f"{seed}/post-{c}"),
            )
            ClosedLoopClient(
                clients + c, controller, generator, spec, post_response,
                stripe_unit_kb=PAPER_STRIPE_UNIT_KB,
            ).start()

    def resync_done(duration_ms: float) -> None:
        state["resync_ms"] = duration_ms
        start_post_clients()

    def restart() -> None:
        resync = Resynchronizer(
            controller,
            journal=journal_log,
            suspect=set(crash.torn_stripes),
            rows=resync_rows,
            parallel_stripes=resync_parallel,
            on_finished=resync_done,
        )
        state["resync"] = resync
        resync.start()

    def on_crash(injector: CrashInjector) -> None:
        engine.schedule(restart_delay_ms, restart)

    crash = CrashInjector(
        controller,
        at_time_ms=crash_time_ms,
        at_boundary=crash_boundary,
        seed=crash_seed,
        max_boundary=crash_max_boundary,
        on_crash=on_crash,
    )
    crash.arm()

    engine.run()

    resync = state["resync"]
    if not crash.fired:
        classification = "no_crash"
    elif controller.mode is ArrayMode.DATA_LOSS:
        classification = "data_loss"
    elif resync is not None and resync.complete:
        classification = "recovered"
    else:
        raise SimulationError(
            "crash trial drained without finishing recovery"
            f" (mode {controller.mode.value})"
        )

    verification = oracle.verify(failed_disk=controller.failed_disk)
    record = {
        "layout": layout_name,
        "disks": layout.n,
        "seed": seed,
        "clients": clients,
        "size_kb": size_kb,
        "journal": journal,
        "journal_latency_ms": journal_latency_ms if journal else None,
        "degraded": fail_disk_at_ms is not None,
        "classification": classification,
        "loss_reason": controller.data_loss_reason,
        "crash": crash.to_dict(),
        "restart_delay_ms": restart_delay_ms,
        "resync": None if resync is None else resync.to_dict(),
        "resync_ms": state["resync_ms"],
        "pre": {
            "samples": pre["samples"],
            "mean_ms": (
                pre["total_ms"] / pre["samples"] if pre["samples"] else None
            ),
        },
        "post": {
            "samples": post["samples"],
            "mean_ms": (
                post["total_ms"] / post["samples"]
                if post["samples"]
                else None
            ),
        },
        "oracle": verification,
        "instrumentation": controller.instrumentation_record(),
    }
    if transient_io_rate > 0:
        record["io_recovery"] = controller.io_stats.to_dict()
    return record


def crash_specs(
    layouts: Optional[List[str]] = None,
    client_counts: Optional[List[int]] = None,
    disks: int = 13,
    width: Optional[int] = None,
    size_kb: int = 8,
    seed: int = 0,
    crash_boundary: int = 150,
    journal_latency_ms: float = 0.05,
    resync_rows: int = 26,
    max_pre_samples: int = 200,
    post_samples: int = 50,
):
    """The ``repro crash`` sweep: layouts x client counts x journal
    on/off, with the crash pinned to one phase boundary so the only
    variable between the journal-on and journal-off points is the
    recovery strategy.  The default boundary lands late enough that the
    pre-crash response means are real curves, not single samples —
    ``crash_boundary`` must stay below the total write budget
    (``max_pre_samples``) or the crash never fires."""
    from repro.runner.spec import CrashTrialSpec

    if layouts is None:
        layouts = ["pddl"]
    if client_counts is None:
        client_counts = [2, 4, 8]
    return [
        CrashTrialSpec(
            layout=layout,
            disks=disks,
            width=width,
            clients=clients,
            size_kb=size_kb,
            seed=seed,
            journal=journal,
            journal_latency_ms=journal_latency_ms,
            crash_boundary=crash_boundary,
            resync_rows=resync_rows,
            max_pre_samples=max_pre_samples,
            post_samples=post_samples,
        )
        for layout in layouts
        for clients in client_counts
        for journal in (True, False)
    ]


def summarize_crash(records: List[dict]) -> dict:
    """Resync time and journal overhead, journal-on vs full-sweep.

    The acceptance bar: with the same crash placement, journal-on resync
    must be measurably faster than the full-sweep baseline, and no trial
    may report a silent corruption event.
    """
    if not records:
        raise ConfigurationError("no crash records to summarize")
    journal_on = [r for r in records if r["journal"]]
    journal_off = [r for r in records if not r["journal"]]

    def mean_resync(rows: List[dict]) -> Optional[float]:
        times = [r["resync_ms"] for r in rows if r["resync_ms"] is not None]
        return sum(times) / len(times) if times else None

    def mean_pre(rows: List[dict]) -> Optional[float]:
        means = [
            r["pre"]["mean_ms"]
            for r in rows
            if r["pre"]["mean_ms"] is not None
        ]
        return sum(means) / len(means) if means else None

    on_ms = mean_resync(journal_on)
    off_ms = mean_resync(journal_off)
    return {
        "trials": len(records),
        "corruption_events": sum(
            r["oracle"]["corruption_events"] for r in records
        ),
        "data_loss_trials": sum(
            1 for r in records if r["classification"] == "data_loss"
        ),
        "journal_resync_ms": on_ms,
        "full_sweep_resync_ms": off_ms,
        "resync_speedup": (
            off_ms / on_ms if on_ms and off_ms and on_ms > 0 else None
        ),
        "journal_pre_mean_ms": mean_pre(journal_on),
        "no_journal_pre_mean_ms": mean_pre(journal_off),
        "stripes_recomputed_journal": sum(
            r["resync"]["recomputed"]
            for r in journal_on
            if r["resync"] is not None
        ),
        "stripes_recomputed_full_sweep": sum(
            r["resync"]["recomputed"]
            for r in journal_off
            if r["resync"] is not None
        ),
    }
