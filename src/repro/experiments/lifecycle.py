"""Reconstruction-under-load lifecycle experiments (Figures 8-14, 18).

Where the response-time experiments measure each array mode as a separate
steady-state run, a *lifecycle* run is one continuous simulation: the
array starts fault-free under closed-loop client load, a scenario-scripted
failure lands mid-run, the background sweep rebuilds lost units — into
spare space for layouts with distributed sparing, onto a replacement
spindle otherwise — while clients keep hammering the array
(:attr:`~repro.array.raidops.ArrayMode.RECONSTRUCTION` — rebuilt units
served from their rebuilt copies, the rest reconstructed on the fly), and
the run finishes in the post-reconstruction regime.  The result carries per-mode latency
histograms (responses binned by the mode in force when the access was
*issued*), the mode-transition timeline, and the rebuild-progress curve.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.array.controller import ArrayController
from repro.array.raidops import ArrayMode
from repro.errors import ConfigurationError
from repro.experiments.config import (
    PAPER_SCHEDULER,
    PAPER_SCHEDULER_WINDOW,
    PAPER_STRIPE_UNIT_KB,
    layout_for,
)
from repro.faults.lifecycle import ArrayLifecycle
from repro.faults.scenario import FaultScenario
from repro.sim.engine import make_engine
from repro.sim.instrument import ProgressTimeline, TraceRecorder
from repro.stats.bymode import LatencyByMode
from repro.workload.client import ClosedLoopClient
from repro.workload.generators import UniformGenerator
from repro.workload.spec import AccessSpec


@dataclass(frozen=True)
class LifecycleRun:
    """Everything one lifecycle simulation observed."""

    layout: str
    spec_label: str
    clients: int
    fault_time_ms: float
    fault_disk: int
    transitions: List[tuple]
    complete: bool
    rebuild_duration_ms: Optional[float]
    rebuild_steps: int
    rebuild_total_steps: int
    rebuild_fraction: float
    samples: int
    by_mode: LatencyByMode
    progress: ProgressTimeline
    instrumentation: dict
    #: Integrity verification block (None unless the run was started
    #: with ``oracle=True``); ``corruption_events`` must be zero.
    oracle: Optional[dict] = None

    def mode_summary_rows(self) -> List[str]:
        rows = []
        for mode, _ in self.transitions:
            if self.by_mode.samples(mode) == 0:
                continue
            histogram = self.by_mode.histogram(mode)
            rows.append(
                f"{mode:20s} n={histogram.count:<5d}"
                f" mean={histogram.mean:8.2f} ms"
                f" p95={histogram.percentile(95):8.2f} ms"
            )
        return rows


def run_lifecycle(
    layout_name: str,
    spec: AccessSpec,
    clients: int,
    scenario: FaultScenario,
    seed: int = 0,
    max_samples: int = 4000,
    post_samples: int = 100,
    disks: Optional[int] = None,
    width: Optional[int] = None,
    record_timelines: bool = False,
    trace: Optional[TraceRecorder] = None,
    oracle: bool = False,
) -> LifecycleRun:
    """Run one full-lifecycle simulation point.

    The run stops once ``post_samples`` accesses issued in
    post-reconstruction mode have completed (the post-rebuild steady
    state is established), or after ``max_samples`` responses total —
    whichever comes first.  Both bounds and every RNG derive from the
    arguments, so identical calls produce identical results (the runner's
    byte-determinism contract extends to lifecycle specs).
    """
    if clients < 1:
        raise ConfigurationError(f"need >= 1 client, got {clients}")
    if max_samples < 1 or post_samples < 1:
        raise ConfigurationError("need positive sample bounds")
    engine = make_engine()
    layout = layout_for(layout_name, disks=disks, width=width)
    controller = ArrayController(
        engine,
        layout,
        scheduler_name=PAPER_SCHEDULER,
        scheduler_window=PAPER_SCHEDULER_WINDOW,
        stripe_unit_kb=PAPER_STRIPE_UNIT_KB,
        record_timelines=record_timelines,
    )
    if trace is not None:
        controller.attach_trace(trace)
    oracle_model = None
    if oracle:
        from repro.faults.oracle import IntegrityOracle

        oracle_model = controller.attach_oracle(IntegrityOracle(layout))

    progress = ProgressTimeline()
    lifecycle = ArrayLifecycle(
        controller,
        scenario,
        on_rebuild_step=lambda recon: progress.record(
            engine.now, recon.fraction_complete
        ),
    )
    injector = lifecycle.arm()

    by_mode = LatencyByMode()
    totals = {"samples": 0, "post": 0}

    def on_response(client, access, response_ms) -> bool:
        issued_ms = engine.now - response_ms
        mode = lifecycle.mode_at(issued_ms)
        by_mode.record(mode, response_ms)
        totals["samples"] += 1
        if mode == ArrayMode.POST_RECONSTRUCTION.value:
            totals["post"] += 1
        if (
            totals["samples"] >= max_samples
            or totals["post"] >= post_samples
        ):
            engine.stop()
            return False
        return True

    units = spec.units(PAPER_STRIPE_UNIT_KB)
    for c in range(clients):
        generator = UniformGenerator(
            controller.addressable_data_units,
            units,
            # Same stream family as the response experiments: adding the
            # lifecycle machinery does not perturb client draws.
            random.Random(f"{seed}/client-{c}"),
        )
        ClosedLoopClient(
            c, controller, generator, spec, on_response,
            stripe_unit_kb=PAPER_STRIPE_UNIT_KB,
        ).start()
    engine.run()

    recon = lifecycle.reconstructor
    return LifecycleRun(
        layout=layout_name,
        spec_label=spec.label(),
        clients=clients,
        fault_time_ms=injector.fault_time_ms,
        fault_disk=injector.fault_disk,
        transitions=list(lifecycle.transitions),
        complete=lifecycle.complete,
        rebuild_duration_ms=(
            recon.duration_ms
            if recon is not None and recon.finished_ms is not None
            else None
        ),
        rebuild_steps=0 if recon is None else recon.steps_completed,
        rebuild_total_steps=0 if recon is None else recon.total_steps,
        rebuild_fraction=0.0 if recon is None else recon.fraction_complete,
        samples=totals["samples"],
        by_mode=by_mode,
        progress=progress,
        instrumentation=controller.instrumentation_record(
            include_timelines=record_timelines
        ),
        oracle=(
            None
            if oracle_model is None
            else oracle_model.verify(failed_disk=controller.failed_disk)
        ),
    )
