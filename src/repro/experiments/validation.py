"""Analytic-vs-simulated validation harness.

Runs the same quantities through both halves of the library — the exact
plan-based analytics and the event-driven simulator — and reports the
relative error.  The paper leans on one such cross-check (Figure 4's
non-local seeks vs Figure 3's working sets); this driver extends it to
operation counts and degraded-mode inflation, making simulator drift a
test failure rather than a latent bug.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.array.controller import ArrayController
from repro.array.raidops import ArrayMode
from repro.core.analysis import degraded_read_inflation
from repro.experiments.config import paper_layout
from repro.sim.engine import make_engine
from repro.stats.seekcount import seek_mix_per_access
from repro.stats.workingset import average_operation_count, average_working_set
from repro.workload.client import ClosedLoopClient
from repro.workload.generators import UniformGenerator
from repro.workload.spec import AccessSpec


@dataclass(frozen=True)
class ValidationRow:
    """One analytic-vs-simulated comparison."""

    quantity: str
    layout: str
    analytic: float
    simulated: float

    @property
    def relative_error(self) -> float:
        if self.analytic == 0:
            return abs(self.simulated)
        return abs(self.simulated - self.analytic) / abs(self.analytic)


def _simulate(
    layout_name: str,
    spec: AccessSpec,
    samples: int,
    mode: ArrayMode = ArrayMode.FAULT_FREE,
    clients: int = 6,
    seed: int = 0,
):
    engine = make_engine()
    controller = ArrayController(
        engine, paper_layout(layout_name), coalesce=False
    )
    if mode is not ArrayMode.FAULT_FREE:
        controller.fail_disk(0)
        if mode is ArrayMode.POST_RECONSTRUCTION:
            controller.finish_reconstruction()
    count = {"n": 0}

    def on_response(client, access, ms):
        count["n"] += 1
        if count["n"] == samples:
            engine.stop()
        return count["n"] < samples

    units = spec.units()
    for c in range(clients):
        gen = UniformGenerator(
            controller.addressable_data_units, units,
            random.Random(f"{seed}/{c}"),
        )
        ClosedLoopClient(c, controller, gen, spec, on_response).start()
    engine.run()
    return controller


def validation_rows(samples: int = 250) -> List[ValidationRow]:
    """Compute the full validation table."""
    rows: List[ValidationRow] = []
    for name, size_kb in [("pddl", 96), ("datum", 96), ("raid5", 192)]:
        layout = paper_layout(name)
        controller = _simulate(name, AccessSpec(size_kb, False), samples)
        mix = seek_mix_per_access(
            controller.disk_stats(), controller.completed_accesses
        )
        rows.append(
            ValidationRow(
                quantity=f"working set / non-local seeks ({size_kb}KB read)",
                layout=name,
                analytic=average_working_set(layout, size_kb // 8, False),
                simulated=mix.non_local,
            )
        )
        rows.append(
            ValidationRow(
                quantity=f"ops per access ({size_kb}KB read)",
                layout=name,
                analytic=average_operation_count(
                    layout, size_kb // 8, False
                ),
                simulated=mix.total,
            )
        )

    for name in ("pddl", "prime"):
        layout = paper_layout(name)
        controller = _simulate(
            name, AccessSpec(8, False), samples, mode=ArrayMode.DEGRADED
        )
        mix = seek_mix_per_access(
            controller.disk_stats(), controller.completed_accesses
        )
        rows.append(
            ValidationRow(
                quantity="degraded read inflation (8KB read)",
                layout=name,
                analytic=degraded_read_inflation(layout),
                simulated=mix.total,
            )
        )

    for name, m in [("pddl", 2), ("raid5", 6)]:
        layout = paper_layout(name)
        controller = _simulate(
            name, AccessSpec(m * 8, True), samples
        )
        mix = seek_mix_per_access(
            controller.disk_stats(), controller.completed_accesses
        )
        rows.append(
            ValidationRow(
                quantity=f"ops per access ({m * 8}KB write)",
                layout=name,
                analytic=average_operation_count(layout, m, True),
                simulated=mix.total,
            )
        )
    return rows
