"""The paper's simulation parameters (Table 2), as code.

Array: 13 disks; stripe width 4 for the declustered layouts, 13 for RAID-5;
8 KB stripe units; HP 2247 drives; SSTF on a 20-request queue.  Workloads:
fixed-size aligned accesses, uniform over all data, 1-25 closed-loop
clients.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.layouts.base import Layout
from repro.layouts.registry import make_layout

PAPER_DISKS = 13
PAPER_STRIPE_WIDTH = 4           # PRIME / Parity Declustering / PDDL / DATUM
PAPER_STRIPE_UNIT_KB = 8
PAPER_SCHEDULER = "sstf"
PAPER_SCHEDULER_WINDOW = 20

#: The five schemes of the evaluation, in the figures' legend order.
PAPER_LAYOUT_NAMES = (
    "datum",
    "parity-declustering",
    "raid5",
    "pddl",
    "prime",
)


def layout_for(
    name: str,
    disks: Optional[int] = None,
    width: Optional[int] = None,
) -> Layout:
    """A layout at the paper's configuration with optional n/k overrides.

    ``width=None`` follows Table 2: RAID-5 stripes across the whole
    array, the declustered layouts use the paper's stripe width.
    """
    n = PAPER_DISKS if disks is None else disks
    if width is None:
        k = n if name in ("raid5", "raid-5") else PAPER_STRIPE_WIDTH
    else:
        k = width
    return make_layout(name, n, k)


def paper_layout(name: str) -> Layout:
    """One evaluation layout at its Table 2 configuration."""
    return layout_for(name)


def paper_layouts(names: Optional[tuple] = None) -> Dict[str, Layout]:
    """All (or a subset of) the evaluation layouts, keyed by registry name.

    >>> sorted(paper_layouts())
    ['datum', 'parity-declustering', 'pddl', 'prime', 'raid5']
    """
    return {
        name: paper_layout(name)
        for name in (names or PAPER_LAYOUT_NAMES)
    }
