"""Experiment drivers — one per table/figure of the paper.

Each driver builds its configuration from :mod:`~repro.experiments.config`
(the paper's Table 2), runs the analytic tool or the simulator, and returns
plain data structures that the benchmark harness renders via
:mod:`~repro.experiments.report`.
"""

from repro.experiments.config import (
    PAPER_DISKS,
    PAPER_STRIPE_UNIT_KB,
    PAPER_STRIPE_WIDTH,
    paper_layout,
    paper_layouts,
)
from repro.experiments.response import (
    ResponseCurve,
    ResponsePoint,
    run_response_curve,
    run_response_point,
)
from repro.experiments.seeks import run_seek_mix
from repro.experiments.workingset import figure3_table

__all__ = [
    "PAPER_DISKS",
    "PAPER_STRIPE_UNIT_KB",
    "PAPER_STRIPE_WIDTH",
    "ResponseCurve",
    "ResponsePoint",
    "figure3_table",
    "paper_layout",
    "paper_layouts",
    "run_response_curve",
    "run_response_point",
    "run_seek_mix",
]
