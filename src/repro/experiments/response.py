"""Response-time experiments (Figures 5, 6, 8-14, 18).

One *point* is (layout, access spec, client count, array mode): closed-loop
clients drive the simulated array until the stopping rule fires (or the
bounded default sample count is reached), and the result is the paper's
(x, y) pair — measured throughput in accesses/second against mean response
time in milliseconds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.array.controller import ArrayController
from repro.array.raidops import ArrayMode
from repro.errors import ConfigurationError
from repro.experiments.config import (
    PAPER_SCHEDULER,
    PAPER_SCHEDULER_WINDOW,
    PAPER_STRIPE_UNIT_KB,
    layout_for,
)
from repro.sim.engine import make_engine
from repro.sim.instrument import TraceRecorder
from repro.stats.confidence import StoppingRule
from repro.stats.histogram import LatencyHistogram
from repro.stats.seekcount import SeekMix, seek_mix_per_access
from repro.workload.client import ClosedLoopClient
from repro.workload.generators import UniformGenerator
from repro.workload.spec import AccessSpec


@dataclass(frozen=True)
class ResponsePoint:
    """One measured (workload, response time) point."""

    layout: str
    spec_label: str
    clients: int
    mode: str
    mean_response_ms: float
    throughput_per_s: float
    samples: int
    converged: bool
    seek_mix: SeekMix

    def as_row(self) -> str:
        return (
            f"{self.layout:22s} {self.spec_label:14s} c={self.clients:<3d}"
            f" {self.mode:18s} {self.throughput_per_s:8.2f}/s"
            f" {self.mean_response_ms:9.2f} ms  (n={self.samples})"
        )


@dataclass(frozen=True)
class ResponseCurve:
    """Response time vs offered workload for one layout/spec/mode."""

    layout: str
    spec_label: str
    mode: str
    points: List[ResponsePoint]


@dataclass(frozen=True)
class InstrumentedPoint:
    """A :class:`ResponsePoint` plus the run's raw observables."""

    point: ResponsePoint
    histogram: LatencyHistogram
    instrumentation: dict


def run_response_point_instrumented(
    layout_name: str,
    spec: AccessSpec,
    clients: int,
    mode: ArrayMode = ArrayMode.FAULT_FREE,
    failed_disk: int = 0,
    seed: int = 0,
    max_samples: int = 600,
    rel_precision: float = 0.02,
    warmup: int = 50,
    use_stopping_rule: bool = True,
    coalesce: bool = True,
    disks: Optional[int] = None,
    width: Optional[int] = None,
    record_timelines: bool = False,
    trace: Optional[TraceRecorder] = None,
) -> InstrumentedPoint:
    """Simulate one experiment point, keeping the run's observables.

    ``max_samples`` bounds the run; set it high and keep
    ``use_stopping_rule`` to reproduce the paper's 2%-at-95% run-length
    policy exactly.  Every completed response (warmup included) lands in
    the returned latency histogram; the instrumentation record carries
    engine counters, per-disk busy time and queue-depth high-water marks
    (plus full timelines when ``record_timelines`` is set).
    """
    if clients < 1:
        raise ConfigurationError(f"need >= 1 client, got {clients}")
    engine = make_engine()
    layout = layout_for(layout_name, disks=disks, width=width)
    controller = ArrayController(
        engine,
        layout,
        scheduler_name=PAPER_SCHEDULER,
        scheduler_window=PAPER_SCHEDULER_WINDOW,
        stripe_unit_kb=PAPER_STRIPE_UNIT_KB,
        coalesce=coalesce,
        record_timelines=record_timelines,
    )
    if trace is not None:
        controller.attach_trace(trace)
    if mode is not ArrayMode.FAULT_FREE:
        controller.fail_disk(failed_disk)
        if mode is ArrayMode.POST_RECONSTRUCTION:
            controller.finish_reconstruction()

    rule = StoppingRule(
        rel_precision=rel_precision,
        warmup=warmup,
        min_samples=min(200, max_samples),
        max_samples=max_samples,
        check_interval=25,
    )
    histogram = LatencyHistogram()
    measurement_started = {"t": 0.0, "n0": 0}

    def on_response(client, access, response_ms) -> bool:
        histogram.record(response_ms)
        if rule.samples == 0 and rule.warmup_done:
            measurement_started["t"] = engine.now
            measurement_started["n0"] = controller.completed_accesses
        if use_stopping_rule or rule.samples < max_samples:
            if rule.offer(response_ms):
                engine.stop()
                return False
        return True

    units = spec.units(PAPER_STRIPE_UNIT_KB)
    for c in range(clients):
        generator = UniformGenerator(
            controller.addressable_data_units,
            units,
            random.Random(f"{seed}/client-{c}"),
        )
        ClosedLoopClient(
            c, controller, generator, spec, on_response,
            stripe_unit_kb=PAPER_STRIPE_UNIT_KB,
        ).start()
    engine.run()

    stats = rule.stats
    elapsed_ms = engine.now - measurement_started["t"]
    completed = controller.completed_accesses - measurement_started["n0"]
    throughput = completed / elapsed_ms * 1000.0 if elapsed_ms > 0 else 0.0
    point = ResponsePoint(
        layout=layout_name,
        spec_label=spec.label(),
        clients=clients,
        mode=mode.value,
        mean_response_ms=stats.mean,
        throughput_per_s=throughput,
        samples=stats.count,
        converged=rule.converged,
        seek_mix=seek_mix_per_access(
            controller.disk_stats(), max(1, controller.completed_accesses)
        ),
    )
    return InstrumentedPoint(
        point=point,
        histogram=histogram,
        instrumentation=controller.instrumentation_record(
            include_timelines=record_timelines
        ),
    )


def run_response_point(
    layout_name: str,
    spec: AccessSpec,
    clients: int,
    mode: ArrayMode = ArrayMode.FAULT_FREE,
    **kwargs,
) -> ResponsePoint:
    """Simulate one experiment point (see the instrumented variant)."""
    return run_response_point_instrumented(
        layout_name, spec, clients, mode=mode, **kwargs
    ).point


def run_response_curve(
    layout_name: str,
    spec: AccessSpec,
    client_counts: Sequence[int],
    mode: ArrayMode = ArrayMode.FAULT_FREE,
    **kwargs,
) -> ResponseCurve:
    """One figure curve: sweep the closed-loop population."""
    points = [
        run_response_point(layout_name, spec, clients, mode=mode, **kwargs)
        for clients in client_counts
    ]
    return ResponseCurve(
        layout=layout_name,
        spec_label=spec.label(),
        mode=mode.value,
        points=points,
    )


def run_figure(
    layout_names: Sequence[str],
    spec: AccessSpec,
    client_counts: Sequence[int],
    mode: ArrayMode = ArrayMode.FAULT_FREE,
    **kwargs,
) -> Dict[str, ResponseCurve]:
    """All of one figure panel's curves, keyed by layout name."""
    return {
        name: run_response_curve(
            name, spec, client_counts, mode=mode, **kwargs
        )
        for name in layout_names
    }
