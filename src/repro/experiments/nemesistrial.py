"""Nemesis trials: composed faults under the integrity oracle.

One trial drives a full array lifetime through a
:class:`~repro.faults.nemesis.NemesisSchedule` — whole-disk failures,
controller crashes, LSE bursts, transient I/O storms, and scrub-off
windows, in any drawn composition — while closed-loop clients write and
the :class:`~repro.faults.oracle.IntegrityOracle` shadows every access.
Outcomes:

``survived``
    Every applied fault was absorbed; the array ends fault-free or
    post-reconstruction with the schedule exhausted.
``data_loss``
    The array lost data *and said so* — a second failure sharing a
    stripe, an unreadable sector ambushing a rebuild, or a write hole
    confirmed at resync.  Legitimate: the failure model allows it.
``silent_corruption``
    The oracle counted at least one corruption event.  This is the hard
    failure the whole harness exists to catch — no schedule, however
    adversarial, may produce it.

Dynamic legality (the YDB nemesis pattern): events are applied through
an :class:`~repro.faults.nemesis.ActiveFaultTracker`; an event that is
illegal in the world earlier faults created — a failure landing during
crash recovery, anything after terminal data loss — is skipped with a
recorded reason, so the trial record shows exactly which faults ran.

Crash recovery composes the PR 4/5 machinery: torn writes feed a
journal-guided (or full-sweep) resync, an interrupted rebuild resumes
from its surviving frontier
(:meth:`~repro.faults.lifecycle.ArrayLifecycle.resume_after_crash`), a
stalled scrubber is replaced by a fresh generation, and a new client
cohort takes over from the stalled one.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.array.controller import ArrayController
from repro.array.journal import StripeJournal
from repro.array.raidops import ArrayMode
from repro.array.resync import Resynchronizer
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.config import (
    PAPER_SCHEDULER,
    PAPER_SCHEDULER_WINDOW,
    PAPER_STRIPE_UNIT_KB,
    layout_for,
)
from repro.experiments.iorecovery import aggregate_io_recovery
from repro.faults.corruption import CorruptionModel
from repro.faults.failslow import FailSlowModel
from repro.faults.lifecycle import ArrayLifecycle
from repro.faults.media import MediaErrorMap
from repro.faults.nemesis import ActiveFaultTracker, NemesisSchedule
from repro.faults.oracle import IntegrityOracle
from repro.faults.scenario import FaultScenario
from repro.faults.scrubber import SCRUB_ID_BASE, Scrubber, aggregate_scrub
from repro.sim.engine import make_engine
from repro.workload.client import ClosedLoopClient
from repro.workload.generators import UniformGenerator
from repro.workload.spec import AccessSpec

#: Scrubber generations (fresh instance after each crash / scrub-off
#: window) each get their own access-id block inside the scrub space.
_SCRUB_GENERATION_STRIDE = 1 << 20


def run_nemesis_trial(
    layout_name: str,
    schedule: NemesisSchedule,
    trial: int = 0,
    seed: int = 0,
    clients: int = 2,
    size_kb: int = 8,
    is_write: bool = True,
    disks: int = 13,
    width: Optional[int] = None,
    rows: int = 26,
    degraded_dwell_ms: float = 1500.0,
    rebuild_parallel: int = 1,
    journal: bool = True,
    journal_latency_ms: float = 0.05,
    scrub_interval_ms: Optional[float] = 400.0,
    scrub_throttle_ms: float = 0.0,
    restart_delay_ms: float = 10.0,
    max_samples: int = 240,
    transient_io_rate: float = 0.0,
    lse_per_gb: float = 0.0,
    checksums: bool = False,
    layout=None,
) -> dict:
    """One composed-fault lifetime (see module docstring).

    Pure function of its arguments: the schedule is already drawn, every
    RNG here is a named stream, and the event loop is deterministic —
    trials plug into the runner's byte-determinism contract.  ``layout``
    accepts a pre-built shared layout from a batch executor (layouts are
    immutable mappings, so sharing cannot change the record).
    """
    if clients < 0:
        raise ConfigurationError(f"negative client count {clients}")
    if restart_delay_ms < 0:
        raise ConfigurationError(
            f"negative restart delay {restart_delay_ms}"
        )
    engine = make_engine()
    if layout is None:
        layout = layout_for(layout_name, disks=disks, width=width)
    schedule.validate(layout.n, rows)
    controller = ArrayController(
        engine,
        layout,
        scheduler_name=PAPER_SCHEDULER,
        scheduler_window=PAPER_SCHEDULER_WINDOW,
        stripe_unit_kb=PAPER_STRIPE_UNIT_KB,
    )
    oracle_model = controller.attach_oracle(IntegrityOracle(layout))
    journal_log = (
        controller.attach_journal(StripeJournal(journal_latency_ms))
        if journal
        else None
    )
    if checksums:
        controller.enable_checksums()
    #: Per-trial stream root for fault machinery (storms, ambient LSEs);
    #: mirrors CampaignTrialSpec.fault_seed so trials are independent.
    fault_seed = seed * 1_000_003 + trial
    if transient_io_rate > 0:
        controller.enable_transient_errors(
            transient_io_rate, f"{fault_seed}/ambient-0"
        )
    media = (
        MediaErrorMap.from_rate(
            layout.n, rows, PAPER_STRIPE_UNIT_KB, lse_per_gb,
            seed=fault_seed,
        )
        if lse_per_gb > 0
        # Always constructed: LSE bursts and the scrubber need a map
        # even when nothing is seeded up front.
        else MediaErrorMap({})
    )

    # The scenario carries the lifecycle's repair knobs; its fault list
    # is never armed — the schedule below injects failures itself.
    first_failure = next(
        (e for e in schedule.events if e.kind == "disk-failure"), None
    )
    scenario = FaultScenario(
        failed_disk=first_failure.disk if first_failure is not None else 0,
        fault_time_ms=(
            first_failure.time_ms if first_failure is not None else 0.0
        ),
        degraded_dwell_ms=degraded_dwell_ms,
        rebuild_rows=rows,
        rebuild_parallel=rebuild_parallel,
    )

    tracker = ActiveFaultTracker()
    done: dict = {"classification": None}
    events_log: List[dict] = []
    state: dict = {
        "cohort": 0,
        "storms": 0,
        "failslow": 0,
        "corruption_bursts": 0,
        "crashes": [],
        "resyncs": [],
        "failure_tokens": [],
    }
    scrub_state: dict = {
        "scrubber": None,
        "generation": 0,
        "off_windows": 0,
        "passes_completed": 0,
        "cells_read": 0,
        "found": 0,
        "repaired": 0,
        "stripes_audited": 0,
        "audit_mismatches": 0,
        "audit_repairs": 0,
        "audit_unrepairable": 0,
    }
    #: Created lazily by the first applied corruption-burst, so trials
    #: whose schedules drew none stay byte-identical to older records.
    corr_state: dict = {"model": None}

    def ensure_corruption() -> CorruptionModel:
        model = corr_state["model"]
        if model is None:
            model = CorruptionModel(
                layout.n, rows, seed=f"{fault_seed}/corruption"
            )
            controller.attach_corruption(model)
            corr_state["model"] = model
        return model
    samples = {"count": 0}
    heal_timers: dict = {}
    heal_seq = {"next": 0}

    # ------------------------------------------------------------------
    # Heal timers: storm ends and scrub-off ends must survive a crash's
    # clear_pending(), so they live in a registry and re-arm on restart.
    # ------------------------------------------------------------------

    def _arm_heal(key: int) -> None:
        at_ms, fn = heal_timers[key]

        def fire() -> None:
            if heal_timers.pop(key, None) is None:
                return
            fn()

        engine.schedule_at(max(at_ms, engine.now), fire)

    def schedule_heal(at_ms: float, fn) -> None:
        key = heal_seq["next"]
        heal_seq["next"] += 1
        heal_timers[key] = (at_ms, fn)
        _arm_heal(key)

    def rearm_heals() -> None:
        for key in sorted(heal_timers):
            _arm_heal(key)

    # ------------------------------------------------------------------
    # Scrubber generations.
    # ------------------------------------------------------------------

    def stop_scrubber() -> None:
        scrubber = scrub_state["scrubber"]
        if scrubber is None:
            return
        for field in ("passes_completed", "cells_read", "found", "repaired"):
            scrub_state[field] += getattr(scrubber, field)
        if scrubber.audit:
            for field in (
                "stripes_audited",
                "audit_mismatches",
                "audit_repairs",
                "audit_unrepairable",
            ):
                scrub_state[field] += getattr(scrubber, field)
        scrubber.stop()
        scrub_state["scrubber"] = None

    def ensure_scrubber() -> None:
        """(Re)start scrubbing unless something forbids it right now."""
        if scrub_interval_ms is None or done["classification"] is not None:
            return
        if controller.mode is ArrayMode.DATA_LOSS:
            return
        if tracker.is_active("scrub-off") or tracker.is_active("crash"):
            return
        stop_scrubber()  # a crash-stalled instance never wakes; replace it
        generation = scrub_state["generation"]
        scrub_state["generation"] = generation + 1
        scrubber = Scrubber(
            controller,
            media,
            interval_ms=scrub_interval_ms,
            throttle_ms=scrub_throttle_ms,
            rows=rows,
            id_base=SCRUB_ID_BASE + generation * _SCRUB_GENERATION_STRIDE,
            audit=checksums,
        )
        scrub_state["scrubber"] = scrubber
        scrubber.start()

    # ------------------------------------------------------------------
    # Trial termination.
    # ------------------------------------------------------------------

    def finish(classification: str) -> None:
        if done["classification"] is not None:
            return
        done["classification"] = classification
        stop_scrubber()
        engine.stop()

    def maybe_finish() -> None:
        if done["classification"] is not None:
            return
        if progress["idx"] < len(schedule.events):
            return
        if tracker.is_active("crash"):
            return
        if controller.mode in (
            ArrayMode.FAULT_FREE,
            ArrayMode.POST_RECONSTRUCTION,
        ):
            finish("survived")

    def on_transition(mode: ArrayMode, now_ms: float) -> None:
        if mode is ArrayMode.DATA_LOSS:
            finish("data_loss")
        elif mode is ArrayMode.POST_RECONSTRUCTION:
            # The rebuild absorbed every applied whole-disk failure.
            for token in state["failure_tokens"]:
                tracker.heal(token, now_ms)
            state["failure_tokens"] = []
            maybe_finish()

    lifecycle = ArrayLifecycle(
        controller, scenario, media=media, on_transition=on_transition
    )

    # ------------------------------------------------------------------
    # Client cohorts (a crash stalls the live cohort; a fresh one takes
    # over once resync completes).
    # ------------------------------------------------------------------

    periods_swept = max(1, rows // layout.period)
    write_units = periods_swept * layout.data_units_per_period
    if write_units > controller.addressable_data_units:
        write_units = controller.addressable_data_units
    access_spec = AccessSpec(size_kb=size_kb, is_write=is_write)
    units = access_spec.units(PAPER_STRIPE_UNIT_KB)

    def on_response(client, access, response_ms) -> bool:
        samples["count"] += 1
        return (
            samples["count"] < max_samples
            and done["classification"] is None
        )

    def start_cohort() -> None:
        if clients < 1 or done["classification"] is not None:
            return
        if samples["count"] >= max_samples:
            return
        if controller.mode is ArrayMode.DATA_LOSS:
            return
        cohort = state["cohort"]
        state["cohort"] = cohort + 1
        for c in range(clients):
            client_id = cohort * clients + c
            generator = UniformGenerator(
                write_units,
                units,
                random.Random(f"{seed}/nemesis-client-{client_id}"),
            )
            ClosedLoopClient(
                client_id, controller, generator, access_spec, on_response,
                stripe_unit_kb=PAPER_STRIPE_UNIT_KB,
            ).start()

    # ------------------------------------------------------------------
    # Event application (dynamic legality lives here).
    # ------------------------------------------------------------------

    def log_applied(event) -> None:
        events_log.append({**event.to_dict(), "outcome": "applied"})

    def log_skipped(event, reason: str) -> None:
        events_log.append(
            {**event.to_dict(), "outcome": "skipped", "reason": reason}
        )

    def apply_disk_failure(event) -> None:
        if controller.mode is ArrayMode.DATA_LOSS:
            log_skipped(event, "data-loss")
            return
        if tracker.is_active("crash"):
            log_skipped(event, "crash-recovery")
            return
        if controller.servers[event.disk].failed:
            log_skipped(event, "disk-already-failed")
            return
        log_applied(event)
        state["failure_tokens"].append(
            tracker.begin(
                "disk-failure", engine.now, detail=f"disk {event.disk}"
            )
        )
        lifecycle.inject_failure(event.disk)

    def apply_lse_burst(event) -> None:
        if controller.mode is ArrayMode.DATA_LOSS:
            log_skipped(event, "data-loss")
            return
        log_applied(event)
        for disk, offset in event.cells:
            media.inject(disk, offset)
        tracker.record(
            "lse-burst", engine.now, detail=f"{len(event.cells)} cell(s)"
        )

    def apply_storm(event) -> None:
        if controller.mode is ArrayMode.DATA_LOSS:
            log_skipped(event, "data-loss")
            return
        if tracker.is_active("transient-storm"):
            log_skipped(event, "storm-active")
            return
        log_applied(event)
        index = state["storms"]
        state["storms"] = index + 1
        controller.enable_transient_errors(
            event.rate, f"{fault_seed}/storm-{index}"
        )
        token = tracker.begin(
            "transient-storm", engine.now, detail=f"rate {event.rate}"
        )

        def end_storm() -> None:
            controller.disable_transient_errors()
            if transient_io_rate > 0:
                controller.enable_transient_errors(
                    transient_io_rate, f"{fault_seed}/ambient-{index + 1}"
                )
            tracker.heal(token, engine.now)

        schedule_heal(event.time_ms + event.duration_ms, end_storm)

    def apply_scrub_off(event) -> None:
        if scrub_interval_ms is None:
            log_skipped(event, "no-scrubber")
            return
        if controller.mode is ArrayMode.DATA_LOSS:
            log_skipped(event, "data-loss")
            return
        if tracker.is_active("scrub-off"):
            log_skipped(event, "window-active")
            return
        log_applied(event)
        scrub_state["off_windows"] += 1
        stop_scrubber()
        token = tracker.begin("scrub-off", engine.now)

        def scrub_on() -> None:
            tracker.heal(token, engine.now)
            ensure_scrubber()

        schedule_heal(event.time_ms + event.duration_ms, scrub_on)

    def apply_crash(event) -> None:
        if controller.mode is ArrayMode.DATA_LOSS:
            log_skipped(event, "data-loss")
            return
        if tracker.is_active("crash"):
            log_skipped(event, "crash-active")
            return
        log_applied(event)
        token = tracker.begin("crash", engine.now)
        # The frontier survives the crash inside the (now idle) sweep
        # object; capture it before recovery replaces the reconstructor.
        recon = lifecycle.reconstructor
        dropped = engine.clear_pending()
        torn = controller.crash()
        state["crashes"].append(
            {
                "time_ms": engine.now,
                "torn_accesses": torn["accesses"],
                "torn_stripes": len(torn["stripes"]),
                "dropped_events": dropped,
            }
        )
        # clear_pending() killed the heal timers along with everything
        # else; NVRAM-like bookkeeping re-arms on the restart path.
        rearm_heals()

        def resync_done(duration_ms: float) -> None:
            resync = state["resync"]
            state["resyncs"].append(
                {"crashed_at_ms": event.time_ms, **resync.to_dict()}
            )
            tracker.heal(token, engine.now)
            lifecycle.resume_after_crash()
            ensure_scrubber()
            start_cohort()
            maybe_finish()

        def restart() -> None:
            rebuilt = None
            if (
                controller.mode is ArrayMode.RECONSTRUCTION
                and recon is not None
            ):
                rebuilt = recon.is_rebuilt
            resync = Resynchronizer(
                controller,
                journal=journal_log,
                suspect=set(torn["stripes"]),
                rows=rows,
                on_finished=resync_done,
                rebuilt=rebuilt,
            )
            state["resync"] = resync
            resync.start()
            if resync.aborted:
                # The write hole ate data: resync declared the loss
                # synchronously and the recovery never completes.
                state["resyncs"].append(
                    {"crashed_at_ms": event.time_ms, **resync.to_dict()}
                )
                finish("data_loss")

        engine.schedule(restart_delay_ms, restart)

    def apply_failslow(event) -> None:
        if controller.mode is ArrayMode.DATA_LOSS:
            log_skipped(event, "data-loss")
            return
        if controller.servers[event.disk].failed:
            log_skipped(event, "disk-failed")
            return
        drive = controller.servers[event.disk].drive
        if drive.fail_slow is not None:
            log_skipped(event, "failslow-active")
            return
        log_applied(event)
        state["failslow"] += 1
        # Constant profile from now; the heal timer detaches the model
        # (and survives a crash's clear_pending via the registry).
        drive.fail_slow = FailSlowModel(
            event.multiplier, onset_ms=engine.now
        )
        token = tracker.begin(
            "failslow",
            engine.now,
            detail=f"disk {event.disk} x{event.multiplier:g}",
        )

        def heal_failslow() -> None:
            drive.fail_slow = None
            tracker.heal(token, engine.now)

        schedule_heal(event.time_ms + event.duration_ms, heal_failslow)

    def apply_corruption_burst(event) -> None:
        if controller.mode is ArrayMode.DATA_LOSS:
            log_skipped(event, "data-loss")
            return
        if controller.servers[event.disk].failed:
            log_skipped(event, "disk-failed")
            return
        model = corr_state["model"]
        if model is not None and model.burst_active(event.disk):
            log_skipped(event, "burst-active")
            return
        log_applied(event)
        state["corruption_bursts"] += 1
        model = ensure_corruption()
        model.begin_burst(event.disk, event.rate, event.rate * 0.5)
        token = tracker.begin(
            "corruption-burst",
            engine.now,
            detail=f"disk {event.disk} rate {event.rate:g}",
        )

        def heal_burst() -> None:
            # The drive returns to honesty; cells it already corrupted
            # stay corrupt until a clean write or audit repair clears
            # them.
            model.end_burst(event.disk)
            tracker.heal(token, engine.now)

        schedule_heal(event.time_ms + event.duration_ms, heal_burst)

    _APPLIERS = {
        "disk-failure": apply_disk_failure,
        "crash": apply_crash,
        "lse-burst": apply_lse_burst,
        "transient-storm": apply_storm,
        "scrub-off": apply_scrub_off,
        "failslow": apply_failslow,
        "corruption-burst": apply_corruption_burst,
    }

    # ------------------------------------------------------------------
    # The event pump: exactly one schedule event is armed at a time, so
    # a crash's clear_pending() never eats a future fault.
    # ------------------------------------------------------------------

    progress = {"idx": 0}

    def fire_event() -> None:
        event = schedule.events[progress["idx"]]
        progress["idx"] += 1
        _APPLIERS[event.kind](event)
        schedule_next_event()
        maybe_finish()

    def schedule_next_event() -> None:
        if progress["idx"] >= len(schedule.events):
            return
        event = schedule.events[progress["idx"]]
        engine.schedule_at(max(event.time_ms, engine.now), fire_event)

    schedule_next_event()
    ensure_scrubber()
    start_cohort()

    engine.run()

    if done["classification"] is None:
        raise SimulationError(
            "nemesis trial drained unclassified in mode"
            f" {controller.mode.value}"
        )

    verification = oracle_model.verify(failed_disk=controller.failed_disk)
    classification = done["classification"]
    if verification["corruption_events"] > 0:
        classification = "silent_corruption"

    stop_scrubber()  # fold any final generation into the accumulators
    recon = lifecycle.reconstructor
    record = {
        "layout": layout_name,
        "disks": layout.n,
        "trial": trial,
        "seed": seed,
        "schedule": schedule.to_dict(),
        "schedule_hash": schedule.content_hash(),
        "classification": classification,
        "loss_reason": controller.data_loss_reason,
        "events": events_log,
        "faults": tracker.to_dict(),
        "transitions": [list(t) for t in lifecycle.transitions],
        "second_faults": list(lifecycle.second_faults),
        "lost_units": lifecycle.lost_units,
        "write_hole_stripes": sum(
            len(r["data_lost_stripes"]) for r in state["resyncs"]
        ),
        "crashes": state["crashes"],
        "resyncs": state["resyncs"],
        "completed_rebuild": lifecycle.complete,
        "rebuild": {
            "duration_ms": (
                recon.duration_ms
                if recon is not None and recon.finished_ms is not None
                else None
            ),
            "steps_completed": 0 if recon is None else recon.steps_completed,
            "total_steps": 0 if recon is None else recon.total_steps,
        },
        "media": media.to_dict(),
        "scrub": (
            None
            if scrub_interval_ms is None
            else {
                "generations": scrub_state["generation"],
                "off_windows": scrub_state["off_windows"],
                "passes_completed": scrub_state["passes_completed"],
                "cells_read": scrub_state["cells_read"],
                "found": scrub_state["found"],
                "repaired": scrub_state["repaired"],
            }
        ),
        "samples": samples["count"],
        "oracle": verification,
        "instrumentation": controller.instrumentation_record(),
    }
    if checksums and record["scrub"] is not None:
        record["scrub"].update(
            {
                field: scrub_state[field]
                for field in (
                    "stripes_audited",
                    "audit_mismatches",
                    "audit_repairs",
                    "audit_unrepairable",
                )
            }
        )
    if transient_io_rate > 0 or state["storms"] > 0:
        record["io_recovery"] = controller.io_stats.to_dict()
    if state["failslow"] > 0:
        record["failslow_windows"] = state["failslow"]
    if state["corruption_bursts"] > 0:
        record["corruption_bursts"] = state["corruption_bursts"]
        model = corr_state["model"]
        if model is not None:
            record["corruption"] = model.report()
    return record


def nemesis_specs(
    layout: str = "pddl",
    trials: int = 200,
    disks: int = 13,
    width: Optional[int] = None,
    seed: int = 0,
    start: int = 0,
    horizon_ms: float = 20000.0,
    max_disk_failures: int = 2,
    max_crashes: int = 2,
    max_lse_bursts: int = 2,
    max_storms: int = 1,
    max_scrub_windows: int = 1,
    storm_rate: float = 0.02,
    clients: int = 2,
    size_kb: int = 8,
    is_write: bool = True,
    rows: int = 26,
    degraded_dwell_ms: float = 1500.0,
    rebuild_parallel: int = 1,
    journal: bool = True,
    journal_latency_ms: float = 0.05,
    scrub_interval_ms: Optional[float] = 400.0,
    scrub_throttle_ms: float = 0.0,
    restart_delay_ms: float = 10.0,
    max_samples: int = 240,
    transient_io_rate: float = 0.0,
    lse_per_gb: float = 0.0,
    max_failslow: int = 0,
    failslow_multiplier: float = 5.0,
    max_corruption_bursts: int = 0,
    corruption_rate: float = 0.05,
    checksums: bool = False,
):
    """One :class:`~repro.runner.spec.NemesisTrialSpec` per trial.

    ``start`` offsets the trial indices — ``repro nemesis --trial N``
    replays exactly trial N of a campaign (same derived schedule seed),
    which is how a failing seed from CI reproduces locally.
    """
    # Local import: repro.runner imports the executor module, which
    # imports this one.
    from repro.runner.spec import NemesisTrialSpec

    if trials < 1:
        raise ConfigurationError(f"need >= 1 trial, got {trials}")
    return [
        NemesisTrialSpec(
            layout=layout,
            disks=disks,
            width=width,
            trial=trial,
            seed=seed,
            horizon_ms=horizon_ms,
            max_disk_failures=max_disk_failures,
            max_crashes=max_crashes,
            max_lse_bursts=max_lse_bursts,
            max_storms=max_storms,
            max_scrub_windows=max_scrub_windows,
            storm_rate=storm_rate,
            clients=clients,
            size_kb=size_kb,
            is_write=is_write,
            rows=rows,
            degraded_dwell_ms=degraded_dwell_ms,
            rebuild_parallel=rebuild_parallel,
            journal=journal,
            journal_latency_ms=journal_latency_ms,
            scrub_interval_ms=scrub_interval_ms,
            scrub_throttle_ms=scrub_throttle_ms,
            restart_delay_ms=restart_delay_ms,
            max_samples=max_samples,
            transient_io_rate=transient_io_rate,
            lse_per_gb=lse_per_gb,
            max_failslow=max_failslow,
            failslow_multiplier=failslow_multiplier,
            max_corruption_bursts=max_corruption_bursts,
            corruption_rate=corruption_rate,
            checksums=checksums,
        )
        for trial in range(start, start + trials)
    ]


def summarize_nemesis(records: List[dict]) -> dict:
    """Outcome counts, fault coverage, and the corruption invariant.

    ``silent_corruption`` must be zero; ``failing_trials`` names the
    trial indices to replay when it is not.
    """
    if not records:
        raise ConfigurationError("no nemesis records to summarize")
    outcomes = {"survived": 0, "data_loss": 0, "silent_corruption": 0}
    applied: dict = {}
    skipped: dict = {}
    skip_reasons: dict = {}
    resync_times: List[float] = []
    for record in records:
        outcomes[record["classification"]] += 1
        for event in record["events"]:
            kind = event["kind"]
            if event["outcome"] == "applied":
                applied[kind] = applied.get(kind, 0) + 1
            else:
                skipped[kind] = skipped.get(kind, 0) + 1
                reason = event["reason"]
                skip_reasons[reason] = skip_reasons.get(reason, 0) + 1
        for resync in record["resyncs"]:
            if resync["duration_ms"] is not None:
                resync_times.append(resync["duration_ms"])
    summary = {
        "trials": len(records),
        "survived": outcomes["survived"],
        "data_loss": outcomes["data_loss"],
        "silent_corruption": outcomes["silent_corruption"],
        "corruption_events": sum(
            r["oracle"]["corruption_events"] for r in records
        ),
        "failing_trials": sorted(
            r["trial"]
            for r in records
            if r["classification"] == "silent_corruption"
        ),
        "events_applied": {k: applied[k] for k in sorted(applied)},
        "events_skipped": {k: skipped[k] for k in sorted(skipped)},
        "skip_reasons": {k: skip_reasons[k] for k in sorted(skip_reasons)},
        "crashes": sum(len(r["crashes"]) for r in records),
        "write_hole_stripes": sum(
            r["write_hole_stripes"] for r in records
        ),
        "mean_resync_ms": (
            sum(resync_times) / len(resync_times) if resync_times else None
        ),
        "completed_rebuilds": sum(
            1 for r in records if r["completed_rebuild"]
        ),
        "lost_units_total": sum(r["lost_units"] for r in records),
        "samples_total": sum(r["samples"] for r in records),
    }
    io_recovery = aggregate_io_recovery(records)
    if io_recovery is not None:
        summary["io_recovery"] = io_recovery
    scrub = aggregate_scrub(records)
    if scrub is not None:
        summary["scrub"] = scrub
    corruption = aggregate_corruption(records)
    if corruption is not None:
        summary["corruption"] = corruption
    return summary


def aggregate_corruption(records: List[dict]) -> Optional[dict]:
    """Sum per-kind corruption ledgers; None when no trial carried one."""
    reports = [r["corruption"] for r in records if r.get("corruption")]
    if not reports:
        return None
    kinds = sorted({k for rep in reports for k in rep["injected"]})
    summary: dict = {
        bucket: {
            kind: sum(rep[bucket].get(kind, 0) for rep in reports)
            for kind in kinds
        }
        for bucket in ("injected", "detected", "silent", "repaired")
    }
    summary["cells_corrupted"] = sum(
        rep["cells_corrupted"] for rep in reports
    )
    summary["remaining"] = sum(rep["remaining"] for rep in reports)
    summary["silent_total"] = sum(rep["silent_total"] for rep in reports)
    summary["detected_total"] = sum(
        rep["detected_total"] for rep in reports
    )
    return summary
