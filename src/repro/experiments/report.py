"""ASCII rendering of experiment results.

Benchmarks and examples print through these helpers so every figure
reproduction emits the same rows/series the paper plots.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.experiments.response import ResponseCurve
from repro.layouts.registry import DISPLAY_NAMES
from repro.stats.seekcount import SeekMix


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width table with a separator rule."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def render_working_set_table(
    table: Mapping[Tuple[str, int, str], float],
    sizes_kb: Sequence[int],
    conditions: Sequence[str] = ("ffread", "ffwrite", "f1read", "f1write"),
) -> str:
    """Figure 3 as rows of (layout, size) x condition."""
    layouts = sorted({key[0] for key in table})
    rows: List[List[object]] = []
    for size in sizes_kb:
        for name in layouts:
            row: List[object] = [f"{size}KB", DISPLAY_NAMES.get(name, name)]
            for cond in conditions:
                row.append(f"{table[(name, size, cond)]:.2f}")
            rows.append(row)
    return render_table(["size", "layout", *conditions], rows)


def render_seek_mix_table(
    mixes: Mapping[Tuple[str, int], SeekMix], sizes_kb: Sequence[int]
) -> str:
    """Figures 4/7/15/16 as one row per (layout, size)."""
    layouts = sorted({key[0] for key in mixes})
    rows = []
    for name in layouts:
        for size in sizes_kb:
            mix = mixes[(name, size)]
            rows.append(
                [
                    DISPLAY_NAMES.get(name, name),
                    f"{size}KB",
                    f"{mix.non_local:.2f}",
                    f"{mix.cylinder_switch:.2f}",
                    f"{mix.track_switch:.2f}",
                    f"{mix.no_switch:.2f}",
                    f"{mix.total:.2f}",
                ]
            )
    return render_table(
        ["layout", "size", "non-local", "cyl-switch", "trk-switch",
         "no-switch", "total"],
        rows,
    )


def render_response_curves(curves: Dict[str, ResponseCurve]) -> str:
    """A figure panel: one series per layout, the paper's (x, y) pairs."""
    rows = []
    for name, curve in curves.items():
        for point in curve.points:
            rows.append(
                [
                    DISPLAY_NAMES.get(name, name),
                    point.spec_label,
                    point.mode,
                    point.clients,
                    f"{point.throughput_per_s:.2f}",
                    f"{point.mean_response_ms:.2f}",
                    point.samples,
                ]
            )
    return render_table(
        ["layout", "workload", "mode", "clients", "accesses/s",
         "response ms", "n"],
        rows,
    )


def render_ascii_chart(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "accesses/sec",
    y_label: str = "response ms",
) -> str:
    """Plot (x, y) series as an ASCII scatter — the paper's figure shape.

    Each series gets a marker (the figures use filled/open shapes; we use
    letters).  Axes are linear and jointly scaled across series.
    """
    points = [
        (x, y) for pts in series.values() for x, y in pts
    ]
    if not points:
        return "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "ABCDEFGHIJ"
    legend = []
    for index, (name, pts) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker}={name}")
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = [f"{y_label}  {y_hi:.0f}"]
    lines.extend("  |" + "".join(row) for row in grid)
    lines.append("  +" + "-" * width)
    lines.append(
        f"   {x_lo:.0f}{' ' * max(1, width - 12)}{x_hi:.0f}  {x_label}"
    )
    lines.append("   " + "  ".join(legend))
    return "\n".join(lines)


def curves_to_series(
    curves: Dict[str, ResponseCurve]
) -> Dict[str, List[Tuple[float, float]]]:
    """Convert response curves into plottable (throughput, response)
    series, keyed by display name."""
    return {
        DISPLAY_NAMES.get(name, name): [
            (p.throughput_per_s, p.mean_response_ms) for p in curve.points
        ]
        for name, curve in curves.items()
    }


def ranking_at_heaviest_load(curves: Dict[str, ResponseCurve]) -> List[str]:
    """Layouts ordered best-to-worst at the largest client count."""
    finals = {
        name: curve.points[-1].mean_response_ms
        for name, curve in curves.items()
    }
    return sorted(finals, key=finals.get)


def ranking_at_lightest_load(curves: Dict[str, ResponseCurve]) -> List[str]:
    """Layouts ordered best-to-worst at one client."""
    firsts = {
        name: curve.points[0].mean_response_ms
        for name, curve in curves.items()
    }
    return sorted(firsts, key=firsts.get)
