"""Figure 3 driver: exact disk working set sizes."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.experiments.config import paper_layouts
from repro.stats.workingset import working_set_table

#: Figure 3's access sizes (KB).
FIGURE3_SIZES_KB = (8, 48, 96, 144, 192, 240)


def figure3_table(
    sizes_kb: Iterable[int] = FIGURE3_SIZES_KB,
    layout_names: Optional[tuple] = None,
) -> Dict[Tuple[str, int, str], float]:
    """(layout, size KB, condition) -> mean disk working set size.

    Conditions are ffread / ffwrite / f1read / f1write; for PDDL, f1 is
    reconstruction mode, as in the figure's caption.
    """
    return working_set_table(paper_layouts(layout_names), sizes_kb)
