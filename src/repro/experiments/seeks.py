"""Seek / no-switch count experiments (Figures 4, 7, 15, 16).

The paper notes these mixes are "almost independent of the workload"; the
driver runs a moderate fixed concurrency and reports the per-access mix.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.array.raidops import ArrayMode
from repro.experiments.response import run_response_point
from repro.stats.seekcount import SeekMix
from repro.workload.spec import AccessSpec


def run_seek_mix(
    layout_names: Iterable[str],
    sizes_kb: Iterable[int],
    is_write: bool,
    mode: ArrayMode = ArrayMode.FAULT_FREE,
    clients: int = 8,
    samples_per_point: int = 250,
    seed: int = 0,
) -> Dict[Tuple[str, int], SeekMix]:
    """(layout, size KB) -> per-access operation mix."""
    out: Dict[Tuple[str, int], SeekMix] = {}
    for name in layout_names:
        for size_kb in sizes_kb:
            point = run_response_point(
                name,
                AccessSpec(size_kb, is_write),
                clients,
                mode=mode,
                seed=seed,
                max_samples=samples_per_point,
                use_stopping_rule=False,
                warmup=0,
                # Figures 4/7/15/16 decompose *per-stripe-unit* operations;
                # disable request merging so the mix matches that granularity.
                coalesce=False,
            )
            out[(name, size_kb)] = point.seek_mix
    return out
