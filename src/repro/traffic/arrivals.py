"""Seeded open-loop arrival processes.

Each process answers one question — "how long until the next request?" —
by drawing from a caller-owned :class:`random.Random`, so arrivals obey
the repository's named-stream discipline (``"{seed}/arrivals"`` and
friends) and every trial is a pure function of its spec: serial and
multi-worker runs stay byte-identical.

Three models, in increasing burstiness:

- :class:`PoissonArrivals` — memoryless constant-rate arrivals, the
  M/G/k baseline every queueing result is stated against;
- :class:`MMPPArrivals` — Markov-modulated Poisson: the rate switches
  between states (>= 2) with exponential dwell times, producing the
  correlated bursts real storage frontends see;
- :class:`TraceArrivals` — a deterministic piecewise-constant rate
  schedule (e.g. a compressed diurnal curve), cycling forever.

The state-switching processes use boundary restarts: a draw that would
cross into the next rate regime is truncated at the boundary and
redrawn at the new rate — exact for exponential inter-arrivals by
memorylessness, no thinning required.
"""

from __future__ import annotations

import abc
import random
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.random import exponential_block_ms, exponential_ms

#: Diurnal rate multipliers (mean 1.0): night trough, morning ramp,
#: midday peak, evening shoulder.  One full cycle spans the schedule's
#: period; offered load averages the nominal rate.
DIURNAL_MULTIPLIERS = (0.35, 0.75, 1.35, 1.9, 1.1, 0.55)


def _rate_to_mean_ms(rate_per_s: float) -> float:
    if rate_per_s <= 0:
        raise ConfigurationError(
            f"arrival rate must be positive, got {rate_per_s}"
        )
    return 1000.0 / rate_per_s


class ArrivalProcess(abc.ABC):
    """Produces successive inter-arrival delays, in ms.

    :meth:`prefetch` lets batch executors pull a block of delays up
    front; delays are buffered and handed out one at a time, so the
    underlying generator consumes exactly the stream a prefetch-free
    run would — block draws are byte-identical to sequential ones.
    """

    def __init__(self, rng: random.Random):
        self.rng = rng
        self._block: List[float] = []
        self._block_next = 0

    def next_delay_ms(self) -> float:
        """Delay from the previous arrival to the next one."""
        i = self._block_next
        if i < len(self._block):
            self._block_next = i + 1
            return self._block[i]
        return self._draw_delay_ms()

    def prefetch(self, count: int) -> None:
        """Buffer delays until ``count`` are pending.

        A no-op when that many are already buffered; never discards a
        buffered delay, so calling this at any point cannot perturb
        the draw sequence.
        """
        if count < 0:
            raise ConfigurationError(f"negative prefetch count {count}")
        pending = self._block[self._block_next :]
        need = count - len(pending)
        if need > 0:
            pending.extend(self._draw_block(need))
        self._block = pending
        self._block_next = 0

    def _draw_block(self, count: int) -> List[float]:
        """``count`` fresh delays; overridable for vectorized draws."""
        return [self._draw_delay_ms() for _ in range(count)]

    @abc.abstractmethod
    def _draw_delay_ms(self) -> float:
        """Draw one fresh delay from the generator."""


class PoissonArrivals(ArrivalProcess):
    """Constant-rate memoryless arrivals.

    >>> p = PoissonArrivals(100.0, random.Random("x"))
    >>> p.next_delay_ms() >= 0.0
    True
    """

    def __init__(self, rate_per_s: float, rng: random.Random):
        super().__init__(rng)
        self.rate_per_s = rate_per_s
        self._mean_ms = _rate_to_mean_ms(rate_per_s)

    def _draw_delay_ms(self) -> float:
        return exponential_ms(self._mean_ms, self.rng)

    def _draw_block(self, count: int) -> List[float]:
        return exponential_block_ms(self._mean_ms, self.rng, count)


class MMPPArrivals(ArrivalProcess):
    """Markov-modulated Poisson arrivals (>= 2 states).

    ``rates_per_s[i]`` is the arrival rate while in state ``i``;
    ``dwells_ms[i]`` the mean (exponential) time spent there before
    cycling to the next state.  :meth:`bursty` builds the canonical
    two-state low/high process from an offered mean rate.
    """

    def __init__(
        self,
        rates_per_s: Sequence[float],
        dwells_ms: Sequence[float],
        rng: random.Random,
    ):
        super().__init__(rng)
        if len(rates_per_s) < 2:
            raise ConfigurationError(
                f"MMPP needs >= 2 states, got {len(rates_per_s)}"
            )
        if len(dwells_ms) != len(rates_per_s):
            raise ConfigurationError(
                f"{len(rates_per_s)} rates but {len(dwells_ms)} dwells"
            )
        for dwell in dwells_ms:
            if dwell <= 0:
                raise ConfigurationError(
                    f"state dwell must be positive, got {dwell}"
                )
        self._means_ms = [_rate_to_mean_ms(r) for r in rates_per_s]
        self.dwells_ms = list(dwells_ms)
        self.state = 0
        self._until_switch = exponential_ms(self.dwells_ms[0], self.rng)

    @classmethod
    def bursty(
        cls,
        rate_per_s: float,
        burst_ratio: float,
        burst_fraction: float,
        dwell_ms: float,
        rng: random.Random,
    ) -> "MMPPArrivals":
        """Two-state low/high process averaging ``rate_per_s``.

        The high state runs ``burst_ratio`` times hotter than the low
        state and holds a ``burst_fraction`` share of time; dwell means
        are chosen so the stationary high-state fraction is exactly
        ``burst_fraction`` with a low-state mean dwell of ``dwell_ms``.
        """
        if burst_ratio < 1:
            raise ConfigurationError(
                f"burst ratio must be >= 1, got {burst_ratio}"
            )
        if not 0 < burst_fraction < 1:
            raise ConfigurationError(
                f"burst fraction must be in (0, 1), got {burst_fraction}"
            )
        low = rate_per_s / (1 - burst_fraction + burst_fraction * burst_ratio)
        high = low * burst_ratio
        high_dwell = dwell_ms * burst_fraction / (1 - burst_fraction)
        return cls([low, high], [dwell_ms, high_dwell], rng)

    def _draw_delay_ms(self) -> float:
        delay = 0.0
        while True:
            gap = exponential_ms(self._means_ms[self.state], self.rng)
            if gap <= self._until_switch:
                self._until_switch -= gap
                return delay + gap
            # The draw crossed a state boundary: advance to it and
            # redraw at the new rate (exact, by memorylessness).
            delay += self._until_switch
            self.state = (self.state + 1) % len(self._means_ms)
            self._until_switch = exponential_ms(
                self.dwells_ms[self.state], self.rng
            )


class TraceArrivals(ArrivalProcess):
    """Piecewise-constant rate schedule, cycling forever.

    ``schedule`` is ``[(duration_ms, rate_per_s), ...]``; arrivals in
    each segment are Poisson at that segment's rate, with boundary
    restarts at segment changes.
    """

    def __init__(
        self,
        schedule: Sequence[Tuple[float, float]],
        rng: random.Random,
    ):
        super().__init__(rng)
        if not schedule:
            raise ConfigurationError("empty trace schedule")
        self._means_ms: List[float] = []
        self._durations: List[float] = []
        for duration_ms, rate_per_s in schedule:
            if duration_ms <= 0:
                raise ConfigurationError(
                    f"segment duration must be positive, got {duration_ms}"
                )
            self._means_ms.append(_rate_to_mean_ms(rate_per_s))
            self._durations.append(duration_ms)
        self.segment = 0
        self._remaining = self._durations[0]

    @classmethod
    def diurnal(
        cls,
        rate_per_s: float,
        period_ms: float,
        rng: random.Random,
    ) -> "TraceArrivals":
        """A compressed day: :data:`DIURNAL_MULTIPLIERS` over ``period_ms``."""
        if period_ms <= 0:
            raise ConfigurationError(
                f"trace period must be positive, got {period_ms}"
            )
        segment_ms = period_ms / len(DIURNAL_MULTIPLIERS)
        return cls(
            [(segment_ms, rate_per_s * m) for m in DIURNAL_MULTIPLIERS],
            rng,
        )

    def _draw_delay_ms(self) -> float:
        delay = 0.0
        while True:
            gap = exponential_ms(self._means_ms[self.segment], self.rng)
            if gap <= self._remaining:
                self._remaining -= gap
                return delay + gap
            delay += self._remaining
            self.segment = (self.segment + 1) % len(self._means_ms)
            self._remaining = self._durations[self.segment]
