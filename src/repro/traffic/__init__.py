"""Open-loop traffic: arrival processes, admission control, SLOs.

The closed-loop clients (:mod:`repro.workload.client`) model Table 2's
"N clients, think time" workload, which caps offered load at N
outstanding accesses and structurally cannot exhibit queueing collapse.
This package replaces "client blocks until completion" with seeded
arrival processes (:mod:`repro.traffic.arrivals`) feeding a bounded
admission queue in front of the array controller
(:mod:`repro.traffic.admission`), with tail-latency SLO accounting
(:mod:`repro.traffic.sla`).  See EXPERIMENTS.md "Open-loop traffic".
"""

from repro.traffic.admission import AdmissionQueue, OverloadDetector
from repro.traffic.arrivals import (
    ArrivalProcess,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.traffic.sla import SloPolicy, SlaTracker

__all__ = [
    "AdmissionQueue",
    "ArrivalProcess",
    "MMPPArrivals",
    "OverloadDetector",
    "PoissonArrivals",
    "SlaTracker",
    "SloPolicy",
    "TraceArrivals",
]
