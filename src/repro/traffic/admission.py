"""Bounded admission queue and overload detection.

Open-loop arrivals do not wait for the array: requests land whether or
not the previous one finished.  The :class:`AdmissionQueue` sits in
front of :meth:`ArrayController.submit` with a fixed number of service
slots (the controller-level concurrency window) and a bounded FIFO of
waiting requests; an arrival that finds the FIFO full is **shed** and
accounted, never silently dropped.  Reported response times span offer
to completion, so admission wait is part of the latency a request sees.

The :class:`OverloadDetector` watches the waiting-queue depth: if the
*minimum* depth over each detection window keeps strictly growing for a
configured number of consecutive windows (and never drains to zero),
the queue is not an arrival blip — service capacity is below offered
load and the system is in queueing collapse.  The detection verdict and
time land in the trial results.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.array.controller import ArrayController, LogicalAccess
from repro.errors import ConfigurationError
from repro.sim.instrument import DepthTimeline

#: ``on_response(access, total_ms, wait_ms)`` — total latency from offer
#: to completion, and the admission-queue share of it.
ResponseCallback = Callable[[LogicalAccess, float, float], None]


class OverloadDetector:
    """Flags sustained queue growth over consecutive windows.

    Depth samples are bucketed into ``window_ms`` windows; a closed
    window whose minimum depth is positive *and* strictly above the
    previous window's minimum is a growth window.  ``windows``
    consecutive growth windows latch :attr:`overloaded` (with the
    detection time); anything else resets the streak — a queue that
    drains to empty between bursts is busy, not collapsing.
    """

    def __init__(self, window_ms: float = 100.0, windows: int = 3):
        if window_ms <= 0:
            raise ConfigurationError(
                f"detector window must be positive, got {window_ms}"
            )
        if windows < 1:
            raise ConfigurationError(
                f"need >= 1 detection window, got {windows}"
            )
        self.window_ms = window_ms
        self.windows = windows
        self.overloaded = False
        self.detected_at_ms: Optional[float] = None
        self.max_streak = 0
        self._index = 0
        self._min: Optional[int] = None
        self._prev_min: Optional[int] = None
        self._last_depth = 0
        self._streak = 0

    def sample(self, time_ms: float, depth: int) -> None:
        index = int(time_ms // self.window_ms)
        while index > self._index:
            self._close_window()
        if self._min is None or depth < self._min:
            self._min = depth
        self._last_depth = depth

    def _close_window(self) -> None:
        # A window with no samples kept whatever depth it started with.
        closed = self._min if self._min is not None else self._last_depth
        growing = (
            closed > 0
            and self._prev_min is not None
            and closed > self._prev_min
        )
        if growing:
            self._streak += 1
            if self._streak > self.max_streak:
                self.max_streak = self._streak
            if self._streak >= self.windows and not self.overloaded:
                self.overloaded = True
                self.detected_at_ms = (self._index + 1) * self.window_ms
        else:
            self._streak = 0
        self._prev_min = closed
        self._index += 1
        self._min = None

    def report(self) -> dict:
        return {
            "overloaded": self.overloaded,
            "detected_at_ms": self.detected_at_ms,
            "max_growth_streak": self.max_streak,
        }


class AdmissionQueue:
    """Bounded FIFO admission in front of the array controller.

    ``service_slots`` requests may be in flight in the array at once;
    the next ``depth`` wait in FIFO order; beyond that, arrivals are
    shed.  Completions pull from the FIFO immediately, on the engine
    clock.
    """

    def __init__(
        self,
        controller: ArrayController,
        on_response: ResponseCallback,
        depth: int = 64,
        service_slots: int = 8,
        detector: Optional[OverloadDetector] = None,
        timeline: Optional[DepthTimeline] = None,
    ):
        if depth < 1:
            raise ConfigurationError(f"need queue depth >= 1, got {depth}")
        if service_slots < 1:
            raise ConfigurationError(
                f"need >= 1 service slot, got {service_slots}"
            )
        self.controller = controller
        self.on_response = on_response
        self.depth = depth
        self.service_slots = service_slots
        self.detector = detector
        self.timeline = timeline
        self._waiting: Deque[Tuple[LogicalAccess, float]] = deque()
        self.in_service = 0
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.queue_high_water = 0
        self.total_wait_ms = 0.0

    def offer(self, access: LogicalAccess) -> bool:
        """Admit (serve or queue) or shed one arrival; True if admitted."""
        now = self.controller.engine.now
        self.offered += 1
        if self.in_service < self.service_slots and not self._waiting:
            self.admitted += 1
            self._start(access, now)
            return True
        if len(self._waiting) < self.depth:
            self.admitted += 1
            self._waiting.append((access, now))
            if len(self._waiting) > self.queue_high_water:
                self.queue_high_water = len(self._waiting)
            self._sample(now)
            return True
        self.shed += 1
        self._sample(now)
        return False

    def _sample(self, now: float) -> None:
        depth = len(self._waiting)
        if self.detector is not None:
            self.detector.sample(now, depth)
        if self.timeline is not None:
            self.timeline.record(now, depth)

    def _start(self, access: LogicalAccess, offered_ms: float) -> None:
        self.in_service += 1

        def completed(done: LogicalAccess, response_ms: float) -> None:
            now = self.controller.engine.now
            self.in_service -= 1
            self.completed += 1
            if self._waiting:
                waiting, queued_ms = self._waiting.popleft()
                wait_ms = now - queued_ms
                self.total_wait_ms += wait_ms
                self._sample(now)
                self._start(waiting, queued_ms)
            self.on_response(done, now - offered_ms, now - offered_ms - response_ms)

        self.controller.submit(access, completed)

    @property
    def waiting(self) -> int:
        return len(self._waiting)

    def stats(self) -> dict:
        return {
            "depth": self.depth,
            "service_slots": self.service_slots,
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "queue_high_water": self.queue_high_water,
            "mean_wait_ms": (
                self.total_wait_ms / self.completed if self.completed else 0.0
            ),
        }
