"""Tail-latency SLOs: percentile targets and time-in-violation.

An SLO here is a pair of declared latency ceilings — "p99 under X ms,
p999 under Y ms".  The tracker owns a log-bucketed latency histogram
(p50/p99/p999 within 5%, exact max) plus a windowed violation timeline:
completions are bucketed into fixed windows, and a window counts as *in
violation* when more than 1% of its responses exceeded the p99 ceiling
— i.e. the window, taken alone, was breaking the p99 promise.  Summing
the violating windows gives the time-in-violation figure operators
actually get paged on, which a whole-run percentile hides (a 2-second
collapse inside a 60-second run barely moves the global p99).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.stats.histogram import LatencyHistogram


@dataclass(frozen=True)
class SloPolicy:
    """Declared latency ceilings, in ms."""

    p99_ms: float
    p999_ms: float

    def __post_init__(self):
        if self.p99_ms <= 0:
            raise ConfigurationError(
                f"p99 ceiling must be positive, got {self.p99_ms}"
            )
        if self.p999_ms < self.p99_ms:
            raise ConfigurationError(
                f"p999 ceiling {self.p999_ms} below p99 ceiling"
                f" {self.p99_ms}"
            )


class SlaTracker:
    """Latency samples against an :class:`SloPolicy`.

    ``record(completion_ms, response_ms)`` files the response into the
    histogram and its completion-time window; :meth:`report` reduces to
    the JSON block trial records embed.
    """

    def __init__(self, policy: SloPolicy, window_ms: float = 100.0):
        if window_ms <= 0:
            raise ConfigurationError(
                f"SLA window must be positive, got {window_ms}"
            )
        self.policy = policy
        self.window_ms = window_ms
        self.histogram = LatencyHistogram()
        #: window index -> [responses, responses over the p99 ceiling]
        self._windows: Dict[int, List[int]] = {}

    def record(self, completion_ms: float, response_ms: float) -> None:
        self.histogram.record(response_ms)
        window = self._windows.setdefault(
            int(completion_ms // self.window_ms), [0, 0]
        )
        window[0] += 1
        if response_ms > self.policy.p99_ms:
            window[1] += 1

    def recent_over_fraction(
        self, now_ms: float, windows: int = 1
    ) -> "float | None":
        """Fraction of responses over the p99 ceiling in the last
        ``windows`` *closed* windows before ``now_ms``.

        The feedback signal for adaptive rebuild throttling: ``None``
        when those windows saw no completions (idle foreground), else
        ``over / total`` — compare against 0.01 to ask "was the p99
        promise locally broken?".
        """
        if windows < 1:
            raise ConfigurationError(
                f"need at least one window, got {windows}"
            )
        current = int(now_ms // self.window_ms)
        total = 0
        over = 0
        for index in range(current - windows, current):
            entry = self._windows.get(index)
            if entry is not None:
                total += entry[0]
                over += entry[1]
        if total == 0:
            return None
        return over / total

    def report(self) -> dict:
        tail = self.histogram.describe()
        violating = sum(
            1
            for n, over in self._windows.values()
            if over > 0.01 * n
        )
        return {
            "policy": {
                "p99_ms": self.policy.p99_ms,
                "p999_ms": self.policy.p999_ms,
            },
            "tail": tail,
            "p99_violated": (
                tail["p99_ms"] is not None
                and tail["p99_ms"] > self.policy.p99_ms
            ),
            "p999_violated": (
                tail["p999_ms"] is not None
                and tail["p999_ms"] > self.policy.p999_ms
            ),
            "windows": len(self._windows),
            "violation_windows": violating,
            "time_in_violation_ms": violating * self.window_ms,
        }
