"""On-disk result cache keyed by spec content hash.

Layout: ``<root>/<hh>/<hash>.json`` where ``hh`` is the first two hex
digits of the spec hash (fan-out keeps directories small).  Each file is
one result record, written atomically (temp file + rename) so a killed
run never leaves a half-written entry under the final name.  Reads are
defensive: unparsable, truncated, or mismatched files count as misses
and are recomputed — corruption can cost time, never correctness.  A
corrupt file is *quarantined* (renamed to ``<hash>.corrupt``) so the
recomputed record can land cleanly and the bad bytes stay inspectable.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Optional, Union


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """Spec-hash -> result-record store.

    >>> import tempfile
    >>> cache = ResultCache(tempfile.mkdtemp())
    >>> cache.get("ab" * 32) is None
    True
    >>> cache.put("ab" * 32, {"spec_hash": "ab" * 32, "x": 1})
    >>> cache.get("ab" * 32)["x"]
    1
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The cached record, or None on miss *or any corruption*.

        A missing file is a clean miss; an existing-but-corrupt file
        (truncated write from a killed process, bit rot, hash mismatch)
        is quarantined aside so the recompute can overwrite cleanly.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            if not isinstance(record, dict):
                raise ValueError("cache entry is not a record")
            if record.get("spec_hash") != key:
                raise ValueError("cache entry hash mismatch")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return record

    def _quarantine(self, path: Path) -> None:
        try:
            path.replace(path.with_suffix(".corrupt"))
            self.quarantined += 1
        except OSError:
            pass  # unreadable *and* unmovable: the put() will overwrite

    def put(self, key: str, record: dict) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(record, handle, sort_keys=True)
        os.replace(tmp, path)

    def iter_keys(self) -> Iterator[str]:
        if not self.root.exists():
            return
        for entry in sorted(self.root.glob("*/*.json")):
            yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_keys())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in list(self.iter_keys()):
            self.path_for(key).unlink()
            removed += 1
        return removed
