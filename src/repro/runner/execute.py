"""Spec execution: one spec in, one JSON-able result record out.

The record is a plain dict of JSON scalars/containers, so it is
picklable across worker processes, cacheable on disk, and — crucially —
*byte-identical* whether computed serially, in a worker, or read back
from the cache (floats round-trip exactly through ``json``).  Use
:func:`canonical_json` to compare record lists bit-for-bit.
"""

from __future__ import annotations

import json
from typing import List

from repro.errors import ConfigurationError
from repro.runner.spec import (
    MODES,
    CampaignTrialSpec,
    CorruptionTrialSpec,
    CrashTrialSpec,
    ExperimentSpec,
    FailSlowTrialSpec,
    LifecycleSpec,
    NemesisTrialSpec,
    OpenLoopSpec,
    Spec,
    Table1Spec,
    spec_hash,
    spec_to_dict,
)

#: Bump together with result-record layout changes.
RESULT_SCHEMA_VERSION = 1


def _execute_response(spec: ExperimentSpec) -> dict:
    from repro.experiments.response import run_response_point_instrumented
    from repro.workload.spec import AccessSpec

    run = run_response_point_instrumented(
        spec.layout,
        AccessSpec(spec.size_kb, spec.is_write),
        spec.clients,
        mode=MODES[spec.mode],
        failed_disk=spec.failed_disk,
        seed=spec.seed,
        max_samples=spec.max_samples,
        warmup=spec.warmup,
        use_stopping_rule=spec.use_stopping_rule,
        coalesce=spec.coalesce,
        disks=spec.disks,
        width=spec.width,
        record_timelines=spec.timelines,
    )
    point = run.point
    mix = point.seek_mix
    return {
        "point": {
            "layout": point.layout,
            "spec_label": point.spec_label,
            "clients": point.clients,
            "mode": point.mode,
            "mean_response_ms": point.mean_response_ms,
            "throughput_per_s": point.throughput_per_s,
            "samples": point.samples,
            "converged": point.converged,
            "seek_mix": {
                "non_local": mix.non_local,
                "cylinder_switch": mix.cylinder_switch,
                "track_switch": mix.track_switch,
                "no_switch": mix.no_switch,
            },
        },
        "histogram": run.histogram.to_dict(),
        "instrumentation": run.instrumentation,
    }


def _execute_table1(spec: Table1Spec) -> dict:
    from repro.experiments.table1 import solve_cell

    cell = solve_cell(
        spec.k,
        spec.g,
        seed=spec.seed,
        restarts=spec.restarts,
        max_steps=spec.max_steps,
        p_max=spec.p_max,
    )
    return {
        "cell": {
            "k": cell.k,
            "g": cell.g,
            "n": cell.n,
            "group_size": cell.group_size,
            "method": cell.method,
            "paper_value": cell.paper_value,
        }
    }


def _execute_lifecycle(spec: LifecycleSpec) -> dict:
    from repro.experiments.lifecycle import run_lifecycle
    from repro.workload.spec import AccessSpec

    run = run_lifecycle(
        spec.layout,
        AccessSpec(spec.size_kb, spec.is_write),
        spec.clients,
        spec.scenario(),
        seed=spec.seed,
        max_samples=spec.max_samples,
        post_samples=spec.post_samples,
        disks=spec.disks,
        width=spec.width,
        record_timelines=spec.timelines,
        oracle=spec.oracle,
    )
    record = {
        "lifecycle": {
            "layout": run.layout,
            "spec_label": run.spec_label,
            "clients": run.clients,
            "fault_time_ms": run.fault_time_ms,
            "fault_disk": run.fault_disk,
            "transitions": [list(t) for t in run.transitions],
            "complete": run.complete,
            "rebuild_duration_ms": run.rebuild_duration_ms,
            "rebuild_steps": run.rebuild_steps,
            "rebuild_total_steps": run.rebuild_total_steps,
            "rebuild_fraction": run.rebuild_fraction,
            "samples": run.samples,
            "mode_means_ms": {
                mode: run.by_mode.mean(mode) for mode in run.by_mode.modes()
            },
        },
        "histograms": run.by_mode.to_dict(),
        "progress": list(run.progress.points),
        "instrumentation": run.instrumentation,
    }
    if run.oracle is not None:
        record["lifecycle"]["oracle"] = run.oracle
    return record


def _execute_campaign_trial(
    spec: CampaignTrialSpec, layout=None, instrument_out=None
) -> dict:
    from repro.experiments.campaign import run_campaign_trial

    return {
        "trial": run_campaign_trial(
            spec.layout,
            spec.scenario(),
            trial=spec.trial,
            seed=spec.seed,
            clients=spec.clients,
            size_kb=spec.size_kb,
            is_write=spec.is_write,
            disks=spec.disks,
            width=spec.width,
            oracle=spec.oracle,
            layout=layout,
            instrument_out=instrument_out,
        )
    }


def _execute_crash_trial(spec: CrashTrialSpec, layout=None) -> dict:
    from repro.experiments.crashtrial import run_crash_trial

    return {
        "crash_trial": run_crash_trial(
            spec.layout,
            layout=layout,
            disks=spec.disks,
            width=spec.width,
            clients=spec.clients,
            size_kb=spec.size_kb,
            seed=spec.seed,
            journal=spec.journal,
            journal_latency_ms=spec.journal_latency_ms,
            crash_time_ms=spec.crash_time_ms,
            crash_boundary=spec.crash_boundary,
            crash_seed=spec.crash_seed,
            crash_max_boundary=spec.crash_max_boundary,
            fail_disk_at_ms=spec.fail_disk_at_ms,
            failed_disk=spec.failed_disk,
            transient_io_rate=spec.transient_io_rate,
            restart_delay_ms=spec.restart_delay_ms,
            resync_rows=spec.resync_rows,
            resync_parallel=spec.resync_parallel,
            max_pre_samples=spec.max_pre_samples,
            post_samples=spec.post_samples,
        )
    }


def _execute_nemesis_trial(spec: NemesisTrialSpec, layout=None) -> dict:
    from repro.experiments.nemesistrial import run_nemesis_trial

    return {
        "nemesis_trial": run_nemesis_trial(
            spec.layout,
            spec.schedule(),
            layout=layout,
            trial=spec.trial,
            seed=spec.seed,
            clients=spec.clients,
            size_kb=spec.size_kb,
            is_write=spec.is_write,
            disks=spec.disks,
            width=spec.width,
            rows=spec.rows,
            degraded_dwell_ms=spec.degraded_dwell_ms,
            rebuild_parallel=spec.rebuild_parallel,
            journal=spec.journal,
            journal_latency_ms=spec.journal_latency_ms,
            scrub_interval_ms=spec.scrub_interval_ms,
            scrub_throttle_ms=spec.scrub_throttle_ms,
            restart_delay_ms=spec.restart_delay_ms,
            max_samples=spec.max_samples,
            transient_io_rate=spec.transient_io_rate,
            lse_per_gb=spec.lse_per_gb,
            checksums=spec.checksums,
        )
    }


def _execute_openloop(spec: OpenLoopSpec, layout=None) -> dict:
    from repro.experiments.openloop import run_openloop_trial

    return {
        "openloop": run_openloop_trial(
            spec.layout,
            spec.rate_per_s,
            layout=layout,
            arrival=spec.arrival,
            phase=spec.phase,
            arrivals=spec.arrivals,
            seed=spec.seed,
            size_kb=spec.size_kb,
            is_write=spec.is_write,
            disks=spec.disks,
            width=spec.width,
            burst_ratio=spec.burst_ratio,
            burst_fraction=spec.burst_fraction,
            burst_dwell_ms=spec.burst_dwell_ms,
            trace_period_ms=spec.trace_period_ms,
            failed_disk=spec.failed_disk,
            degraded_dwell_ms=spec.degraded_dwell_ms,
            rebuild_parallel=spec.rebuild_parallel,
            rebuild_throttle_ms=spec.rebuild_throttle_ms,
            queue_depth=spec.queue_depth,
            service_slots=spec.service_slots,
            slo_p99_ms=spec.slo_p99_ms,
            slo_p999_ms=spec.slo_p999_ms,
            window_ms=spec.window_ms,
            overload_windows=spec.overload_windows,
            horizon_ms=spec.horizon_ms,
            record_timelines=spec.timelines,
        )
    }


def _execute_failslow(spec: FailSlowTrialSpec, layout=None) -> dict:
    from repro.experiments.failslow import run_failslow_trial

    return {
        "failslow": run_failslow_trial(
            spec.layout,
            spec.rate_per_s,
            layout=layout,
            defense=spec.defense,
            arrivals=spec.arrivals,
            seed=spec.seed,
            size_kb=spec.size_kb,
            disks=spec.disks,
            width=spec.width,
            failed_disk=spec.failed_disk,
            slow_disk=spec.slow_disk,
            slow_multiplier=spec.slow_multiplier,
            degraded_dwell_ms=spec.degraded_dwell_ms,
            rebuild_rows=spec.rebuild_rows,
            rebuild_parallel=spec.rebuild_parallel,
            rebuild_throttle_ms=spec.rebuild_throttle_ms,
            hedge_deferral_ms=spec.hedge_deferral_ms,
            adaptive_max_ms=spec.adaptive_max_ms,
            queue_depth=spec.queue_depth,
            service_slots=spec.service_slots,
            slo_p99_ms=spec.slo_p99_ms,
            slo_p999_ms=spec.slo_p999_ms,
            window_ms=spec.window_ms,
            horizon_ms=spec.horizon_ms,
        )
    }


def _execute_corruption(spec: CorruptionTrialSpec, layout=None) -> dict:
    from repro.experiments.corruption import run_corruption_trial

    return {
        "corruption": run_corruption_trial(
            spec.layout,
            layout=layout,
            defense=spec.defense,
            trial=spec.trial,
            seed=spec.seed,
            lost_rate=spec.lost_rate,
            misdirected_rate=spec.misdirected_rate,
            bitrot_cells=spec.bitrot_cells,
            rate_per_s=spec.rate_per_s,
            arrivals=spec.arrivals,
            read_fraction=spec.read_fraction,
            span_units=spec.span_units,
            size_kb=spec.size_kb,
            disks=spec.disks,
            width=spec.width,
            fail_at_ms=spec.fail_at_ms,
            failed_disk=spec.failed_disk,
            checksum_latency_ms=spec.checksum_latency_ms,
            scrub_interval_ms=spec.scrub_interval_ms,
            queue_depth=spec.queue_depth,
            service_slots=spec.service_slots,
            horizon_ms=spec.horizon_ms,
        )
    }


_EXECUTORS = {
    ExperimentSpec.kind: _execute_response,
    Table1Spec.kind: _execute_table1,
    LifecycleSpec.kind: _execute_lifecycle,
    CampaignTrialSpec.kind: _execute_campaign_trial,
    CrashTrialSpec.kind: _execute_crash_trial,
    NemesisTrialSpec.kind: _execute_nemesis_trial,
    OpenLoopSpec.kind: _execute_openloop,
    FailSlowTrialSpec.kind: _execute_failslow,
    CorruptionTrialSpec.kind: _execute_corruption,
}


def _finalize(record: dict, spec: Spec) -> dict:
    record["schema"] = RESULT_SCHEMA_VERSION
    record["kind"] = spec.kind
    record["spec"] = spec_to_dict(spec)
    record["spec_hash"] = spec_hash(spec)
    return record


def execute_spec(spec: Spec) -> dict:
    """Run one spec to completion and return its result record."""
    executor = _EXECUTORS.get(spec.kind)
    if executor is None:
        raise ConfigurationError(f"no executor for spec kind {spec.kind!r}")
    return _finalize(executor(spec), spec)


class BatchedTrialExecutor:
    """Executes trial specs with per-batch setup amortized.

    Monte-Carlo campaigns run thousands of trials that differ only in
    their seeds; rebuilding the layout mapping for every trial is pure
    overhead.  This executor memoizes one layout instance per
    ``(layout, disks, width)`` and hands it to the trial functions.
    Sharing is safe because layouts are immutable mappings — a
    controller that fails a disk *wraps* its layout in a relocation
    view rather than mutating it — so batched records are byte-identical
    to :func:`execute_spec` output (pinned by a unit test).

    Spec kinds without a batchable trial function fall through to
    :func:`execute_spec` unchanged, so the executor is a drop-in
    replacement anywhere specs are executed one at a time.

    ``events_processed`` accumulates engine event counts reported
    out-of-band by the campaign trials (their records carry no
    instrumentation block — record bytes stay pinned), which is what
    the hotpath benchmark's campaign-throughput spec measures.
    """

    #: Kinds whose trial functions accept a shared ``layout``.
    BATCHABLE = frozenset(
        {
            CampaignTrialSpec.kind,
            CrashTrialSpec.kind,
            NemesisTrialSpec.kind,
            OpenLoopSpec.kind,
            FailSlowTrialSpec.kind,
            CorruptionTrialSpec.kind,
        }
    )

    def __init__(self) -> None:
        self._layouts: dict = {}
        self.events_processed = 0
        self.trials_executed = 0

    def shared_layout(self, spec: Spec):
        """The memoized layout instance for a batchable spec."""
        key = (spec.layout, spec.disks, spec.width)
        layout = self._layouts.get(key)
        if layout is None:
            from repro.experiments.config import layout_for

            layout = layout_for(
                spec.layout, disks=spec.disks, width=spec.width
            )
            self._layouts[key] = layout
        return layout

    def execute(self, spec: Spec) -> dict:
        """Run one spec; byte-identical to :func:`execute_spec`."""
        kind = spec.kind
        if kind not in self.BATCHABLE:
            return execute_spec(spec)
        layout = self.shared_layout(spec)
        if kind == CampaignTrialSpec.kind:
            counters: dict = {}
            record = _execute_campaign_trial(
                spec, layout=layout, instrument_out=counters
            )
            self.events_processed += counters.get("events_processed", 0)
        elif kind == CrashTrialSpec.kind:
            record = _execute_crash_trial(spec, layout=layout)
        elif kind == NemesisTrialSpec.kind:
            record = _execute_nemesis_trial(spec, layout=layout)
        elif kind == OpenLoopSpec.kind:
            record = _execute_openloop(spec, layout=layout)
        elif kind == CorruptionTrialSpec.kind:
            record = _execute_corruption(spec, layout=layout)
        else:
            record = _execute_failslow(spec, layout=layout)
        self.trials_executed += 1
        return _finalize(record, spec)

    def run(self, specs: List[Spec]) -> List[dict]:
        """Execute a batch in order."""
        return [self.execute(spec) for spec in specs]


def point_from_record(record: dict):
    """Rebuild the :class:`ResponsePoint` a response record encodes."""
    from repro.experiments.response import ResponsePoint
    from repro.stats.seekcount import SeekMix

    data = dict(record["point"])
    data["seek_mix"] = SeekMix(**data["seek_mix"])
    return ResponsePoint(**data)


def cell_from_record(record: dict):
    """Rebuild the :class:`Table1Cell` a table1 record encodes."""
    from repro.experiments.table1 import Table1Cell

    return Table1Cell(**record["cell"])


def canonical_json(records: List[dict]) -> str:
    """Deterministic serialization for byte-level record comparison."""
    return json.dumps(records, sort_keys=True, separators=(",", ":"))
