"""Sweep builders: paper figures/tables as spec lists, and back again.

``*_specs`` functions turn one figure's sweep into a flat, ordered list
of specs for :class:`~repro.runner.parallel.ParallelRunner`;
``curves_from_records`` / ``cells_from_records`` reassemble the runner's
result records into the exact structures the figure benchmarks always
consumed, so migrating a benchmark onto the runner changes how points
are computed (parallel, cached) but not what they are.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import PAPER_LAYOUT_NAMES
from repro.experiments.response import ResponseCurve
from repro.runner.execute import cell_from_record, point_from_record
from repro.runner.spec import ExperimentSpec, LifecycleSpec, Table1Spec


def default_warmup(samples: int) -> int:
    """The figure benchmarks' historical warmup policy."""
    return max(10, samples // 10)


def response_sweep_specs(
    sizes_kb: Sequence[int],
    clients: Sequence[int],
    is_write: bool,
    mode: str,
    samples: int,
    seed: int = 0,
    layouts: Sequence[str] = PAPER_LAYOUT_NAMES,
    warmup: Optional[int] = None,
    use_stopping_rule: bool = False,
) -> List[ExperimentSpec]:
    """One response figure's full sweep, ordered (size, layout, clients)."""
    warmup = default_warmup(samples) if warmup is None else warmup
    return [
        ExperimentSpec(
            layout=layout,
            size_kb=size_kb,
            is_write=is_write,
            clients=c,
            mode=mode,
            seed=seed,
            max_samples=samples,
            warmup=warmup,
            use_stopping_rule=use_stopping_rule,
        )
        for size_kb in sizes_kb
        for layout in layouts
        for c in clients
    ]


def figure5_specs(
    sizes_kb: Sequence[int] = (8, 48, 96, 240),
    clients: Sequence[int] = (1, 4, 10, 25),
    samples: int = 150,
    seed: int = 0,
    layouts: Sequence[str] = PAPER_LAYOUT_NAMES,
) -> List[ExperimentSpec]:
    """Figure 5: fault-free reads."""
    return response_sweep_specs(
        sizes_kb, clients, False, "ff", samples, seed=seed, layouts=layouts
    )


def figure6_specs(
    sizes_kb: Sequence[int] = (8, 48, 96, 240),
    clients: Sequence[int] = (1, 4, 10, 25),
    samples: int = 150,
    seed: int = 0,
    layouts: Sequence[str] = PAPER_LAYOUT_NAMES,
) -> List[ExperimentSpec]:
    """Figure 6: degraded-mode reads."""
    return response_sweep_specs(
        sizes_kb, clients, False, "f1", samples, seed=seed, layouts=layouts
    )


def curves_from_records(
    records: Sequence[dict],
) -> Dict[int, Dict[str, ResponseCurve]]:
    """Records -> ``{size_kb: {layout: ResponseCurve}}`` panels.

    Point order within a curve follows record order, which the
    ``*_specs`` builders keep sorted by client count.
    """
    panels: Dict[int, Dict[str, ResponseCurve]] = {}
    grouped: Dict[Tuple[int, str], list] = {}
    for record in records:
        spec = record["spec"]
        grouped.setdefault(
            (spec["size_kb"], spec["layout"]), []
        ).append(point_from_record(record))
    for (size_kb, layout), points in grouped.items():
        panels.setdefault(size_kb, {})[layout] = ResponseCurve(
            layout=layout,
            spec_label=points[0].spec_label,
            mode=points[0].mode,
            points=points,
        )
    return panels


def lifecycle_sweep_specs(
    layouts: Sequence[str],
    clients: Sequence[int],
    size_kb: int = 8,
    is_write: bool = False,
    fault_time_ms: Optional[float] = 500.0,
    mttf_hours: Optional[float] = None,
    degraded_dwell_ms: float = 0.0,
    rebuild_rows: Optional[int] = None,
    rebuild_parallel: int = 1,
    rebuild_throttle_ms: float = 0.0,
    post_samples: int = 100,
    max_samples: int = 4000,
    seed: int = 0,
    disks: int = 13,
    oracle: bool = False,
) -> List[LifecycleSpec]:
    """A lifecycle sweep over (layout, client count).

    Varying ``clients`` at a fixed rebuild configuration traces the
    rebuild-duration-vs-offered-load curves; each spec is one continuous
    four-regime simulation.
    """
    return [
        LifecycleSpec(
            layout=layout,
            disks=disks,
            size_kb=size_kb,
            is_write=is_write,
            clients=c,
            seed=seed,
            fault_time_ms=fault_time_ms,
            mttf_hours=mttf_hours,
            degraded_dwell_ms=degraded_dwell_ms,
            rebuild_rows=rebuild_rows,
            rebuild_parallel=rebuild_parallel,
            rebuild_throttle_ms=rebuild_throttle_ms,
            post_samples=post_samples,
            max_samples=max_samples,
            oracle=oracle,
        )
        for layout in layouts
        for c in clients
    ]


def rebuild_load_curves(
    records: Sequence[dict],
) -> Dict[str, List[Tuple[int, Optional[float]]]]:
    """Lifecycle records -> ``{layout: [(clients, rebuild_ms), ...]}``.

    The rebuild-duration-vs-offered-load curves; ``rebuild_ms`` is None
    for runs whose sweep did not finish inside the sample budget.
    """
    curves: Dict[str, List[Tuple[int, Optional[float]]]] = {}
    for record in records:
        life = record["lifecycle"]
        curves.setdefault(life["layout"], []).append(
            (life["clients"], life["rebuild_duration_ms"])
        )
    return curves


def table1_specs(
    widths: Sequence[int],
    stripe_counts: Sequence[int],
    seed: int = 0,
    restarts: int = 8,
    max_steps: int = 1500,
    p_max: int = 3,
) -> List[Table1Spec]:
    """The Table 1 grid as independent per-cell search specs."""
    return [
        Table1Spec(
            k=k,
            g=g,
            seed=seed,
            restarts=restarts,
            max_steps=max_steps,
            p_max=p_max,
        )
        for k in widths
        for g in stripe_counts
    ]


def cells_from_records(records: Sequence[dict]) -> Dict[tuple, object]:
    """Records -> ``{(k, g): Table1Cell}``."""
    cells = {}
    for record in records:
        cell = cell_from_record(record)
        cells[(cell.k, cell.g)] = cell
    return cells
