"""Batched, parallel, cached experiment execution.

The shared substrate under the figure/table benchmarks and the ``repro
bench`` CLI: describe sweep points as pure-data specs, fan them across
worker processes, memoize results on disk by content hash.  See
RUNNER.md at the repository root for the operational guide.
"""

from repro.runner.benchcompare import (
    check_invariants,
    compare_reports,
    diff_reports,
    load_report,
    run_compare,
)
from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.checkpoint import RunCheckpoint
from repro.runner.execute import (
    canonical_json,
    cell_from_record,
    execute_spec,
    point_from_record,
)
from repro.runner.provenance import (
    source_version,
    sweep_hash,
    sweep_provenance,
)
from repro.runner.figures import (
    cells_from_records,
    curves_from_records,
    figure5_specs,
    figure6_specs,
    lifecycle_sweep_specs,
    rebuild_load_curves,
    response_sweep_specs,
    table1_specs,
)
from repro.runner.parallel import ParallelRunner, RunReport, default_workers
from repro.runner.spec import (
    CampaignTrialSpec,
    CorruptionTrialSpec,
    ExperimentSpec,
    FailSlowTrialSpec,
    LifecycleSpec,
    NemesisTrialSpec,
    OpenLoopSpec,
    Table1Spec,
    mode_name,
    spec_from_dict,
    spec_hash,
    spec_to_dict,
)
from repro.runner.workers import run_hardened

__all__ = [
    "CampaignTrialSpec",
    "CorruptionTrialSpec",
    "ExperimentSpec",
    "FailSlowTrialSpec",
    "LifecycleSpec",
    "NemesisTrialSpec",
    "OpenLoopSpec",
    "ParallelRunner",
    "ResultCache",
    "RunCheckpoint",
    "RunReport",
    "Table1Spec",
    "canonical_json",
    "cell_from_record",
    "cells_from_records",
    "check_invariants",
    "compare_reports",
    "curves_from_records",
    "default_cache_dir",
    "default_workers",
    "diff_reports",
    "execute_spec",
    "figure5_specs",
    "figure6_specs",
    "lifecycle_sweep_specs",
    "load_report",
    "mode_name",
    "point_from_record",
    "rebuild_load_curves",
    "response_sweep_specs",
    "run_compare",
    "run_hardened",
    "source_version",
    "spec_from_dict",
    "spec_hash",
    "spec_to_dict",
    "sweep_hash",
    "sweep_provenance",
    "table1_specs",
]
