"""Crash-tolerant run checkpoints.

A checkpoint is an append-only JSONL file: one completed result record
per line, keyed by the record's ``spec_hash``.  Appends are flushed and
fsynced, so a run killed mid-campaign loses at most the record being
written; on resume, completed specs are served from the checkpoint and
only the remainder is simulated.  Records are byte-identical to what an
uninterrupted run produces (the runner's determinism contract), so a
kill/resume cycle changes nothing about the output.

Loading is tolerant: a truncated final line (the kill landed mid-write)
or any other unparsable line is skipped and counted, never raised —
a damaged checkpoint costs recomputation, not correctness.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union


class RunCheckpoint:
    """Append-only record log for one (resumable) runner invocation.

    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "run.jsonl")
    >>> cp = RunCheckpoint(path)
    >>> cp.append({"spec_hash": "ab" * 32, "x": 1})
    >>> RunCheckpoint(path).get("ab" * 32)["x"]
    1
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.corrupt_lines = 0
        self._records: Dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["spec_hash"]
                except (ValueError, TypeError, KeyError):
                    self.corrupt_lines += 1
                    continue
                self._records[key] = record

    def get(self, key: str) -> Optional[dict]:
        return self._records.get(key)

    def append(self, record: dict) -> None:
        """Persist one completed record (flush + fsync before returning)."""
        key = record.get("spec_hash")
        if not key:
            raise ValueError("checkpoint records need a spec_hash")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._records[key] = record

    def keys(self) -> List[str]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records
