"""The parallel experiment runner.

Fans a spec list across ``multiprocessing`` workers.  Determinism is
structural, not lucky: each spec carries its own seed and
:func:`repro.runner.execute.execute_spec` derives every RNG from it, so
a worker computes exactly what a serial loop would — result records are
byte-identical for any worker count (asserted by the determinism test
suite).  With a :class:`~repro.runner.cache.ResultCache` attached,
previously computed specs are served from disk and only the misses are
simulated; duplicate specs within one call are computed once.

Long campaigns opt into hardening: a per-spec ``timeout_s``, crash/hang
``retries`` with capped exponential backoff (the pipe-based pool in
:mod:`repro.runner.workers`), and a :class:`~repro.runner.checkpoint.
RunCheckpoint` that persists each completed record so a killed run
resumes where it stopped — with byte-identical final records either
way.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.runner.cache import ResultCache
from repro.runner.checkpoint import RunCheckpoint
from repro.runner.execute import BatchedTrialExecutor
from repro.runner.spec import Spec, spec_hash

#: Per-process batch executor for plain pool workers: layouts built by
#: one task are reused by every later task the worker picks up.
#: Records stay byte-identical (the executor's contract), so worker
#: scheduling still cannot influence results.
_POOL_EXECUTOR: Optional[BatchedTrialExecutor] = None


def _pool_execute(spec: Spec) -> dict:
    global _POOL_EXECUTOR
    if _POOL_EXECUTOR is None:
        _POOL_EXECUTOR = BatchedTrialExecutor()
    return _POOL_EXECUTOR.execute(spec)


def default_workers() -> int:
    """``$REPRO_BENCH_WORKERS`` (>= 1), else 1 (serial).

    An unparsable or non-positive value falls back to serial — loudly:
    silently dropping to one worker turns a typo into a mysterious 8x
    slowdown, so the bad value is named in a :class:`RuntimeWarning`.
    """
    raw = os.environ.get("REPRO_BENCH_WORKERS")
    if raw is None:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        workers = 0
    if workers < 1:
        warnings.warn(
            f"ignoring invalid REPRO_BENCH_WORKERS={raw!r}"
            " (need an integer >= 1); running serial",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    return workers


def _pool_context():
    # fork keeps worker start cheap and inherits sys.path; fall back to
    # spawn where fork is unavailable (results are identical either way).
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


@dataclass
class RunReport:
    """What one :meth:`ParallelRunner.run` call did.

    ``records`` is in spec order; ``executed`` counts simulations
    actually run, ``cache_hits`` counts unique specs served from the
    cache, and ``checkpoint_hits`` counts those resumed from a
    checkpoint file (in-call duplicates resolve to the first occurrence
    and count as none of the three).
    """

    records: List[dict]
    executed: int
    cache_hits: int
    checkpoint_hits: int = 0


class ParallelRunner:
    """Run experiment specs, possibly in parallel, possibly cached.

    ``workers=None`` reads ``$REPRO_BENCH_WORKERS`` (default serial).
    ``timeout_s``/``retries``/``backoff_*`` harden multi-worker runs
    against crashed or wedged workers (see :mod:`repro.runner.workers`);
    ``checkpoint`` makes the run resumable after a kill.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        backoff_base_s: float = 0.5,
        backoff_cap_s: float = 30.0,
        checkpoint: Optional[RunCheckpoint] = None,
    ):
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ConfigurationError(
                f"need >= 1 worker, got {self.workers}"
            )
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout_s}")
        if retries < 0:
            raise ConfigurationError(f"negative retry budget {retries}")
        if backoff_base_s < 0 or backoff_cap_s < 0:
            raise ConfigurationError("backoff times must be >= 0")
        self.cache = cache
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.checkpoint = checkpoint

    @property
    def _hardened(self) -> bool:
        return self.timeout_s is not None or self.retries > 0

    def run(self, specs: Sequence[Spec]) -> RunReport:
        specs = list(specs)
        keys = [spec_hash(spec) for spec in specs]

        resolved: Dict[str, dict] = {}
        todo: List[tuple] = []  # (key, spec), unique, in first-seen order
        seen = set()
        cache_hits = 0
        checkpoint_hits = 0
        for key, spec in zip(keys, specs):
            if key in seen:
                continue
            seen.add(key)
            if self.checkpoint is not None:
                record = self.checkpoint.get(key)
                if record is not None:
                    resolved[key] = record
                    checkpoint_hits += 1
                    continue
            if self.cache is not None:
                record = self.cache.get(key)
                if record is not None:
                    resolved[key] = record
                    cache_hits += 1
                    continue
            todo.append((key, spec))

        if todo:
            computed = self._execute(todo)
            for (key, _), record in zip(todo, computed):
                resolved[key] = record
                if self.cache is not None:
                    self.cache.put(key, record)

        return RunReport(
            records=[resolved[key] for key in keys],
            executed=len(todo),
            cache_hits=cache_hits,
            checkpoint_hits=checkpoint_hits,
        )

    def _execute(self, todo: List[tuple]) -> List[dict]:
        specs = [spec for _, spec in todo]
        if self.workers > 1 and len(specs) > 1:
            if self._hardened or self.checkpoint is not None:
                from repro.runner.workers import run_hardened

                return run_hardened(
                    specs,
                    workers=self.workers,
                    timeout_s=self.timeout_s,
                    retries=self.retries,
                    backoff_base_s=self.backoff_base_s,
                    backoff_cap_s=self.backoff_cap_s,
                    on_record=(
                        self.checkpoint.append
                        if self.checkpoint is not None
                        else None
                    ),
                )
            ctx = _pool_context()
            processes = min(self.workers, len(specs))
            with ctx.Pool(processes=processes) as pool:
                return pool.map(_pool_execute, specs)
        # Serial path: one batch executor amortizes layout setup across
        # the whole todo list; checkpoint incrementally so a kill
        # between specs (or a spec that raises) loses nothing already
        # computed.
        executor = BatchedTrialExecutor()
        computed = []
        for spec in specs:
            record = executor.execute(spec)
            if self.checkpoint is not None:
                self.checkpoint.append(record)
            computed.append(record)
        return computed
