"""The parallel experiment runner.

Fans a spec list across ``multiprocessing`` workers.  Determinism is
structural, not lucky: each spec carries its own seed and
:func:`repro.runner.execute.execute_spec` derives every RNG from it, so
a worker computes exactly what a serial loop would — result records are
byte-identical for any worker count (asserted by the determinism test
suite).  With a :class:`~repro.runner.cache.ResultCache` attached,
previously computed specs are served from disk and only the misses are
simulated; duplicate specs within one call are computed once.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.runner.cache import ResultCache
from repro.runner.execute import execute_spec
from repro.runner.spec import Spec, spec_hash


def default_workers() -> int:
    """``$REPRO_BENCH_WORKERS`` (>= 1), else 1 (serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))
    except ValueError:
        return 1


def _pool_context():
    # fork keeps worker start cheap and inherits sys.path; fall back to
    # spawn where fork is unavailable (results are identical either way).
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


@dataclass
class RunReport:
    """What one :meth:`ParallelRunner.run` call did.

    ``records`` is in spec order; ``executed`` counts simulations
    actually run and ``cache_hits`` counts unique specs served from the
    cache (in-call duplicates resolve to the first occurrence and count
    as neither).
    """

    records: List[dict]
    executed: int
    cache_hits: int


class ParallelRunner:
    """Run experiment specs, possibly in parallel, possibly cached.

    ``workers=None`` reads ``$REPRO_BENCH_WORKERS`` (default serial).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ):
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ConfigurationError(
                f"need >= 1 worker, got {self.workers}"
            )
        self.cache = cache

    def run(self, specs: Sequence[Spec]) -> RunReport:
        specs = list(specs)
        keys = [spec_hash(spec) for spec in specs]

        resolved: Dict[str, dict] = {}
        todo: List[tuple] = []  # (key, spec), unique, in first-seen order
        seen = set()
        cache_hits = 0
        for key, spec in zip(keys, specs):
            if key in seen:
                continue
            seen.add(key)
            if self.cache is not None:
                record = self.cache.get(key)
                if record is not None:
                    resolved[key] = record
                    cache_hits += 1
                    continue
            todo.append((key, spec))

        if todo:
            if self.workers > 1 and len(todo) > 1:
                ctx = _pool_context()
                processes = min(self.workers, len(todo))
                with ctx.Pool(processes=processes) as pool:
                    computed = pool.map(
                        execute_spec, [spec for _, spec in todo]
                    )
            else:
                computed = [execute_spec(spec) for _, spec in todo]
            for (key, _), record in zip(todo, computed):
                resolved[key] = record
                if self.cache is not None:
                    self.cache.put(key, record)

        return RunReport(
            records=[resolved[key] for key in keys],
            executed=len(todo),
            cache_hits=cache_hits,
        )
