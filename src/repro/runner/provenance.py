"""Report provenance: which source produced which sweep.

Committed ``BENCH_*.json`` baselines are compared across commits by
``repro bench --compare``; a level shift is only actionable if the
report says *what* produced it.  Each report header carries:

``source_version``
    ``git describe --always --dirty`` of the working tree (or the
    ``REPRO_SOURCE_VERSION`` environment override for builds exported
    from a tarball), so a regression localizes to a commit range.
``sweep_hash``
    SHA-256 over the sorted content hashes of every spec in the sweep —
    two reports with equal sweep hashes simulated the *same points*
    under the same spec schema, so their simulated quantities are
    directly comparable.

Everything except ``source_version`` is a pure function of the specs;
comparisons that must be repo-state independent (CI byte-equality of a
fresh run against a committed baseline) ignore that one key.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
from typing import List, Optional

from repro.runner.spec import SPEC_SCHEMA_VERSION, Spec, spec_hash

#: Environment override for builds without a git checkout.
SOURCE_VERSION_ENV = "REPRO_SOURCE_VERSION"


def source_version(repo_dir: Optional[str] = None) -> str:
    """The version string stamped into report headers.

    Precedence: ``REPRO_SOURCE_VERSION`` env var, then ``git describe
    --always --dirty`` run from the package directory (not the CWD, so
    reports generated from another working directory still attribute to
    this checkout), then ``"unknown"``.
    """
    override = os.environ.get(SOURCE_VERSION_ENV)
    if override:
        return override
    if repo_dir is None:
        repo_dir = os.path.dirname(os.path.abspath(__file__))
    try:
        described = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if described.returncode != 0:
        return "unknown"
    return described.stdout.strip() or "unknown"


def sweep_hash(specs: List[Spec]) -> str:
    """Order-independent content hash of a whole sweep."""
    digest = hashlib.sha256()
    for h in sorted(spec_hash(spec) for spec in specs):
        digest.update(h.encode("ascii"))
    return digest.hexdigest()


def sweep_provenance(specs: List[Spec]) -> dict:
    """The ``provenance`` block written into ``BENCH_*.json`` reports."""
    return {
        "source_version": source_version(),
        "spec_schema": SPEC_SCHEMA_VERSION,
        "spec_count": len(specs),
        "sweep_hash": sweep_hash(specs),
    }
