"""Experiment specifications: one sweep point as pure data.

A spec is a frozen dataclass of JSON-scalar fields, so it pickles across
``multiprocessing`` workers, serializes into cache files, and hashes
stably: :func:`spec_hash` is SHA-256 over the canonical JSON of the
fields plus a schema version, identical across process restarts and
platforms.  Bump ``SPEC_SCHEMA_VERSION`` whenever simulation semantics
change so stale cache entries stop matching.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import ClassVar, Optional, Union

from repro.array.raidops import ArrayMode
from repro.errors import ConfigurationError

#: Part of every content hash; bump on any change that alters results.
SPEC_SCHEMA_VERSION = 1

#: Spec fields added after v1 shipped, per kind, with their inactive
#: defaults.  :func:`spec_to_dict` omits them while they hold these
#: values, so specs predating the fields keep their original content
#: hashes and existing caches stay valid (same contract as
#: ``FaultScenario._V1_OPTIONAL_DEFAULTS``).
_V1_SPEC_OPTIONAL = {
    "lifecycle": {"oracle": False},
    "campaign-trial": {"oracle": False, "transient_io_rate": 0.0},
    "nemesis-trial": {
        "transient_io_rate": 0.0,
        "lse_per_gb": 0.0,
        "max_failslow": 0,
        "failslow_multiplier": 5.0,
        "max_corruption_bursts": 0,
        "corruption_rate": 0.05,
        "checksums": False,
    },
}

#: Canonical short names for the array modes (CLI and spec encoding).
MODES = {
    "ff": ArrayMode.FAULT_FREE,
    "f1": ArrayMode.DEGRADED,
    "post": ArrayMode.POST_RECONSTRUCTION,
}


def mode_name(mode: ArrayMode) -> str:
    """The spec encoding of an :class:`ArrayMode`."""
    for name, value in MODES.items():
        if value is mode:
            return name
    raise ConfigurationError(f"unknown array mode {mode!r}")


@dataclass(frozen=True)
class ExperimentSpec:
    """One response-time simulation point (Figures 5/6/8/9/...).

    ``width=None`` follows Table 2 (RAID-5 stripes the whole array, the
    declustered layouts use the paper's stripe width); ``max_samples``
    is the run length, ``timelines`` adds per-disk busy/queue-depth
    series to the result record.

    >>> spec = ExperimentSpec(layout="pddl", size_kb=96, clients=8)
    >>> spec_hash(spec) == spec_hash(ExperimentSpec(layout="pddl",
    ...                                             size_kb=96, clients=8))
    True
    """

    kind: ClassVar[str] = "response"

    layout: str
    disks: int = 13
    width: Optional[int] = None
    size_kb: int = 8
    is_write: bool = False
    clients: int = 1
    mode: str = "ff"
    failed_disk: int = 0
    seed: int = 0
    max_samples: int = 300
    warmup: int = 50
    use_stopping_rule: bool = False
    coalesce: bool = True
    timelines: bool = False

    def __post_init__(self):
        if self.mode not in MODES:
            raise ConfigurationError(
                f"mode must be one of {sorted(MODES)}, got {self.mode!r}"
            )
        if self.clients < 1:
            raise ConfigurationError(f"need >= 1 client, got {self.clients}")
        if self.max_samples < 1:
            raise ConfigurationError("need >= 1 sample")


@dataclass(frozen=True)
class Table1Spec:
    """One Table 1 cell: the base-permutation search for (k, g)."""

    kind: ClassVar[str] = "table1"

    k: int
    g: int
    seed: int = 0
    restarts: int = 8
    max_steps: int = 1500
    p_max: int = 3

    def __post_init__(self):
        if self.k < 2 or self.g < 1:
            raise ConfigurationError(f"bad Table 1 cell ({self.k}, {self.g})")


@dataclass(frozen=True)
class LifecycleSpec:
    """One reconstruction-under-load lifecycle run (Figures 8-14, 18).

    Exactly one of ``fault_time_ms`` (scripted failure) or ``mttf_hours``
    (seeded exponential lifetimes, earliest disk fails) selects the
    fault; the remaining fields parameterize the rebuild sweep and the
    per-mode sampling bounds.  ``rebuild_throttle_ms`` is the idle time
    per rebuild slot between steps — the offered-load knob behind the
    rebuild-duration-vs-load curves.

    >>> spec = LifecycleSpec(layout="pddl", fault_time_ms=500.0)
    >>> spec_hash(spec) == spec_hash(LifecycleSpec(layout="pddl",
    ...                                            fault_time_ms=500.0))
    True
    """

    kind: ClassVar[str] = "lifecycle"

    layout: str
    disks: int = 13
    width: Optional[int] = None
    size_kb: int = 8
    is_write: bool = False
    clients: int = 4
    seed: int = 0
    failed_disk: int = 0
    fault_time_ms: Optional[float] = None
    mttf_hours: Optional[float] = None
    fault_seed: int = 0
    degraded_dwell_ms: float = 0.0
    rebuild_rows: Optional[int] = None
    rebuild_parallel: int = 1
    rebuild_throttle_ms: float = 0.0
    post_samples: int = 100
    max_samples: int = 4000
    timelines: bool = False
    # Post-v1 (hash-omitted at default, see _V1_SPEC_OPTIONAL): attach
    # the integrity oracle and record its verification in the result.
    oracle: bool = False

    def __post_init__(self):
        if self.clients < 1:
            raise ConfigurationError(f"need >= 1 client, got {self.clients}")
        if self.max_samples < 1 or self.post_samples < 1:
            raise ConfigurationError("need positive sample bounds")
        # Fault/rebuild field validation (exactly-one-of, ranges) lives
        # in FaultScenario; build one now so bad specs fail at
        # construction, not mid-sweep in a worker.
        self.scenario()

    def scenario(self):
        """The :class:`~repro.faults.scenario.FaultScenario` this encodes."""
        from repro.faults.scenario import FaultScenario

        return FaultScenario(
            failed_disk=self.failed_disk,
            fault_time_ms=self.fault_time_ms,
            mttf_hours=self.mttf_hours,
            fault_seed=self.fault_seed,
            degraded_dwell_ms=self.degraded_dwell_ms,
            rebuild_rows=self.rebuild_rows,
            rebuild_parallel=self.rebuild_parallel,
            rebuild_throttle_ms=self.rebuild_throttle_ms,
        )


@dataclass(frozen=True)
class CampaignTrialSpec:
    """One multi-fault reliability trial (campaign Monte-Carlo sample).

    Each trial draws ``faults`` exponential disk lifetimes (MTTF
    ``mttf_hours``) from streams seeded by ``seed * 1_000_003 + trial``
    — a large odd multiplier keeps per-trial streams disjoint across
    campaign seeds — and simulates the repair arc to completion or data
    loss.  ``clients = 0`` (the default) runs the arc unloaded; positive
    values add the lifecycle experiments' closed-loop clients.

    >>> spec = CampaignTrialSpec(layout="pddl", trial=7)
    >>> spec_hash(spec) == spec_hash(CampaignTrialSpec(layout="pddl",
    ...                                                trial=7))
    True
    """

    kind: ClassVar[str] = "campaign-trial"

    layout: str
    disks: int = 13
    width: Optional[int] = None
    trial: int = 0
    seed: int = 0
    mttf_hours: float = 1000.0
    faults: int = 2
    degraded_dwell_ms: float = 0.0
    rebuild_rows: Optional[int] = None
    rebuild_parallel: int = 1
    rebuild_throttle_ms: float = 0.0
    lse_per_gb: float = 0.0
    scrub_interval_ms: Optional[float] = None
    scrub_throttle_ms: float = 0.0
    clients: int = 0
    size_kb: int = 8
    is_write: bool = False
    # Post-v1 (hash-omitted at defaults, see _V1_SPEC_OPTIONAL):
    # per-operation transient I/O errors and the integrity oracle.
    transient_io_rate: float = 0.0
    oracle: bool = False

    def __post_init__(self):
        if self.trial < 0:
            raise ConfigurationError(f"negative trial index {self.trial}")
        if self.clients < 0:
            raise ConfigurationError(
                f"negative client count {self.clients}"
            )
        # Fault/media/scrub validation lives in FaultScenario; build one
        # now so bad specs fail at construction, not mid-campaign.
        self.scenario()

    def scenario(self):
        """The :class:`~repro.faults.scenario.FaultScenario` this encodes."""
        from repro.faults.scenario import FaultScenario

        return FaultScenario(
            mttf_hours=self.mttf_hours,
            fault_seed=self.seed * 1_000_003 + self.trial,
            max_faults=self.faults,
            degraded_dwell_ms=self.degraded_dwell_ms,
            rebuild_rows=self.rebuild_rows,
            rebuild_parallel=self.rebuild_parallel,
            rebuild_throttle_ms=self.rebuild_throttle_ms,
            lse_per_gb=self.lse_per_gb,
            scrub_interval_ms=self.scrub_interval_ms,
            scrub_throttle_ms=self.scrub_throttle_ms,
            transient_io_rate=self.transient_io_rate,
        )


@dataclass(frozen=True)
class CrashTrialSpec:
    """One controller-crash + recovery trial (``repro crash``).

    Closed-loop clients write until the crash fires — at a scripted
    simulation time (``crash_time_ms``), at a scripted write-plan phase
    boundary (``crash_boundary``), or at a boundary drawn from the
    ``crash_seed`` stream; exactly one must be set.  ``journal=True``
    replays the NVRAM dirty-stripe log on restart; ``journal=False`` is
    the full-sweep baseline, with the sweep bounded by ``resync_rows``
    the way rebuild sweeps are.  ``fail_disk_at_ms`` optionally fails a
    disk first, so the crash lands on a degraded array and dirty stripes
    on the failed disk's parity chains surface as data loss.

    >>> spec = CrashTrialSpec(layout="pddl", crash_boundary=3)
    >>> spec_hash(spec) == spec_hash(CrashTrialSpec(layout="pddl",
    ...                                             crash_boundary=3))
    True
    """

    kind: ClassVar[str] = "crash-trial"

    layout: str
    disks: int = 13
    width: Optional[int] = None
    clients: int = 4
    size_kb: int = 8
    seed: int = 0
    journal: bool = True
    journal_latency_ms: float = 0.05
    crash_time_ms: Optional[float] = None
    crash_boundary: Optional[int] = None
    crash_seed: Optional[int] = None
    crash_max_boundary: int = 64
    fail_disk_at_ms: Optional[float] = None
    failed_disk: int = 0
    transient_io_rate: float = 0.0
    restart_delay_ms: float = 10.0
    resync_rows: int = 26
    resync_parallel: int = 1
    max_pre_samples: int = 200
    post_samples: int = 50

    def __post_init__(self):
        if self.clients < 1:
            raise ConfigurationError(f"need >= 1 client, got {self.clients}")
        configured = sum(
            x is not None
            for x in (self.crash_time_ms, self.crash_boundary, self.crash_seed)
        )
        if configured != 1:
            raise ConfigurationError(
                "set exactly one of crash_time_ms, crash_boundary,"
                f" crash_seed (got {configured})"
            )
        if self.journal_latency_ms < 0:
            raise ConfigurationError(
                f"negative journal latency {self.journal_latency_ms}"
            )
        if self.fail_disk_at_ms is not None and self.fail_disk_at_ms < 0:
            raise ConfigurationError(
                f"negative fault time {self.fail_disk_at_ms}"
            )
        if not 0 <= self.failed_disk < self.disks:
            raise ConfigurationError(f"bad failed disk {self.failed_disk}")
        if not 0.0 <= self.transient_io_rate < 1.0:
            raise ConfigurationError(
                "transient I/O rate must be in [0, 1), got"
                f" {self.transient_io_rate}"
            )
        if self.restart_delay_ms < 0:
            raise ConfigurationError(
                f"negative restart delay {self.restart_delay_ms}"
            )
        if self.resync_rows < 1:
            raise ConfigurationError(
                f"need >= 1 resync row, got {self.resync_rows}"
            )
        if self.resync_parallel < 1:
            raise ConfigurationError("need >= 1 resync slot")
        if self.max_pre_samples < 1 or self.post_samples < 0:
            raise ConfigurationError("need positive sample bounds")


@dataclass(frozen=True)
class NemesisTrialSpec:
    """One composed-fault nemesis trial (``repro nemesis``).

    The schedule is not stored in the spec — it is re-drawn from
    ``seed * 1_000_003 + trial`` (the campaign trial-stream convention)
    with the ``max_*`` envelope below, so the spec stays a flat record
    of JSON scalars and a failing trial reproduces from its index alone.
    Every trial runs with the integrity oracle attached; there is no
    knob to turn it off — the silent-corruption invariant *is* the
    experiment.

    >>> spec = NemesisTrialSpec(layout="pddl", trial=7)
    >>> spec_hash(spec) == spec_hash(NemesisTrialSpec(layout="pddl",
    ...                                               trial=7))
    True
    """

    kind: ClassVar[str] = "nemesis-trial"

    layout: str
    disks: int = 13
    width: Optional[int] = None
    trial: int = 0
    seed: int = 0
    # Schedule envelope (see NemesisSchedule.draw).
    horizon_ms: float = 20000.0
    max_disk_failures: int = 2
    max_crashes: int = 2
    max_lse_bursts: int = 2
    max_storms: int = 1
    max_scrub_windows: int = 1
    storm_rate: float = 0.02
    # Workload and repair knobs (lifecycle/crash-trial conventions).
    clients: int = 2
    size_kb: int = 8
    is_write: bool = True
    rows: int = 26
    degraded_dwell_ms: float = 1500.0
    rebuild_parallel: int = 1
    journal: bool = True
    journal_latency_ms: float = 0.05
    scrub_interval_ms: Optional[float] = 400.0
    scrub_throttle_ms: float = 0.0
    restart_delay_ms: float = 10.0
    max_samples: int = 240
    # Post-v1 (hash-omitted at defaults, see _V1_SPEC_OPTIONAL):
    # ambient transient errors, up-front seeded latent sector errors,
    # and fail-slow (gray failure) windows in the drawn schedule.
    transient_io_rate: float = 0.0
    lse_per_gb: float = 0.0
    max_failslow: int = 0
    failslow_multiplier: float = 5.0
    # Post-v1: corruption-burst windows in the drawn schedule, plus the
    # checksum defense (validation + parity-audit scrub) against them.
    max_corruption_bursts: int = 0
    corruption_rate: float = 0.05
    checksums: bool = False

    def __post_init__(self):
        if self.trial < 0:
            raise ConfigurationError(f"negative trial index {self.trial}")
        if self.clients < 0:
            raise ConfigurationError(
                f"negative client count {self.clients}"
            )
        if self.max_samples < 1:
            raise ConfigurationError("need >= 1 sample")
        if not 0.0 <= self.transient_io_rate < 1.0:
            raise ConfigurationError(
                "transient I/O rate must be in [0, 1), got"
                f" {self.transient_io_rate}"
            )
        # Envelope validation (ranges, rates, windows) lives in
        # NemesisSchedule.draw/validate; draw the schedule now so bad
        # specs fail at construction, not mid-campaign in a worker.
        self.schedule()

    def schedule(self):
        """The :class:`~repro.faults.nemesis.NemesisSchedule` this encodes."""
        from repro.faults.nemesis import NemesisSchedule

        return NemesisSchedule.draw(
            seed=self.seed * 1_000_003 + self.trial,
            n_disks=self.disks,
            rows=self.rows,
            horizon_ms=self.horizon_ms,
            max_disk_failures=self.max_disk_failures,
            max_crashes=self.max_crashes,
            max_lse_bursts=self.max_lse_bursts,
            max_storms=self.max_storms,
            max_scrub_windows=self.max_scrub_windows,
            storm_rate=self.storm_rate,
            max_failslow=self.max_failslow,
            failslow_multiplier=self.failslow_multiplier,
            max_corruption_bursts=self.max_corruption_bursts,
            corruption_rate=self.corruption_rate,
        )


@dataclass(frozen=True)
class OpenLoopSpec:
    """One open-loop traffic trial (``repro traffic``).

    Seeded arrivals (Poisson / bursty MMPP / diurnal trace) are offered
    to the array through a bounded admission queue; the trial measures
    the offer-to-completion tail (p99/p999/max), SLO time-in-violation,
    shed counts, and the overload detector's verdict.  ``phase`` picks
    the array state the traffic sees: fault-free, degraded (rebuild not
    started), or mid-rebuild.  Whole-new kind, so no
    ``_V1_SPEC_OPTIONAL`` entry is needed: there are no pre-existing
    hashes to preserve.

    >>> spec = OpenLoopSpec(layout="pddl", rate_per_s=400.0)
    >>> spec_hash(spec) == spec_hash(OpenLoopSpec(layout="pddl",
    ...                                           rate_per_s=400.0))
    True
    """

    kind: ClassVar[str] = "openloop"

    layout: str
    rate_per_s: float = 300.0
    arrival: str = "poisson"
    phase: str = "ff"
    arrivals: int = 300
    seed: int = 0
    disks: int = 13
    width: Optional[int] = None
    size_kb: int = 8
    is_write: bool = False
    # Arrival-model shape knobs (MMPP / trace only).
    burst_ratio: float = 6.0
    burst_fraction: float = 0.15
    burst_dwell_ms: float = 120.0
    trace_period_ms: float = 600.0
    # Fault machinery (non-``ff`` phases).
    failed_disk: int = 0
    degraded_dwell_ms: float = 40.0
    rebuild_parallel: int = 1
    rebuild_throttle_ms: float = 4.0
    # Admission and SLO accounting.
    queue_depth: int = 64
    service_slots: int = 12
    slo_p99_ms: float = 120.0
    slo_p999_ms: float = 250.0
    window_ms: float = 100.0
    overload_windows: int = 3
    horizon_ms: float = 30000.0
    timelines: bool = False

    def __post_init__(self):
        # Phase / arrival-model / queue / SLO validation lives with the
        # traffic machinery; exercise the constructors now so bad specs
        # fail at construction, not mid-sweep in a worker.
        from repro.experiments.openloop import ARRIVALS, PHASES
        from repro.traffic.sla import SloPolicy

        if self.phase not in PHASES:
            raise ConfigurationError(
                f"phase must be one of {PHASES}, got {self.phase!r}"
            )
        if self.arrival not in ARRIVALS:
            raise ConfigurationError(
                f"arrival model must be one of {ARRIVALS},"
                f" got {self.arrival!r}"
            )
        if self.rate_per_s <= 0:
            raise ConfigurationError(
                f"arrival rate must be positive, got {self.rate_per_s}"
            )
        if self.arrivals < 1:
            raise ConfigurationError(
                f"need >= 1 arrival, got {self.arrivals}"
            )
        if self.queue_depth < 1 or self.service_slots < 1:
            raise ConfigurationError("need positive queue geometry")
        if self.window_ms <= 0 or self.overload_windows < 1:
            raise ConfigurationError("need positive detection windows")
        if self.horizon_ms <= 0:
            raise ConfigurationError(
                f"horizon must be positive, got {self.horizon_ms}"
            )
        if not 0 <= self.failed_disk < self.disks:
            raise ConfigurationError(
                f"bad failed disk {self.failed_disk}"
            )
        SloPolicy(p99_ms=self.slo_p99_ms, p999_ms=self.slo_p999_ms)


@dataclass(frozen=True)
class FailSlowTrialSpec:
    """One fail-slow defense trial (``repro failslow``).

    Open-loop Poisson traffic hits an array that is rebuilding one
    failed disk while a *different* disk serves every operation
    ``slow_multiplier`` x slower (the gray failure).  ``defense``
    switches the tail-tolerance mechanisms: ``none``, ``hedge`` (hedged
    degraded-reads plus the slow-disk detector), ``adaptive``
    (SLO-feedback AIMD rebuild throttling), or ``both``.  Whole-new
    kind, so no ``_V1_SPEC_OPTIONAL`` entry is needed: there are no
    pre-existing hashes to preserve.

    >>> spec = FailSlowTrialSpec(layout="pddl", defense="hedge")
    >>> spec_hash(spec) == spec_hash(FailSlowTrialSpec(layout="pddl",
    ...                                                defense="hedge"))
    True
    """

    kind: ClassVar[str] = "failslow"

    layout: str
    defense: str = "none"
    rate_per_s: float = 40.0
    arrivals: int = 1000
    seed: int = 2
    disks: int = 13
    width: Optional[int] = None
    size_kb: int = 8
    # The gray failure and the scripted fault.
    failed_disk: int = 0
    slow_disk: int = 1
    slow_multiplier: float = 5.0
    degraded_dwell_ms: float = 40.0
    # Rebuild pacing (the static baseline the AIMD throttle replaces).
    rebuild_rows: Optional[int] = 300
    rebuild_parallel: int = 4
    rebuild_throttle_ms: float = 16.0
    # Defense knobs.
    hedge_deferral_ms: float = 30.0
    adaptive_max_ms: float = 512.0
    # Admission and SLO accounting.
    queue_depth: int = 64
    service_slots: int = 12
    slo_p99_ms: float = 250.0
    slo_p999_ms: float = 1500.0
    window_ms: float = 100.0
    horizon_ms: float = 120000.0

    def __post_init__(self):
        # Exercise the defense/policy constructors now so bad specs
        # fail at construction, not mid-sweep in a worker.
        from repro.array.controller import HedgePolicy
        from repro.experiments.failslow import DEFENSES
        from repro.traffic.sla import SloPolicy

        if self.defense not in DEFENSES:
            raise ConfigurationError(
                f"defense must be one of {DEFENSES},"
                f" got {self.defense!r}"
            )
        if self.rate_per_s <= 0:
            raise ConfigurationError(
                f"arrival rate must be positive, got {self.rate_per_s}"
            )
        if self.arrivals < 1:
            raise ConfigurationError(
                f"need >= 1 arrival, got {self.arrivals}"
            )
        if not 0 <= self.failed_disk < self.disks:
            raise ConfigurationError(
                f"bad failed disk {self.failed_disk}"
            )
        if not 0 <= self.slow_disk < self.disks:
            raise ConfigurationError(f"bad slow disk {self.slow_disk}")
        if self.slow_disk == self.failed_disk:
            raise ConfigurationError(
                "the fail-slow disk must differ from the failed disk,"
                f" both are {self.slow_disk}"
            )
        if self.slow_multiplier <= 1.0:
            raise ConfigurationError(
                f"fail-slow multiplier must exceed 1.0,"
                f" got {self.slow_multiplier}"
            )
        if self.rebuild_parallel < 1:
            raise ConfigurationError(
                f"need >= 1 rebuild slot, got {self.rebuild_parallel}"
            )
        if self.rebuild_throttle_ms < 0 or self.adaptive_max_ms < 0:
            raise ConfigurationError("throttle gaps must be >= 0")
        if self.queue_depth < 1 or self.service_slots < 1:
            raise ConfigurationError("need positive queue geometry")
        if self.window_ms <= 0:
            raise ConfigurationError(
                f"window must be positive, got {self.window_ms}"
            )
        if self.horizon_ms <= 0:
            raise ConfigurationError(
                f"horizon must be positive, got {self.horizon_ms}"
            )
        SloPolicy(p99_ms=self.slo_p99_ms, p999_ms=self.slo_p999_ms)
        HedgePolicy(deferral_ms=self.hedge_deferral_ms)


@dataclass(frozen=True)
class CorruptionTrialSpec:
    """One silent-corruption defense trial (``repro corruption``).

    Open-loop Poisson traffic over a small, re-read working set while a
    seeded :class:`~repro.faults.corruption.CorruptionModel` loses and
    misdirects writes.  ``defense`` switches the protection stack one
    layer at a time: ``none``, ``checksum`` (per-unit checksum+version
    validation on every read path), ``verify`` (checksum plus read-back
    after write), or ``audit`` (checksum plus the parity-audit scrub).
    Whole-new kind, so no ``_V1_SPEC_OPTIONAL`` entry is needed: there
    are no pre-existing hashes to preserve.

    >>> spec = CorruptionTrialSpec(layout="pddl", defense="checksum")
    >>> spec_hash(spec) == spec_hash(CorruptionTrialSpec(
    ...     layout="pddl", defense="checksum"))
    True
    """

    kind: ClassVar[str] = "corruption"

    layout: str
    defense: str = "none"
    trial: int = 0
    seed: int = 0
    # The corruption fault model (per-write draw rates, Poisson rot).
    lost_rate: float = 0.02
    misdirected_rate: float = 0.01
    bitrot_cells: float = 0.0
    # Open-loop workload over the re-read working set.
    rate_per_s: float = 60.0
    arrivals: int = 300
    read_fraction: float = 0.5
    span_units: int = 64
    size_kb: int = 8
    disks: int = 13
    width: Optional[int] = None
    # Optional mid-trial disk failure; the array stays degraded.
    fail_at_ms: Optional[float] = None
    failed_disk: int = 0
    # Defense knobs.
    checksum_latency_ms: float = 0.02
    scrub_interval_ms: float = 120.0
    # Admission geometry and the runaway backstop.
    queue_depth: int = 64
    service_slots: int = 12
    horizon_ms: float = 60000.0

    def __post_init__(self):
        from repro.experiments.corruption import DEFENSES

        if self.defense not in DEFENSES:
            raise ConfigurationError(
                f"defense must be one of {DEFENSES},"
                f" got {self.defense!r}"
            )
        if self.trial < 0:
            raise ConfigurationError(f"negative trial index {self.trial}")
        for name, rate in (
            ("lost_rate", self.lost_rate),
            ("misdirected_rate", self.misdirected_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if self.bitrot_cells < 0:
            raise ConfigurationError(
                f"negative bitrot_cells {self.bitrot_cells}"
            )
        if self.rate_per_s <= 0:
            raise ConfigurationError(
                f"arrival rate must be positive, got {self.rate_per_s}"
            )
        if self.arrivals < 1:
            raise ConfigurationError(
                f"need >= 1 arrival, got {self.arrivals}"
            )
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError(
                f"read fraction must be in [0, 1],"
                f" got {self.read_fraction}"
            )
        if self.span_units < 1:
            raise ConfigurationError(
                f"need >= 1 span unit, got {self.span_units}"
            )
        if not 0 <= self.failed_disk < self.disks:
            raise ConfigurationError(
                f"bad failed disk {self.failed_disk}"
            )
        if self.fail_at_ms is not None and self.fail_at_ms < 0:
            raise ConfigurationError(
                f"negative fault time {self.fail_at_ms}"
            )
        if self.checksum_latency_ms < 0:
            raise ConfigurationError(
                f"negative checksum latency {self.checksum_latency_ms}"
            )
        if self.scrub_interval_ms <= 0:
            raise ConfigurationError(
                f"scrub interval must be > 0, got {self.scrub_interval_ms}"
            )
        if self.queue_depth < 1 or self.service_slots < 1:
            raise ConfigurationError("need positive queue geometry")
        if self.horizon_ms <= 0:
            raise ConfigurationError(
                f"horizon must be positive, got {self.horizon_ms}"
            )


Spec = Union[
    ExperimentSpec,
    Table1Spec,
    LifecycleSpec,
    CampaignTrialSpec,
    CrashTrialSpec,
    NemesisTrialSpec,
    OpenLoopSpec,
    FailSlowTrialSpec,
    CorruptionTrialSpec,
]

_SPEC_TYPES = {
    cls.kind: cls
    for cls in (
        ExperimentSpec,
        Table1Spec,
        LifecycleSpec,
        CampaignTrialSpec,
        CrashTrialSpec,
        NemesisTrialSpec,
        OpenLoopSpec,
        FailSlowTrialSpec,
        CorruptionTrialSpec,
    )
}


def spec_to_dict(spec: Spec) -> dict:
    """Flat JSON-able form, ``kind`` included.

    Post-v1 fields are omitted while at their inactive defaults so old
    specs keep their original hashes (see ``_V1_SPEC_OPTIONAL``).
    """
    data = asdict(spec)
    optional = _V1_SPEC_OPTIONAL.get(spec.kind)
    if optional:
        for name, default in optional.items():
            if data[name] == default:
                del data[name]
    data["kind"] = spec.kind
    return data


def spec_from_dict(data: dict) -> Spec:
    """Inverse of :func:`spec_to_dict` (used to replay cached sweeps)."""
    data = dict(data)
    kind = data.pop("kind")
    cls = _SPEC_TYPES.get(kind)
    if cls is None:
        raise ConfigurationError(f"unknown spec kind {kind!r}")
    names = {f.name for f in fields(cls)}
    unknown = set(data) - names
    if unknown:
        raise ConfigurationError(f"unknown spec fields {sorted(unknown)}")
    return cls(**data)


def spec_hash(spec: Spec) -> str:
    """Stable content hash — the cache key."""
    payload = {"schema": SPEC_SCHEMA_VERSION}
    payload.update(spec_to_dict(spec))
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
