"""Experiment specifications: one sweep point as pure data.

A spec is a frozen dataclass of JSON-scalar fields, so it pickles across
``multiprocessing`` workers, serializes into cache files, and hashes
stably: :func:`spec_hash` is SHA-256 over the canonical JSON of the
fields plus a schema version, identical across process restarts and
platforms.  Bump ``SPEC_SCHEMA_VERSION`` whenever simulation semantics
change so stale cache entries stop matching.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import ClassVar, Optional, Union

from repro.array.raidops import ArrayMode
from repro.errors import ConfigurationError

#: Part of every content hash; bump on any change that alters results.
SPEC_SCHEMA_VERSION = 1

#: Canonical short names for the array modes (CLI and spec encoding).
MODES = {
    "ff": ArrayMode.FAULT_FREE,
    "f1": ArrayMode.DEGRADED,
    "post": ArrayMode.POST_RECONSTRUCTION,
}


def mode_name(mode: ArrayMode) -> str:
    """The spec encoding of an :class:`ArrayMode`."""
    for name, value in MODES.items():
        if value is mode:
            return name
    raise ConfigurationError(f"unknown array mode {mode!r}")


@dataclass(frozen=True)
class ExperimentSpec:
    """One response-time simulation point (Figures 5/6/8/9/...).

    ``width=None`` follows Table 2 (RAID-5 stripes the whole array, the
    declustered layouts use the paper's stripe width); ``max_samples``
    is the run length, ``timelines`` adds per-disk busy/queue-depth
    series to the result record.

    >>> spec = ExperimentSpec(layout="pddl", size_kb=96, clients=8)
    >>> spec_hash(spec) == spec_hash(ExperimentSpec(layout="pddl",
    ...                                             size_kb=96, clients=8))
    True
    """

    kind: ClassVar[str] = "response"

    layout: str
    disks: int = 13
    width: Optional[int] = None
    size_kb: int = 8
    is_write: bool = False
    clients: int = 1
    mode: str = "ff"
    failed_disk: int = 0
    seed: int = 0
    max_samples: int = 300
    warmup: int = 50
    use_stopping_rule: bool = False
    coalesce: bool = True
    timelines: bool = False

    def __post_init__(self):
        if self.mode not in MODES:
            raise ConfigurationError(
                f"mode must be one of {sorted(MODES)}, got {self.mode!r}"
            )
        if self.clients < 1:
            raise ConfigurationError(f"need >= 1 client, got {self.clients}")
        if self.max_samples < 1:
            raise ConfigurationError("need >= 1 sample")


@dataclass(frozen=True)
class Table1Spec:
    """One Table 1 cell: the base-permutation search for (k, g)."""

    kind: ClassVar[str] = "table1"

    k: int
    g: int
    seed: int = 0
    restarts: int = 8
    max_steps: int = 1500
    p_max: int = 3

    def __post_init__(self):
        if self.k < 2 or self.g < 1:
            raise ConfigurationError(f"bad Table 1 cell ({self.k}, {self.g})")


@dataclass(frozen=True)
class LifecycleSpec:
    """One reconstruction-under-load lifecycle run (Figures 8-14, 18).

    Exactly one of ``fault_time_ms`` (scripted failure) or ``mttf_hours``
    (seeded exponential lifetimes, earliest disk fails) selects the
    fault; the remaining fields parameterize the rebuild sweep and the
    per-mode sampling bounds.  ``rebuild_throttle_ms`` is the idle time
    per rebuild slot between steps — the offered-load knob behind the
    rebuild-duration-vs-load curves.

    >>> spec = LifecycleSpec(layout="pddl", fault_time_ms=500.0)
    >>> spec_hash(spec) == spec_hash(LifecycleSpec(layout="pddl",
    ...                                            fault_time_ms=500.0))
    True
    """

    kind: ClassVar[str] = "lifecycle"

    layout: str
    disks: int = 13
    width: Optional[int] = None
    size_kb: int = 8
    is_write: bool = False
    clients: int = 4
    seed: int = 0
    failed_disk: int = 0
    fault_time_ms: Optional[float] = None
    mttf_hours: Optional[float] = None
    fault_seed: int = 0
    degraded_dwell_ms: float = 0.0
    rebuild_rows: Optional[int] = None
    rebuild_parallel: int = 1
    rebuild_throttle_ms: float = 0.0
    post_samples: int = 100
    max_samples: int = 4000
    timelines: bool = False

    def __post_init__(self):
        if self.clients < 1:
            raise ConfigurationError(f"need >= 1 client, got {self.clients}")
        if self.max_samples < 1 or self.post_samples < 1:
            raise ConfigurationError("need positive sample bounds")
        # Fault/rebuild field validation (exactly-one-of, ranges) lives
        # in FaultScenario; build one now so bad specs fail at
        # construction, not mid-sweep in a worker.
        self.scenario()

    def scenario(self):
        """The :class:`~repro.faults.scenario.FaultScenario` this encodes."""
        from repro.faults.scenario import FaultScenario

        return FaultScenario(
            failed_disk=self.failed_disk,
            fault_time_ms=self.fault_time_ms,
            mttf_hours=self.mttf_hours,
            fault_seed=self.fault_seed,
            degraded_dwell_ms=self.degraded_dwell_ms,
            rebuild_rows=self.rebuild_rows,
            rebuild_parallel=self.rebuild_parallel,
            rebuild_throttle_ms=self.rebuild_throttle_ms,
        )


@dataclass(frozen=True)
class CampaignTrialSpec:
    """One multi-fault reliability trial (campaign Monte-Carlo sample).

    Each trial draws ``faults`` exponential disk lifetimes (MTTF
    ``mttf_hours``) from streams seeded by ``seed * 1_000_003 + trial``
    — a large odd multiplier keeps per-trial streams disjoint across
    campaign seeds — and simulates the repair arc to completion or data
    loss.  ``clients = 0`` (the default) runs the arc unloaded; positive
    values add the lifecycle experiments' closed-loop clients.

    >>> spec = CampaignTrialSpec(layout="pddl", trial=7)
    >>> spec_hash(spec) == spec_hash(CampaignTrialSpec(layout="pddl",
    ...                                                trial=7))
    True
    """

    kind: ClassVar[str] = "campaign-trial"

    layout: str
    disks: int = 13
    width: Optional[int] = None
    trial: int = 0
    seed: int = 0
    mttf_hours: float = 1000.0
    faults: int = 2
    degraded_dwell_ms: float = 0.0
    rebuild_rows: Optional[int] = None
    rebuild_parallel: int = 1
    rebuild_throttle_ms: float = 0.0
    lse_per_gb: float = 0.0
    scrub_interval_ms: Optional[float] = None
    scrub_throttle_ms: float = 0.0
    clients: int = 0
    size_kb: int = 8
    is_write: bool = False

    def __post_init__(self):
        if self.trial < 0:
            raise ConfigurationError(f"negative trial index {self.trial}")
        if self.clients < 0:
            raise ConfigurationError(
                f"negative client count {self.clients}"
            )
        # Fault/media/scrub validation lives in FaultScenario; build one
        # now so bad specs fail at construction, not mid-campaign.
        self.scenario()

    def scenario(self):
        """The :class:`~repro.faults.scenario.FaultScenario` this encodes."""
        from repro.faults.scenario import FaultScenario

        return FaultScenario(
            mttf_hours=self.mttf_hours,
            fault_seed=self.seed * 1_000_003 + self.trial,
            max_faults=self.faults,
            degraded_dwell_ms=self.degraded_dwell_ms,
            rebuild_rows=self.rebuild_rows,
            rebuild_parallel=self.rebuild_parallel,
            rebuild_throttle_ms=self.rebuild_throttle_ms,
            lse_per_gb=self.lse_per_gb,
            scrub_interval_ms=self.scrub_interval_ms,
            scrub_throttle_ms=self.scrub_throttle_ms,
        )


Spec = Union[ExperimentSpec, Table1Spec, LifecycleSpec, CampaignTrialSpec]

_SPEC_TYPES = {
    cls.kind: cls
    for cls in (ExperimentSpec, Table1Spec, LifecycleSpec, CampaignTrialSpec)
}


def spec_to_dict(spec: Spec) -> dict:
    """Flat JSON-able form, ``kind`` included."""
    data = asdict(spec)
    data["kind"] = spec.kind
    return data


def spec_from_dict(data: dict) -> Spec:
    """Inverse of :func:`spec_to_dict` (used to replay cached sweeps)."""
    data = dict(data)
    kind = data.pop("kind")
    cls = _SPEC_TYPES.get(kind)
    if cls is None:
        raise ConfigurationError(f"unknown spec kind {kind!r}")
    names = {f.name for f in fields(cls)}
    unknown = set(data) - names
    if unknown:
        raise ConfigurationError(f"unknown spec fields {sorted(unknown)}")
    return cls(**data)


def spec_hash(spec: Spec) -> str:
    """Stable content hash — the cache key."""
    payload = {"schema": SPEC_SCHEMA_VERSION}
    payload.update(spec_to_dict(spec))
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
