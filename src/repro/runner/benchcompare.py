"""Bench-regression gate: compare ``BENCH_*.json`` reports across history.

Every simulated quantity in the committed baselines is deterministic —
same specs, same seeds, same event loop — so a *level shift* between two
reports with matching configs is a behaviour change, not noise, and CI
can gate on byte-level agreement of the simulated numbers.  Wall-clock
quantities (the hotpath bench's ``wall_s``/``events_per_s``) are the one
exception and get a generous machine-tolerance instead.

Three entry points, all behind ``repro bench --compare``:

:func:`check_invariants`
    Self-check one report: internal consistency (counts add up, CIs
    bracket their estimate) plus the hard oracle invariants (zero
    corruption events, zero silent-corruption trials).  Run against the
    committed baselines in CI so a hand-edited or truncated report
    fails loudly.
:func:`compare_reports`
    Level-shift detection between a baseline and a candidate of the
    same bench kind.  Differences are attributed to the commit range
    between the two reports' ``provenance.source_version`` stamps.
:func:`diff_reports`
    Deep equality modulo provenance (``--exact``): what CI uses instead
    of ``cmp`` to compare a fresh run against a committed baseline,
    since the version stamp legitimately differs across commits.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.errors import RunnerError

#: Bench kinds with committed baselines (BENCH_<kind>.json at the root).
KNOWN_BENCHES = (
    "campaign",
    "corruption",
    "crash",
    "failslow",
    "hotpath",
    "lifecycle",
    "nemesis",
    "traffic",
)

#: Fractional slowdown tolerated for wall-clock rates before the gate
#: trips (CI machines vary; the simulated quantities carry the gate).
WALL_CLOCK_TOLERANCE = 0.5


def load_report(path: str) -> dict:
    """One ``BENCH_*.json`` report, or a clean error."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as exc:
        raise RunnerError(f"cannot read bench report {path!r}: {exc}")
    except ValueError as exc:
        raise RunnerError(f"bench report {path!r} is not JSON: {exc}")
    if not isinstance(report, dict) or "bench" not in report:
        raise RunnerError(
            f"bench report {path!r} has no 'bench' discriminator"
        )
    return report


def _version(report: dict) -> str:
    return report.get("provenance", {}).get("source_version", "unversioned")


def _check_campaign(report: dict, problems: List[str]) -> None:
    summary = report["summary"]
    trials = summary["trials"]
    if trials != len(report["trials"]):
        problems.append(
            f"summary says {trials} trials but {len(report['trials'])}"
            " are recorded"
        )
    if not 0 <= summary["losses"] <= trials:
        problems.append(f"losses {summary['losses']} outside [0, {trials}]")
    if not 0.0 <= summary["loss_probability"] <= 1.0:
        problems.append(
            f"loss probability {summary['loss_probability']} outside [0, 1]"
        )
    if not summary["ci_low"] <= summary["loss_probability"] <= summary["ci_high"]:
        problems.append(
            f"CI [{summary['ci_low']}, {summary['ci_high']}] does not"
            f" bracket the estimate {summary['loss_probability']}"
        )
    oracle = report.get("oracle")
    if oracle is not None and oracle["corruption_events"] != 0:
        problems.append(
            f"{oracle['corruption_events']} silent corruption event(s)"
        )


def _check_crash(report: dict, problems: List[str]) -> None:
    summary = report["summary"]
    if summary["corruption_events"] != 0:
        problems.append(
            f"{summary['corruption_events']} silent corruption event(s)"
        )
    if summary["trials"] != len(report["trials"]):
        problems.append(
            f"summary says {summary['trials']} trials but"
            f" {len(report['trials'])} are recorded"
        )
    if summary["resync_speedup"] <= 1.0:
        problems.append(
            "journaled resync no faster than the full sweep"
            f" (speedup {summary['resync_speedup']})"
        )
    for trial in report["trials"]:
        if trial["corruption_events"] != 0:
            problems.append(
                f"trial {trial['layout']}/{trial['clients']} clients has"
                f" {trial['corruption_events']} corruption event(s)"
            )


def _check_nemesis(report: dict, problems: List[str]) -> None:
    summary = report["summary"]
    if summary["silent_corruption"] != 0:
        problems.append(
            f"{summary['silent_corruption']} SILENT_CORRUPTION trial(s):"
            f" {summary['failing_trials']}"
        )
    if summary["corruption_events"] != 0:
        problems.append(
            f"{summary['corruption_events']} oracle corruption event(s)"
        )
    counted = (
        summary["survived"]
        + summary["data_loss"]
        + summary["silent_corruption"]
    )
    if counted != summary["trials"]:
        problems.append(
            f"outcomes sum to {counted}, not {summary['trials']}"
        )
    if summary["trials"] != len(report["trials"]):
        problems.append(
            f"summary says {summary['trials']} trials but"
            f" {len(report['trials'])} are recorded"
        )


def _check_hotpath(report: dict, problems: List[str]) -> None:
    specs = report["specs"]
    if not specs:
        problems.append("no hotpath specs recorded")
    for entry in specs:
        label = entry["label"]
        if entry["events"] <= 0:
            problems.append(f"{label}: no engine events recorded")
        if entry["wall_s"] <= 0:
            problems.append(f"{label}: non-positive wall clock")
            continue
        implied = entry["events"] / entry["wall_s"]
        reported = entry["events_per_s"]
        if reported <= 0 or abs(implied - reported) > max(1.0, implied * 0.01):
            problems.append(
                f"{label}: events_per_s {reported} inconsistent with"
                f" events/wall_s {implied:.1f}"
            )
    total = report["total"]
    if total["events"] != sum(e["events"] for e in specs):
        problems.append("total.events is not the sum of per-spec events")
    if total["events"] <= 0:
        problems.append("no engine events recorded")
    # Optional sections: a bare run (no --baseline) carries no speedup
    # block, and pre-batching reports carry no campaign_batch block.
    speedup = report.get("speedup")
    if speedup is not None:
        if speedup["total"] <= 0:
            problems.append(f"non-positive speedup {speedup['total']}")
        for label, ratio in speedup.get("per_spec", {}).items():
            if ratio <= 0:
                problems.append(f"{label}: non-positive speedup {ratio}")
    campaign = report.get("campaign_batch")
    if campaign is not None:
        if campaign["trials"] <= 0:
            problems.append("campaign_batch ran no trials")
        if campaign["events"] <= 0:
            problems.append("campaign_batch recorded no events")
        if campaign["batch_speedup"] <= 0:
            problems.append(
                f"non-positive batch speedup {campaign['batch_speedup']}"
            )
    provenance = report.get("provenance")
    if provenance is None:
        problems.append("hotpath report lacks a provenance block")
    elif "sweep_hash" not in provenance:
        problems.append("provenance block lacks sweep_hash")


def _check_lifecycle(report: dict, problems: List[str]) -> None:
    if not report["runs"]:
        problems.append("no lifecycle runs recorded")


def _check_traffic(report: dict, problems: List[str]) -> None:
    summary = report["summary"]
    trials = report["trials"]
    if summary["trials"] != len(trials):
        problems.append(
            f"summary says {summary['trials']} trials but"
            f" {len(trials)} are recorded"
        )
    overloaded = sum(1 for t in trials if t["overloaded"])
    if overloaded != summary["overloaded_trials"]:
        problems.append(
            f"summary says {summary['overloaded_trials']} overloaded"
            f" trial(s) but the trials show {overloaded}"
        )
    for trial in trials:
        label = f"{trial['layout']}/{trial['phase']}@{trial['rate_per_s']}"
        if trial["completed"] + trial["shed"] != trial["offered"]:
            problems.append(
                f"{label}: completed {trial['completed']} + shed"
                f" {trial['shed']} != offered {trial['offered']}"
            )
        tail = trial["tail"]
        if tail["count"]:
            ordered = (
                tail["p50_ms"]
                <= tail["p99_ms"]
                <= tail["p999_ms"]
                <= tail["max_ms"] * 1.05  # bucketed p999 vs exact max
            )
            if not ordered:
                problems.append(f"{label}: tail percentiles out of order")


def _check_failslow(report: dict, problems: List[str]) -> None:
    provenance = report.get("provenance")
    if provenance is None:
        problems.append("failslow report lacks a provenance block")
    elif "sweep_hash" not in provenance:
        problems.append("provenance block lacks sweep_hash")
    summary = report["summary"]
    trials = report["trials"]
    if summary["trials"] != len(trials):
        problems.append(
            f"summary says {summary['trials']} trials but"
            f" {len(trials)} are recorded"
        )
    for trial in trials:
        label = f"{trial['layout']}/{trial['defense']}"
        if trial["completed"] + trial["shed"] != trial["offered"]:
            problems.append(
                f"{label}: completed {trial['completed']} + shed"
                f" {trial['shed']} != offered {trial['offered']}"
            )
        tail = trial["tail"]
        if tail["count"]:
            ordered = (
                tail["p50_ms"]
                <= tail["p99_ms"]
                <= tail["p999_ms"]
                <= tail["max_ms"] * 1.05  # bucketed p999 vs exact max
            )
            if not ordered:
                problems.append(f"{label}: tail percentiles out of order")
        hedging = trial.get("hedging")
        if trial["defense"] in ("hedge", "both"):
            if hedging is None:
                problems.append(f"{label}: hedging defense lacks counters")
            elif hedging["won"] + hedging["lost"] > hedging["launched"]:
                problems.append(
                    f"{label}: hedge wins {hedging['won']} + losses"
                    f" {hedging['lost']} exceed launches"
                    f" {hedging['launched']}"
                )
        elif hedging is not None:
            problems.append(
                f"{label}: hedge counters on a non-hedging defense"
            )
    for layout, entry in summary.get("hedging", {}).items():
        launched, won = entry["launched"], entry["won"]
        if won > launched:
            problems.append(
                f"summary.hedging.{layout}: {won} wins from"
                f" {launched} launches"
            )
        rate = entry["win_rate"]
        if launched and (rate is None or not 0.0 <= rate <= 1.0):
            problems.append(
                f"summary.hedging.{layout}: win rate {rate} outside [0, 1]"
            )


def _check_corruption(report: dict, problems: List[str]) -> None:
    provenance = report.get("provenance")
    if provenance is None:
        problems.append("corruption report lacks a provenance block")
    elif "sweep_hash" not in provenance:
        problems.append("provenance block lacks sweep_hash")
    summary = report["summary"]
    trials = report["trials"]
    if summary["trials"] != len(trials):
        problems.append(
            f"summary says {summary['trials']} trials but"
            f" {len(trials)} are recorded"
        )
    # The defense invariant the whole bench exists to assert: no
    # checksummed tier ever serves corrupt data as good.
    if summary["defended_silent_total"] != 0:
        problems.append(
            f"{summary['defended_silent_total']} silent corruption"
            " event(s) served by defended tiers"
        )
    for defense, count in summary["silent_by_defense"].items():
        if defense != "none" and count != 0:
            problems.append(
                f"defense {defense!r} served {count} silent"
                " corruption event(s)"
            )
    for trial in trials:
        label = f"{trial['layout']}/{trial['defense']}#{trial['trial']}"
        if trial["completed"] + trial["shed"] != trial["offered"]:
            problems.append(
                f"{label}: completed {trial['completed']} + shed"
                f" {trial['shed']} != offered {trial['offered']}"
            )
        ledger = trial["corruption"]
        if ledger["silent_total"] != sum(ledger["silent"].values()):
            problems.append(
                f"{label}: silent_total {ledger['silent_total']}"
                " is not the sum of the per-kind silent ledger"
            )
        if trial["defense"] != "none":
            if ledger["silent_total"] != 0:
                problems.append(
                    f"{label}: defended trial served"
                    f" {ledger['silent_total']} silent corruption"
                    " event(s)"
                )
            if trial["classification"] == "silent_corruption":
                problems.append(
                    f"{label}: defended trial classified"
                    " silent_corruption"
                )


_CHECKERS = {
    "campaign": _check_campaign,
    "corruption": _check_corruption,
    "crash": _check_crash,
    "nemesis": _check_nemesis,
    "hotpath": _check_hotpath,
    "lifecycle": _check_lifecycle,
    "traffic": _check_traffic,
    "failslow": _check_failslow,
}


def check_invariants(report: dict) -> List[str]:
    """Internal-consistency problems of one report (empty = healthy)."""
    kind = report["bench"]
    checker = _CHECKERS.get(kind)
    if checker is None:
        return [f"unknown bench kind {kind!r}"]
    problems: List[str] = []
    try:
        checker(report, problems)
    except (KeyError, TypeError) as exc:
        problems.append(f"malformed {kind} report: missing {exc}")
    return problems


def _strip_provenance(report: dict) -> dict:
    """A copy with the repo-state-dependent version stamp removed."""
    clean = dict(report)
    provenance = clean.get("provenance")
    if isinstance(provenance, dict):
        provenance = dict(provenance)
        provenance.pop("source_version", None)
        clean["provenance"] = provenance
    return clean


def _walk_diff(a, b, path: str, out: List[str], limit: int) -> None:
    if len(out) >= limit:
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            where = f"{path}.{key}" if path else key
            if key not in a:
                out.append(f"{where}: only in candidate")
            elif key not in b:
                out.append(f"{where}: only in baseline")
            else:
                _walk_diff(a[key], b[key], where, out, limit)
            if len(out) >= limit:
                return
        return
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            out.append(f"{path}: {len(a)} vs {len(b)} entries")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            _walk_diff(x, y, f"{path}[{i}]", out, limit)
            if len(out) >= limit:
                return
        return
    if a != b:
        out.append(f"{path}: {a!r} vs {b!r}")


def diff_reports(baseline: dict, candidate: dict, limit: int = 20) -> List[str]:
    """Paths where the reports differ, ignoring the version stamp."""
    out: List[str] = []
    _walk_diff(
        _strip_provenance(baseline),
        _strip_provenance(candidate),
        "",
        out,
        limit,
    )
    return out


def _shift(key: str, base, cand, baseline: dict, candidate: dict) -> str:
    return (
        f"{key}: {base!r} ({_version(baseline)})"
        f" -> {cand!r} ({_version(candidate)})"
    )


def _summary_shifts(
    baseline: dict,
    candidate: dict,
    regressions: List[str],
    skip: tuple = (),
) -> None:
    base, cand = baseline["summary"], candidate["summary"]
    for key in sorted(set(base) | set(cand)):
        if key in skip:
            continue
        if base.get(key) != cand.get(key):
            regressions.append(
                _shift(
                    f"summary.{key}",
                    base.get(key),
                    cand.get(key),
                    baseline,
                    candidate,
                )
            )


def _compare_trial_sweep(
    baseline: dict, candidate: dict, regressions: List[str]
) -> None:
    """Summary level shifts plus the first few per-trial differences —
    the comparer for every bench shaped as ``summary`` + ``trials``."""
    _summary_shifts(baseline, candidate, regressions)
    if baseline["trials"] != candidate["trials"]:
        diffs = diff_reports(
            {"trials": baseline["trials"]},
            {"trials": candidate["trials"]},
            limit=5,
        )
        for entry in diffs:
            regressions.append(
                _shift(entry, "baseline", "candidate", baseline, candidate)
            )


def _compare_lifecycle(
    baseline: dict, candidate: dict, regressions: List[str]
) -> None:
    for entry in diff_reports(
        {"runs": baseline["runs"]}, {"runs": candidate["runs"]}, limit=10
    ):
        regressions.append(
            _shift(entry, "baseline", "candidate", baseline, candidate)
        )


def _compare_hotpath(
    baseline: dict, candidate: dict, regressions: List[str]
) -> None:
    base_total, cand_total = baseline["total"], candidate["total"]
    if base_total["events"] != cand_total["events"]:
        regressions.append(
            _shift(
                "total.events",
                base_total["events"],
                cand_total["events"],
                baseline,
                candidate,
            )
        )
    floor = base_total["events_per_s"] * WALL_CLOCK_TOLERANCE
    if cand_total["events_per_s"] < floor:
        regressions.append(
            f"total.events_per_s: {cand_total['events_per_s']:.0f}"
            f" below {floor:.0f}"
            f" ({WALL_CLOCK_TOLERANCE:.0%} of baseline"
            f" {base_total['events_per_s']:.0f};"
            f" {_version(baseline)} -> {_version(candidate)})"
        )


#: kind -> comparer(baseline, candidate, regressions).  A kind missing
#: here is a named problem, never a silent pass — register a comparer
#: alongside the checker when adding a bench.
_COMPARERS = {
    "campaign": _compare_trial_sweep,
    "corruption": _compare_trial_sweep,
    "crash": _compare_trial_sweep,
    "failslow": _compare_trial_sweep,
    "nemesis": _compare_trial_sweep,
    "traffic": _compare_trial_sweep,
    "lifecycle": _compare_lifecycle,
    "hotpath": _compare_hotpath,
}


def compare_reports(baseline: dict, candidate: dict) -> List[str]:
    """Level shifts between two same-kind reports (empty = no change).

    Simulated quantities must match exactly (the whole pipeline is
    seeded and deterministic); wall-clock rates in the hotpath bench
    tolerate :data:`WALL_CLOCK_TOLERANCE` slowdown.  A config mismatch
    is reported as its own problem — the reports measured different
    sweeps, so their numbers are incomparable.  A bench kind with no
    registered comparer is also a problem: an unknown baseline must
    fail the gate, not slide through it.
    """
    regressions: List[str] = []
    if baseline["bench"] != candidate["bench"]:
        return [
            f"bench kinds differ: {baseline['bench']!r} vs"
            f" {candidate['bench']!r} — nothing to compare"
        ]
    kind = baseline["bench"]
    if baseline.get("config") != candidate.get("config"):
        regressions.append(
            "configs differ — these reports measured different sweeps"
        )
        return regressions
    comparer = _COMPARERS.get(kind)
    if comparer is None:
        return [
            f"no comparer registered for bench kind {kind!r}"
            " — cannot gate on this baseline"
        ]
    comparer(baseline, candidate, regressions)
    return regressions


def run_compare(
    baseline_paths: List[str],
    candidate_path: Optional[str] = None,
    exact: bool = False,
) -> List[str]:
    """The ``repro bench --compare`` engine; problem lines (empty = pass).

    With only baselines: invariant self-check of each report.  With a
    candidate: the last baseline is compared against it — level-shift
    detection by default, deep equality modulo provenance with
    ``exact=True``.  Either way every named report is also
    invariant-checked, so a truncated or hand-edited file never passes.
    """
    problems: List[str] = []
    reports = []
    for path in baseline_paths:
        # An unreadable file is one problem among many, not a hard stop:
        # every failing baseline must surface in a single run.
        try:
            report = load_report(path)
        except RunnerError as exc:
            problems.append(str(exc))
            continue
        reports.append((path, report))
        for problem in check_invariants(report):
            problems.append(f"{path}: {problem}")
    if candidate_path is None:
        return problems
    if not reports:
        if problems:
            problems.append(
                "no readable baseline to compare the candidate against"
            )
            return problems
        raise RunnerError("--candidate needs a --baseline to compare against")
    try:
        candidate = load_report(candidate_path)
    except RunnerError as exc:
        problems.append(str(exc))
        return problems
    for problem in check_invariants(candidate):
        problems.append(f"{candidate_path}: {problem}")
    base_path, baseline = reports[-1]
    if exact:
        for entry in diff_reports(baseline, candidate):
            problems.append(
                f"{base_path} vs {candidate_path}: {entry}"
            )
    else:
        for entry in compare_reports(baseline, candidate):
            problems.append(f"{base_path} vs {candidate_path}: {entry}")
    return problems
