"""A crash- and hang-tolerant worker pool for spec execution.

``multiprocessing.Pool`` assumes workers are well-behaved: a worker that
dies mid-task hangs the pool (or poisons ``imap``), and there is no
per-task timeout.  Campaigns run thousands of trials for hours, so the
runner needs the stronger property: **a killed or wedged worker costs a
retry, never the run.**

Design: the parent owns one duplex :func:`multiprocessing.Pipe` per
worker and assigns tasks explicitly, so every in-flight task has a known
owner.  Pipes are used instead of queues deliberately — a queue's
feeder thread can lose messages when a worker dies abruptly, making lost
tasks unattributable.  The parent multiplexes completions with
:func:`multiprocessing.connection.wait`; a worker that exits (EOF on its
pipe) or blows its per-task deadline is reaped, its task is requeued
with capped exponential backoff, and a fresh worker is spawned in its
place.  Tasks that raise are classified before any backoff happens:
a :class:`~repro.errors.ReproError` is a *deterministic* function of
the spec (the simulation itself rejected it) — re-running it would fail
identically, so the batch aborts immediately with
:class:`~repro.errors.RunnerError` naming the spec, never sleeping a
wall-clock backoff first.  Any other exception is environmental
(out-of-memory, a vanished cache directory, ...) and retryable like a
crash.

Fault-injection hooks (for tests and the CI resume job): setting
``REPRO_RUNNER_CRASH_ONCE_FILE`` (or ``..._HANG_ONCE_FILE``) to a path
makes exactly one worker task, across all workers, hard-exit (or wedge)
at pickup — whichever worker first claims the marker file via exclusive
create.  Records are byte-identical with or without the injected fault,
which is the point.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Dict, List, Optional, Sequence

from repro.backoff import capped_exponential
from repro.errors import ReproError, RunnerError
from repro.runner.execute import BatchedTrialExecutor
from repro.runner.spec import Spec

#: Path of a marker file; the first worker task to claim it exits hard
#: (simulates an OOM-kill / segfault mid-task).
CRASH_ONCE_ENV = "REPRO_RUNNER_CRASH_ONCE_FILE"

#: Path of a marker file; the first worker task to claim it sleeps
#: far past any sane deadline (simulates a wedged worker).
HANG_ONCE_ENV = "REPRO_RUNNER_HANG_ONCE_FILE"

_POLL_S = 0.1


def _claim_marker(path: str) -> bool:
    """Atomically claim a one-shot marker file (exclusive create)."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError:
        return False
    os.close(fd)
    return True


def _maybe_fault_hooks() -> None:
    crash = os.environ.get(CRASH_ONCE_ENV)
    if crash and _claim_marker(crash):
        # Bypass interpreter shutdown entirely, like a SIGKILL would.
        os._exit(3)
    hang = os.environ.get(HANG_ONCE_ENV)
    if hang and _claim_marker(hang):
        time.sleep(3600)


def _worker_main(conn) -> None:
    """Worker loop: receive ``(index, spec)``, send back the outcome.

    ``None`` is the shutdown sentinel.  Exceptions are reported as
    ``("error", index, message, retryable)``: a :class:`ReproError` is a
    deterministic verdict on the spec itself (``retryable=False``, the
    parent must not burn backoff sleeps on it), anything else is
    environmental and worth a retry.  Whatever kills the process
    outright (crash hook, OOM, signal) surfaces as EOF on the pipe.
    """
    # One batch executor per worker process: layout setup amortizes
    # across every task this worker picks up, and the executor's
    # byte-identity contract keeps task placement irrelevant.
    executor = BatchedTrialExecutor()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        index, spec = message
        _maybe_fault_hooks()
        try:
            record = executor.execute(spec)
        except Exception as exc:  # noqa: BLE001 - classified by parent
            conn.send(
                (
                    "error",
                    index,
                    f"{type(exc).__name__}: {exc}",
                    not isinstance(exc, ReproError),
                )
            )
            continue
        conn.send(("done", index, record))


class _WorkerHandle:
    def __init__(self, ctx):
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.task: Optional[int] = None
        self.deadline: Optional[float] = None

    def assign(self, index: int, spec: Spec, timeout_s: Optional[float]):
        self.task = index
        self.deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        self.conn.send((index, spec))

    def free(self) -> None:
        self.task = None
        self.deadline = None

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join()


def run_hardened(
    specs: Sequence[Spec],
    workers: int,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_base_s: float = 0.5,
    backoff_cap_s: float = 30.0,
    on_record: Optional[Callable[[dict], None]] = None,
) -> List[dict]:
    """Execute every spec, surviving worker crashes and hangs.

    Returns records in spec order.  ``on_record`` fires in *completion*
    order as each record arrives (checkpoint appends hook in here).
    Raises :class:`RunnerError` when a spec exhausts its retry budget or
    fails deterministically.
    """
    if workers < 1:
        raise RunnerError(f"need >= 1 worker, got {workers}")
    if retries < 0 or backoff_base_s < 0 or backoff_cap_s < 0:
        raise RunnerError("retry/backoff parameters must be >= 0")
    specs = list(specs)
    if not specs:
        return []
    ctx = multiprocessing.get_context(
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    results: Dict[int, dict] = {}
    pending: List[int] = list(range(len(specs)))  # ready to assign, FIFO
    retry_heap: List[tuple] = []  # (ready_at_monotonic, index)
    attempts: Dict[int, int] = {}
    pool: List[_WorkerHandle] = [
        _WorkerHandle(ctx) for _ in range(min(workers, len(specs)))
    ]

    def fail_everything(message: str) -> RunnerError:
        for handle in pool:
            handle.kill()
        return RunnerError(message)

    def requeue(handle: _WorkerHandle, why: str) -> None:
        index = handle.task
        handle.free()
        attempt = attempts.get(index, 0) + 1
        attempts[index] = attempt
        if attempt > retries:
            raise fail_everything(
                f"spec {index} ({specs[index]!r}) failed {attempt}x,"
                f" retry budget {retries} exhausted; last failure: {why}"
            )
        delay = capped_exponential(attempt, backoff_base_s, backoff_cap_s)
        heapq.heappush(retry_heap, (time.monotonic() + delay, index))

    try:
        while len(results) < len(specs):
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                pending.append(heapq.heappop(retry_heap)[1])
            for handle in list(pool):
                if handle.task is None and pending:
                    index = pending.pop(0)
                    try:
                        handle.assign(index, specs[index], timeout_s)
                    except OSError:
                        # Died while idle; replace it and re-assign.
                        handle.kill()
                        pool.remove(handle)
                        pool.append(_WorkerHandle(ctx))
                        pool[-1].assign(index, specs[index], timeout_s)
            busy = {h.conn: h for h in pool if h.task is not None}
            if not busy:
                if pending or retry_heap:
                    time.sleep(_POLL_S)
                    continue
                raise fail_everything(
                    "runner stalled: tasks outstanding but none assigned"
                )
            for conn in connection_wait(list(busy), timeout=_POLL_S):
                handle = busy[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # The worker died mid-task (crash, OOM-kill, ...).
                    dead = handle.task
                    handle.kill()
                    pool.remove(handle)
                    pool.append(_WorkerHandle(ctx))
                    replacement = pool[-1]
                    replacement.task = dead  # requeue() reads .task
                    requeue(replacement, "worker process died")
                    continue
                kind, index, payload = message[0], message[1], message[2]
                if kind == "error":
                    retryable = message[3]
                    if not retryable:
                        # A ReproError is a pure function of the spec:
                        # fail the batch NOW, with zero backoff sleeps.
                        raise fail_everything(
                            f"spec {index} ({specs[index]!r}) raised in a"
                            f" worker (deterministic, not retried):"
                            f" {payload}"
                        )
                    # Environmental failure in a still-healthy worker:
                    # the process survives, only the task is requeued.
                    requeue(handle, f"worker raised: {payload}")
                    continue
                results[index] = payload
                if on_record is not None:
                    on_record(payload)
                handle.free()
            now = time.monotonic()
            for handle in list(pool):
                if (
                    handle.task is not None
                    and handle.deadline is not None
                    and now > handle.deadline
                ):
                    stuck = handle.task
                    handle.kill()
                    pool.remove(handle)
                    pool.append(_WorkerHandle(ctx))
                    replacement = pool[-1]
                    replacement.task = stuck
                    requeue(
                        replacement,
                        f"task exceeded its {timeout_s}s deadline",
                    )
    finally:
        for handle in pool:
            if handle.process.is_alive() and handle.task is None:
                try:
                    handle.conn.send(None)
                except (OSError, BrokenPipeError):
                    pass
            handle.kill()
    return [results[i] for i in range(len(specs))]
