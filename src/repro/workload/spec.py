"""Access specifications.

Table 2's workloads are streams of fixed-size logical accesses of one type,
aligned to stripe-unit boundaries; sizes range from 8 KB (one unit) to
336 KB (42 units).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: The access sizes of the paper's figures, in KB.
PAPER_ACCESS_SIZES_KB = (
    8, 24, 48, 72, 96, 120, 144, 168, 192, 216, 240, 288, 336,
)

#: Client concurrency levels of Table 2.
PAPER_CLIENT_COUNTS = (1, 2, 4, 8, 10, 15, 20, 25)


@dataclass(frozen=True)
class AccessSpec:
    """Fixed-size, fixed-type access stream parameters.

    >>> AccessSpec(size_kb=96, is_write=False).units(stripe_unit_kb=8)
    12
    """

    size_kb: int
    is_write: bool

    def __post_init__(self):
        if self.size_kb < 1:
            raise ConfigurationError(f"size must be >= 1 KB, got {self.size_kb}")

    def units(self, stripe_unit_kb: int = 8) -> int:
        """Stripe units this access spans (must divide evenly: Table 2's
        accesses 'span an integer number of stripe units')."""
        if self.size_kb % stripe_unit_kb != 0:
            raise ConfigurationError(
                f"{self.size_kb} KB access is not a whole number of"
                f" {stripe_unit_kb} KB stripe units"
            )
        return self.size_kb // stripe_unit_kb

    @property
    def kind(self) -> str:
        return "write" if self.is_write else "read"

    def label(self) -> str:
        return f"{self.size_kb}KB {self.kind}s"
