"""Access-location generators.

The paper's workload draws each logical access's start uniformly over all
client data ("random accesses uniformly distributed over all data", aligned
to stripe-unit boundaries).  Sequential and Zipf variants support the
ablation benchmarks.
"""

from __future__ import annotations

import abc
import random

from repro.errors import ConfigurationError


class LocationGenerator(abc.ABC):
    """Produces aligned start units for accesses of a fixed span."""

    def __init__(self, total_units: int, span_units: int):
        if span_units < 1:
            raise ConfigurationError(f"span must be >= 1, got {span_units}")
        if total_units < span_units:
            raise ConfigurationError(
                f"array of {total_units} units cannot hold a"
                f" {span_units}-unit access"
            )
        self.total_units = total_units
        self.span_units = span_units

    @abc.abstractmethod
    def next_start(self) -> int:
        """The next access's first data unit."""


class UniformGenerator(LocationGenerator):
    """Uniform over all valid aligned starts (the paper's workload).

    Starts are aligned to the access span when ``aligned`` is true, matching
    Table 2's "alignment: 8 KB (stripe unit boundary)" — every access starts
    on a stripe-unit boundary by construction of the unit address space, and
    span alignment additionally mimics the RAIDframe harness.
    """

    def __init__(
        self,
        total_units: int,
        span_units: int,
        rng: random.Random,
        aligned: bool = False,
    ):
        super().__init__(total_units, span_units)
        self.rng = rng
        self.aligned = aligned

    def next_start(self) -> int:
        if self.aligned:
            slots = self.total_units // self.span_units
            return self.rng.randrange(slots) * self.span_units
        return self.rng.randrange(self.total_units - self.span_units + 1)


class SequentialGenerator(LocationGenerator):
    """Back-to-back accesses sweeping the array, wrapping at the end."""

    def __init__(self, total_units: int, span_units: int, start: int = 0):
        super().__init__(total_units, span_units)
        self._next = start % (total_units - span_units + 1)

    def next_start(self) -> int:
        start = self._next
        self._next += self.span_units
        if self._next + self.span_units > self.total_units:
            self._next = 0
        return start


class ZipfGenerator(LocationGenerator):
    """Zipf-skewed starts: hot units near the front of the address space."""

    def __init__(
        self,
        total_units: int,
        span_units: int,
        rng: random.Random,
        theta: float = 1.0,
        buckets: int = 64,
    ):
        super().__init__(total_units, span_units)
        if theta <= 0:
            raise ConfigurationError(f"theta must be positive, got {theta}")
        if buckets < 1:
            raise ConfigurationError("need at least one bucket")
        self.rng = rng
        weights = [1.0 / (rank + 1) ** theta for rank in range(buckets)]
        total = sum(weights)
        self._cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self.buckets = buckets

    def next_start(self) -> int:
        u = self.rng.random()
        bucket = next(i for i, c in enumerate(self._cdf) if u <= c)
        usable = self.total_units - self.span_units + 1
        lo = bucket * usable // self.buckets
        hi = max(lo + 1, (bucket + 1) * usable // self.buckets)
        return self.rng.randrange(lo, hi)
