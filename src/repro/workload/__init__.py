"""Synthetic workloads (paper Table 2).

Closed-loop clients each issue one fixed-size, stripe-unit-aligned logical
access at a uniformly random location, block until the array completes it,
and immediately repeat.  Sequential and Zipf generators are provided for
the extension benchmarks.
"""

from repro.workload.client import ClosedLoopClient
from repro.workload.generators import (
    SequentialGenerator,
    UniformGenerator,
    ZipfGenerator,
)
from repro.workload.spec import AccessSpec

__all__ = [
    "AccessSpec",
    "ClosedLoopClient",
    "SequentialGenerator",
    "UniformGenerator",
    "ZipfGenerator",
]
