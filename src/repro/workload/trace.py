"""Trace capture and replay, and mixed read/write streams.

The paper notes that "traces or synthetic workloads with a more realistic
access mix would be a better predictor of the performance of the arrays in
a real situation" but sticks to homogeneous streams for interpretability.
This module supplies the other half: a recordable trace format, a replay
client, and a mixed-ratio spec so experiments can run e.g. 70/30
read/write blends or captured access sequences.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Sequence

from repro.array.controller import ArrayController, LogicalAccess
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TraceRecord:
    """One logical access of a trace."""

    first_unit: int
    unit_count: int
    is_write: bool

    def to_json(self) -> str:
        return json.dumps(
            {
                "u": self.first_unit,
                "c": self.unit_count,
                "w": int(self.is_write),
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        data = json.loads(line)
        return cls(
            first_unit=int(data["u"]),
            unit_count=int(data["c"]),
            is_write=bool(data["w"]),
        )


class Trace:
    """An ordered list of accesses, serializable as JSON lines."""

    def __init__(self, records: Sequence[TraceRecord] = ()):
        self.records: List[TraceRecord] = list(records)

    def append(self, record: TraceRecord) -> None:
        if record.unit_count < 1 or record.first_unit < 0:
            raise ConfigurationError(f"malformed record {record}")
        self.records.append(record)

    def dumps(self) -> str:
        return "\n".join(r.to_json() for r in self.records)

    @classmethod
    def loads(cls, text: str) -> "Trace":
        records = [
            TraceRecord.from_json(line)
            for line in text.splitlines()
            if line.strip()
        ]
        return cls(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)


def synthesize_mixed_trace(
    length: int,
    total_units: int,
    span_units: int,
    write_fraction: float,
    rng: random.Random,
) -> Trace:
    """Generate a uniform-location trace with a read/write blend.

    >>> t = synthesize_mixed_trace(10, 1000, 4, 0.3, random.Random(1))
    >>> len(t)
    10
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError("write_fraction must be within [0, 1]")
    if length < 1:
        raise ConfigurationError("need at least one record")
    if total_units < span_units:
        raise ConfigurationError("trace span exceeds the address space")
    trace = Trace()
    for _ in range(length):
        trace.append(
            TraceRecord(
                first_unit=rng.randrange(total_units - span_units + 1),
                unit_count=span_units,
                is_write=rng.random() < write_fraction,
            )
        )
    return trace


class TraceReplayClient:
    """Closed-loop replay of a trace against a simulated array.

    Issues records in order, one at a time; calls ``on_done(responses)``
    when the trace is exhausted.
    """

    def __init__(
        self,
        client_id: int,
        controller: ArrayController,
        trace: Trace,
        on_response: Callable[[LogicalAccess, float], None],
        on_done: Callable[[List[float]], None] = lambda responses: None,
    ):
        if not len(trace):
            raise ConfigurationError("empty trace")
        self.client_id = client_id
        self.controller = controller
        self.trace = trace
        self.on_response = on_response
        self.on_done = on_done
        self.responses: List[float] = []
        self._position = 0

    def start(self) -> None:
        self._issue()

    def _issue(self) -> None:
        record = self.trace.records[self._position]
        access = LogicalAccess(
            access_id=(self.client_id << 32) | self._position,
            first_unit=record.first_unit,
            unit_count=record.unit_count,
            is_write=record.is_write,
        )
        self._position += 1
        self.controller.submit(access, self._completed)

    def _completed(self, access: LogicalAccess, response_ms: float) -> None:
        self.responses.append(response_ms)
        self.on_response(access, response_ms)
        if self._position < len(self.trace):
            self._issue()
        else:
            self.on_done(self.responses)
