"""Closed-loop clients.

Each simulated client issues one logical access, blocks until the array
completes it, and immediately issues the next — Table 2's workload model.
Response samples flow into a collector that may stop the run.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.array.controller import ArrayController, LogicalAccess
from repro.workload.generators import LocationGenerator
from repro.workload.spec import AccessSpec

#: Each client owns a block of access ids: client c's i-th access has id
#: c * CLIENT_ID_STRIDE + i.
CLIENT_ID_STRIDE = 1 << 24


class ClosedLoopClient:
    """One synthetic client.

    ``on_response(client, access, response_ms)`` is called per completion
    and returns True to keep the client running, False to park it.
    """

    def __init__(
        self,
        client_id: int,
        controller: ArrayController,
        generator: LocationGenerator,
        spec: AccessSpec,
        on_response: Callable[
            ["ClosedLoopClient", LogicalAccess, float], bool
        ],
        stripe_unit_kb: int = 8,
        think_time_ms: float = 0.0,
    ):
        self.client_id = client_id
        self.controller = controller
        self.generator = generator
        self.spec = spec
        self.on_response = on_response
        self.think_time_ms = think_time_ms
        self.units = spec.units(stripe_unit_kb)
        self.issued = 0
        self.completed = 0
        self._parked = False

    def start(self) -> None:
        self._issue()

    def park(self) -> None:
        """Stop after the in-flight access completes."""
        self._parked = True

    def _issue(self) -> None:
        access = LogicalAccess(
            access_id=self.client_id * CLIENT_ID_STRIDE + self.issued,
            first_unit=self.generator.next_start(),
            unit_count=self.units,
            is_write=self.spec.is_write,
        )
        self.issued += 1
        self.controller.submit(access, self._completed)

    def _completed(self, access: LogicalAccess, response_ms: float) -> None:
        self.completed += 1
        keep_going = self.on_response(self, access, response_ms)
        if not keep_going or self._parked:
            return
        if self.think_time_ms > 0:
            self.controller.engine.schedule(self.think_time_ms, self._issue)
        else:
            self._issue()
