"""Balanced incomplete block designs (BIBDs) and complete block designs.

A ``(v, k, lambda)``-BIBD arranges ``v`` points into blocks of size ``k`` so
that every unordered pair of points occurs in exactly ``lambda`` blocks.
Holland & Gibson's Parity Declustering stripes a disk array with the blocks of
a BIBD; DATUM uses the *complete* block design (all ``C(v, k)`` blocks).
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Dict, List, Sequence, Tuple

from repro.errors import DesignError


class BlockDesign:
    """An immutable block design on points ``0 .. v-1``.

    The constructor validates structural sanity (point range, block size
    uniformity, no repeated points in a block).  Balance is checked separately
    by :meth:`pair_counts` / :meth:`is_balanced` so that "relaxed" designs
    (Schwabe & Sutherland style) can still be represented.

    >>> d = BlockDesign(7, [(0, 1, 3), (1, 2, 4), (2, 3, 5), (3, 4, 6),
    ...                     (4, 5, 0), (5, 6, 1), (6, 0, 2)])
    >>> d.is_balanced()
    True
    >>> d.lambda_
    1
    """

    def __init__(self, v: int, blocks: Sequence[Sequence[int]]):
        if v < 2:
            raise DesignError(f"need at least 2 points, got {v}")
        if not blocks:
            raise DesignError("a design needs at least one block")
        normalized: List[Tuple[int, ...]] = []
        k = len(blocks[0])
        for block in blocks:
            if len(block) != k:
                raise DesignError(
                    f"block size mismatch: {len(block)} != {k}"
                )
            if len(set(block)) != len(block):
                raise DesignError(f"repeated point in block {tuple(block)}")
            for point in block:
                if not 0 <= point < v:
                    raise DesignError(f"point {point} outside 0..{v - 1}")
            normalized.append(tuple(block))
        self.v = v
        self.k = k
        self.blocks: Tuple[Tuple[int, ...], ...] = tuple(normalized)

    @property
    def b(self) -> int:
        """Number of blocks."""
        return len(self.blocks)

    def replication_counts(self) -> List[int]:
        """How many blocks contain each point (the design's ``r`` per point)."""
        counts = [0] * self.v
        for block in self.blocks:
            for point in block:
                counts[point] += 1
        return counts

    def pair_counts(self) -> Dict[Tuple[int, int], int]:
        """Occurrences of every unordered point pair across blocks."""
        counts: Dict[Tuple[int, int], int] = {
            pair: 0 for pair in combinations(range(self.v), 2)
        }
        for block in self.blocks:
            for pair in combinations(sorted(block), 2):
                counts[pair] += 1
        return counts

    def is_balanced(self) -> bool:
        """True if every pair occurs equally often (the BIBD condition)."""
        counts = set(self.pair_counts().values())
        return len(counts) == 1

    @property
    def lambda_(self) -> int:
        """The common pair count; raises if the design is not balanced."""
        counts = set(self.pair_counts().values())
        if len(counts) != 1:
            raise DesignError("design is not balanced; lambda undefined")
        return counts.pop()

    def validate_bibd(self) -> None:
        """Assert all BIBD identities: r(k-1) = lambda(v-1) and bk = vr."""
        if not self.is_balanced():
            raise DesignError("pair counts are not uniform")
        reps = set(self.replication_counts())
        if len(reps) != 1:
            raise DesignError("replication counts are not uniform")
        r = reps.pop()
        lam = self.lambda_
        if r * (self.k - 1) != lam * (self.v - 1):
            raise DesignError("r(k-1) != lambda(v-1)")
        if self.b * self.k != self.v * r:
            raise DesignError("bk != vr")

    def max_pair_imbalance(self) -> int:
        """max - min pair count; 0 for a BIBD, small for relaxed designs."""
        counts = self.pair_counts().values()
        return max(counts) - min(counts)

    def __repr__(self) -> str:
        return f"BlockDesign(v={self.v}, k={self.k}, b={self.b})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BlockDesign)
            and other.v == self.v
            and other.blocks == self.blocks
        )

    def __hash__(self) -> int:
        return hash((self.v, self.blocks))


def complete_block_design(v: int, k: int) -> BlockDesign:
    """The design whose blocks are *all* ``C(v, k)`` k-subsets of the points.

    This is DATUM's underlying design ("complete block designs", paper §1).
    Blocks are emitted in colexicographic order, the order DATUM's binomial
    addressing uses.

    >>> complete_block_design(4, 2).blocks
    ((0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3))
    """
    if not 2 <= k <= v:
        raise DesignError(f"need 2 <= k <= v, got k={k}, v={v}")
    blocks = sorted(combinations(range(v), k), key=lambda blk: blk[::-1])
    design = BlockDesign(v, blocks)
    assert design.b == comb(v, k)
    return design
