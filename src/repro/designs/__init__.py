"""Combinatorial designs underlying declustered layouts.

Parity Declustering stores a balanced incomplete block design (BIBD) as its
layout table; PDDL's satisfactory base permutations are equivalent to
difference families / near-resolvable designs (paper appendix).  This package
provides:

- :class:`~repro.designs.bibd.BlockDesign` with full validation,
- cyclic development of difference sets and families
  (:mod:`~repro.designs.difference`),
- near-resolvable design checks (:mod:`~repro.designs.resolvable`),
- a catalog of the designs the paper's configurations need
  (:mod:`~repro.designs.catalog`).
"""

from repro.designs.bibd import BlockDesign, complete_block_design
from repro.designs.catalog import known_bibd, known_difference_set
from repro.designs.difference import (
    develop_difference_family,
    develop_difference_set,
    is_difference_family,
    is_difference_set,
)
from repro.designs.resolvable import is_near_resolvable, near_resolvable_classes

__all__ = [
    "BlockDesign",
    "complete_block_design",
    "develop_difference_family",
    "develop_difference_set",
    "is_difference_family",
    "is_difference_set",
    "is_near_resolvable",
    "known_bibd",
    "known_difference_set",
    "near_resolvable_classes",
]
