"""Near-resolvable designs (NRDs).

A near-resolvable ``(v, k, k-1)`` design partitions its blocks into *near
parallel classes*: each class misses exactly one point and partitions the
remaining ``v - 1`` points into blocks of size ``k``.  The paper's appendix:
"a PDDL with a solitary base permutation gives rise to a near resolvable
design" — the class missing point ``m`` is row ``m``'s stripes, and the missed
point is that row's spare disk.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.designs.bibd import BlockDesign
from repro.errors import DesignError


def near_resolvable_classes(
    design: BlockDesign,
) -> List[Tuple[int, Tuple[Tuple[int, ...], ...]]]:
    """Partition blocks into near parallel classes.

    Greedy by missed point: groups the blocks by which point they jointly
    miss.  Returns ``[(missed_point, blocks), ...]`` sorted by missed point.
    Raises :class:`DesignError` if the blocks cannot be grouped that way.
    """
    v = design.v
    k = design.k
    if (v - 1) % k != 0:
        raise DesignError(f"v - 1 = {v - 1} is not a multiple of k = {k}")
    per_class = (v - 1) // k
    if design.b % per_class != 0:
        raise DesignError("block count is not a multiple of the class size")

    # Reconstruct classes greedily: repeatedly pick disjoint blocks covering
    # all but one point.  Greedy can in principle miss a valid grouping for
    # adversarial block orders, but is exact for developed difference
    # families, which is what PDDL produces.
    remaining = list(design.blocks)
    classes: List[Tuple[int, Tuple[Tuple[int, ...], ...]]] = []
    while remaining:
        chosen: List[Tuple[int, ...]] = []
        covered: set = set()
        for block in list(remaining):
            if covered.isdisjoint(block):
                chosen.append(block)
                covered.update(block)
                if len(covered) == v - 1:
                    break
        if len(covered) != v - 1 or len(chosen) != per_class:
            raise DesignError("blocks do not form near parallel classes")
        missed = (set(range(v)) - covered).pop()
        classes.append((missed, tuple(chosen)))
        for block in chosen:
            remaining.remove(block)
    classes.sort(key=lambda item: item[0])
    return classes


def is_near_resolvable(design: BlockDesign) -> bool:
    """True if the design's blocks form near parallel classes.

    >>> from repro.designs.difference import develop_difference_family
    >>> d = develop_difference_family([[1, 2, 4], [3, 6, 5]], 7)
    >>> is_near_resolvable(d)
    True
    """
    try:
        near_resolvable_classes(design)
    except DesignError:
        return False
    return True


def classes_from_rows(
    rows: Sequence[Sequence[Sequence[int]]], v: int
) -> List[Tuple[int, Tuple[Tuple[int, ...], ...]]]:
    """Build near parallel classes from explicit per-row stripe lists.

    ``rows[i]`` lists the disk sets of row ``i``'s stripes; each row must miss
    exactly one disk (its spare).  Used to link a PDDL layout to its NRD.
    """
    classes: List[Tuple[int, Tuple[Tuple[int, ...], ...]]] = []
    for row in rows:
        covered: set = set()
        for block in row:
            if not covered.isdisjoint(block):
                raise DesignError("stripes within a row overlap")
            covered.update(block)
        missing = set(range(v)) - covered
        if len(missing) != 1:
            raise DesignError(
                f"row misses {len(missing)} disks; expected exactly 1"
            )
        classes.append((missing.pop(), tuple(tuple(b) for b in row)))
    return classes
