"""Cyclic difference sets and difference families.

A ``(v, k, lambda)`` difference set ``D`` in Z_v has every nonzero residue
appearing exactly ``lambda`` times among the differences ``d_i - d_j``.
Developing it (adding each t in Z_v) yields a symmetric BIBD — this is how the
(13, 4, 1) design used for Parity Declustering on the paper's 13-disk array is
built.  A *difference family* generalizes this to several base blocks; the
paper's appendix notes that a solitary satisfactory PDDL base permutation is
exactly a difference family whose blocks partition the nonzero residues.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.designs.bibd import BlockDesign
from repro.errors import DesignError


def difference_multiset(block: Sequence[int], v: int) -> Dict[int, int]:
    """Count each nonzero difference ``(a - b) mod v`` over ordered pairs.

    >>> sorted(difference_multiset([1, 2, 4], 7).items())
    [(1, 1), (2, 1), (3, 1), (4, 1), (5, 1), (6, 1)]
    """
    counts: Dict[int, int] = {}
    for a in block:
        for b in block:
            if a == b:
                continue
            diff = (a - b) % v
            counts[diff] = counts.get(diff, 0) + 1
    return counts


def is_difference_set(block: Sequence[int], v: int, lam: int = 1) -> bool:
    """True if ``block`` is a ``(v, k, lam)`` difference set in Z_v.

    >>> is_difference_set([0, 1, 3, 9], 13)
    True
    >>> is_difference_set([0, 1, 2, 3], 13)
    False
    """
    counts = difference_multiset(block, v)
    return all(counts.get(d, 0) == lam for d in range(1, v))


def is_difference_family(
    blocks: Sequence[Sequence[int]], v: int, lam: int = 1
) -> bool:
    """True if the blocks jointly cover every nonzero difference ``lam`` times.

    The Bose blocks B_1 = {1, 2, 4}, B_2 = {3, 6, 5} for v = 7 form a
    (7, 3, 2) difference family:

    >>> is_difference_family([[1, 2, 4], [3, 6, 5]], 7, lam=2)
    True
    """
    totals: Dict[int, int] = {}
    for block in blocks:
        for diff, count in difference_multiset(block, v).items():
            totals[diff] = totals.get(diff, 0) + count
    return all(totals.get(d, 0) == lam for d in range(1, v))


def develop_difference_set(block: Sequence[int], v: int) -> BlockDesign:
    """Develop a difference set into the symmetric BIBD it generates.

    >>> d = develop_difference_set([0, 1, 3, 9], 13)
    >>> (d.v, d.k, d.b, d.lambda_)
    (13, 4, 13, 1)
    """
    if not is_difference_set(block, v, lam=_implied_lambda([block], v)):
        raise DesignError(f"{tuple(block)} is not a difference set mod {v}")
    blocks = [
        tuple(sorted((x + t) % v for x in block)) for t in range(v)
    ]
    return BlockDesign(v, blocks)


def develop_difference_family(
    base_blocks: Sequence[Sequence[int]], v: int
) -> BlockDesign:
    """Develop every base block through all ``v`` translations.

    Produces a BIBD with ``lam = sum k_i (k_i - 1) / (v - 1)``.

    >>> d = develop_difference_family([[1, 2, 4], [3, 6, 5]], 7)
    >>> (d.b, d.lambda_)
    (14, 2)
    """
    lam = _implied_lambda(base_blocks, v)
    if not is_difference_family(base_blocks, v, lam=lam):
        raise DesignError("base blocks do not form a difference family")
    blocks = [
        tuple(sorted((x + t) % v for x in block))
        for block in base_blocks
        for t in range(v)
    ]
    return BlockDesign(v, blocks)


def _implied_lambda(blocks: Sequence[Sequence[int]], v: int) -> int:
    """The lambda a difference family of these block sizes would have."""
    total = sum(len(b) * (len(b) - 1) for b in blocks)
    if total % (v - 1) != 0:
        raise DesignError(
            f"block sizes {sorted(len(b) for b in blocks)} cannot form a"
            f" difference family mod {v}"
        )
    return total // (v - 1)


def find_difference_set(v: int, k: int) -> Tuple[int, ...]:
    """Exhaustively search for a (v, k, lambda) difference set containing 0, 1.

    Exponential; intended for the small parameters that occur as stripe
    widths.  Raises :class:`DesignError` when none exists.

    >>> find_difference_set(7, 3)
    (0, 1, 3)
    """
    from itertools import combinations

    if k * (k - 1) % (v - 1) != 0:
        raise DesignError(f"no ({v}, {k}) difference set: divisibility fails")
    lam = k * (k - 1) // (v - 1)
    for rest in combinations(range(2, v), k - 2):
        candidate = (0, 1) + rest
        if is_difference_set(candidate, v, lam):
            return candidate
    raise DesignError(f"no ({v}, {k}, {lam}) difference set found")
