"""Catalog of the concrete designs the paper's configurations need.

Holland & Gibson shipped a database of BIBDs (``BD_database.tar.Z``); we
construct the relevant ones instead.  The paper's simulated array is 13 disks
with stripe width 4, whose Parity Declustering table is the (13, 4, 1) design
developed from the Singer difference set {0, 1, 3, 9} mod 13.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.designs.bibd import BlockDesign
from repro.designs.difference import (
    develop_difference_family,
    develop_difference_set,
    find_difference_set,
)
from repro.errors import DesignError

#: Known cyclic difference sets, keyed by (v, k).  All have lambda =
#: k(k-1)/(v-1).  Sources: Singer difference sets for projective planes
#: (q = 2, 3, 4, 5) and classic biplanes.
_DIFFERENCE_SETS: Dict[Tuple[int, int], Tuple[int, ...]] = {
    (7, 3): (0, 1, 3),            # Fano plane, PG(2, 2)
    (13, 4): (0, 1, 3, 9),        # PG(2, 3) — the paper's n=13, k=4 design
    (21, 5): (0, 1, 6, 8, 18),    # PG(2, 4)
    (31, 6): (0, 1, 3, 8, 12, 18),  # PG(2, 5)
    (11, 5): (0, 1, 2, 4, 7),     # (11, 5, 2) biplane
    (15, 7): (0, 1, 2, 4, 5, 8, 10),  # (15, 7, 3)
}

#: Known difference families (several base blocks), keyed by (v, k).
_DIFFERENCE_FAMILIES: Dict[Tuple[int, int], Tuple[Tuple[int, ...], ...]] = {
    # (13, 3, 1): classic Netto-style family.
    (13, 3): ((0, 1, 4), (0, 2, 7)),
    # (7, 3, 2): the Bose blocks from the paper's worked example.
    (7, 3): ((1, 2, 4), (3, 6, 5)),
    # (19, 3, 1)
    (19, 3): ((0, 1, 8), (0, 2, 5), (0, 6, 15)),
}


def known_difference_set(v: int, k: int) -> Tuple[int, ...]:
    """Return a known (v, k) difference set, searching if not cataloged.

    >>> known_difference_set(13, 4)
    (0, 1, 3, 9)
    """
    if (v, k) in _DIFFERENCE_SETS:
        return _DIFFERENCE_SETS[(v, k)]
    return find_difference_set(v, k)


def known_bibd(v: int, k: int) -> BlockDesign:
    """Return a BIBD on ``v`` points with block size ``k``.

    Tries, in order: cataloged difference sets, cataloged difference
    families, exhaustive difference-set search.  Raises
    :class:`~repro.errors.DesignError` if nothing is found — in that case the
    caller should fall back to a relaxed design or a different layout.

    >>> d = known_bibd(13, 4)
    >>> (d.b, d.lambda_)
    (13, 1)
    """
    if (v, k) in _DIFFERENCE_SETS:
        return develop_difference_set(_DIFFERENCE_SETS[(v, k)], v)
    if (v, k) in _DIFFERENCE_FAMILIES:
        return develop_difference_family(_DIFFERENCE_FAMILIES[(v, k)], v)
    try:
        return develop_difference_set(find_difference_set(v, k), v)
    except DesignError as exc:
        raise DesignError(
            f"no cataloged or searchable BIBD for (v={v}, k={k})"
        ) from exc
