"""RELPR (Alvarez, Burkhard, Stockmeyer & Cristian, ISCA 1998) —
reconstructed from its published role.

RELPR is PRIME's companion for arrays whose size is not prime: the
multiplier set shrinks from all nonzero residues to the units of Z_n
(residues RELatively PRime to n — the name), trading exactness for
generality.  Like our PRIME reconstruction (see
:mod:`repro.layouts.prime`), this is built to the properties the PDDL
paper attributes to the scheme: on-demand arithmetic mapping, zero tables,
near-optimal parallelism, and *approximately* balanced parity and
reconstruction for general ``n`` — the approximation being what the paper
means by "near-optimal" for these layouts.

Construction: identical to :class:`~repro.layouts.prime.PrimeLayout`, with
sections for each multiplier ``z`` coprime to ``n``; requires
``gcd(k - 1, n) == 1`` so the per-section parity assignment stays a
bijection.

Known limitation (documented in DESIGN.md): per-failure reconstruction
load covers only survivors reachable as ``failed + z*delta`` with ``z`` a
unit — for composite ``n`` some survivors idle for a given failure, so
goal #3 holds only in aggregate over failures.  Parity distribution and
parallelism remain exact.
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import ConfigurationError, MappingError
from repro.layouts.address import PhysicalAddress, StripeUnits
from repro.layouts.base import Layout


class RelprLayout(Layout):
    """RELPR-style declustered layout for general ``n``.

    >>> lay = RelprLayout(10, 4)
    >>> lay.sections  # phi(10) multipliers: 1, 3, 7, 9
    4
    """

    name = "RELPR"

    def __init__(self, n: int, k: int):
        super().__init__(n=n, k=k)
        if k >= n:
            raise ConfigurationError(
                f"RELPR declusters; needs k < n, got k={k}, n={n}"
            )
        if math.gcd(k - 1, n) != 1:
            raise ConfigurationError(
                f"RELPR needs gcd(k - 1, n) = 1; gcd({k - 1}, {n}) ="
                f" {math.gcd(k - 1, n)}"
            )
        self.multipliers: List[int] = [
            z for z in range(1, n) if math.gcd(z, n) == 1
        ]

    @property
    def sections(self) -> int:
        return len(self.multipliers)

    @property
    def period(self) -> int:
        return self.sections * self.k

    @property
    def stripes_per_period(self) -> int:
        return self.sections * self.n

    def stripe_units_in_period(self, stripe_index: int) -> StripeUnits:
        if not 0 <= stripe_index < self.stripes_per_period:
            raise MappingError(f"stripe {stripe_index} outside pattern")
        section, j = divmod(stripe_index, self.n)
        z = self.multipliers[section]
        base_row = section * self.k
        data = []
        for i in range(self.k - 1):
            unit = j * (self.k - 1) + i
            row, column = divmod(unit, self.n)
            data.append(
                PhysicalAddress(z * column % self.n, base_row + row)
            )
        parity_column = (j + 1) * (self.k - 1) % self.n
        check = [
            PhysicalAddress(
                z * parity_column % self.n, base_row + self.k - 1
            )
        ]
        return StripeUnits(data=data, check=check)

    def mapping_table_entries(self) -> int:
        return 0  # purely arithmetic
