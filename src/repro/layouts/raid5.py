"""Left-symmetric RAID-5 (Patterson/Gibson/Katz; paper's non-declustered
baseline).

Stripe width equals the array width (``k = n``); parity rotates right-to-left
one disk per stripe, and each stripe's first data unit sits immediately after
its parity disk, so consecutive client data units fall on consecutive disks —
RAID-5 "satisfies the maximal parallelism property optimally" (paper §4).
"""

from __future__ import annotations

from repro.errors import ConfigurationError, MappingError
from repro.layouts.address import PhysicalAddress, StripeUnits
from repro.layouts.base import Layout


class LeftSymmetricRaid5Layout(Layout):
    """Left-symmetric RAID-5 over ``n`` disks.

    >>> lay = LeftSymmetricRaid5Layout(5)
    >>> lay.stripe_units_in_period(0)
    StripeUnits(data=[PhysicalAddress(disk=0, offset=0), PhysicalAddress(disk=1, offset=0), PhysicalAddress(disk=2, offset=0), PhysicalAddress(disk=3, offset=0)], check=[PhysicalAddress(disk=4, offset=0)])
    """

    name = "RAID-5"

    def __init__(self, n: int, k: int = 0):
        if k and k != n:
            raise ConfigurationError(
                f"RAID-5 stripe width equals the array width; got k={k}, n={n}"
            )
        super().__init__(n=n, k=n)

    @property
    def period(self) -> int:
        return self.n

    @property
    def stripes_per_period(self) -> int:
        return self.n

    def stripe_units_in_period(self, stripe_index: int) -> StripeUnits:
        if not 0 <= stripe_index < self.n:
            raise MappingError(f"stripe {stripe_index} outside pattern")
        parity_disk = (self.n - 1 - stripe_index) % self.n
        data = [
            PhysicalAddress((parity_disk + 1 + j) % self.n, stripe_index)
            for j in range(self.n - 1)
        ]
        return StripeUnits(
            data=data, check=[PhysicalAddress(parity_disk, stripe_index)]
        )
