"""DATUM (Alvarez, Burkhard & Cristian, ISCA 1997).

The layout pattern enumerates *all* ``C(n, k)`` stripes — the complete block
design — in colexicographic order, addressed on demand through the binomial
number system: stripe ``s`` is the colex-unranked ``k``-combination, and the
offset of a unit on disk ``d`` is the number of earlier stripes containing
``d``, a closed-form binomial sum.  No tables, a few arithmetic operations
(Table 3), optimal storage overhead and uniform declustering; the price is
the smallest disk working sets of the compared schemes, because adjacent
colex combinations overlap in ``k - 1`` of their ``k`` disks.
"""

from __future__ import annotations

from math import comb
from typing import List, Tuple

from repro.errors import ConfigurationError, MappingError
from repro.layouts.address import PhysicalAddress, StripeUnits
from repro.layouts.base import Layout


def colex_rank(block: Tuple[int, ...]) -> int:
    """Rank of a sorted combination in colexicographic order.

    >>> colex_rank((0, 1))
    0
    >>> colex_rank((2, 3))
    5
    """
    return sum(comb(value, i + 1) for i, value in enumerate(block))


def colex_unrank(rank: int, k: int) -> Tuple[int, ...]:
    """Inverse of :func:`colex_rank` for ``k``-combinations.

    >>> colex_unrank(5, 2)
    (2, 3)
    """
    if rank < 0:
        raise MappingError(f"negative rank {rank}")
    block: List[int] = []
    remaining = rank
    for i in range(k, 0, -1):
        # Largest value with comb(value, i) <= remaining.
        value = i - 1
        while comb(value + 1, i) <= remaining:
            value += 1
        block.append(value)
        remaining -= comb(value, i)
    return tuple(reversed(block))


def colex_count_containing(disk: int, rank: int, k: int) -> int:
    """Number of ``k``-combinations of colex rank < ``rank`` containing
    ``disk`` — the binomial-number-system offset computation.

    A combination ``B`` precedes ``S = unrank(rank)`` iff at some position
    ``i`` it matches S's tail ``s_{i+1} .. s_k`` and its first ``i``
    elements are an arbitrary ``i``-subset of ``{0 .. s_i - 1}``.  Such a B
    contains ``disk`` iff disk is in the fixed tail (all ``C(s_i, i)``
    prefixes count) or ``disk < s_i`` (the ``C(s_i - 1, i - 1)`` prefixes
    through disk count).

    >>> colex_count_containing(2, 5, 2)  # blocks before (2,3) containing 2
    2
    """
    block = colex_unrank(rank, k)
    count = 0
    in_tail = False
    for i in range(k, 0, -1):
        s_i = block[i - 1]
        if in_tail:
            count += comb(s_i, i)
        elif disk < s_i:
            count += comb(s_i - 1, i - 1)
        if disk == s_i:
            in_tail = True
    return count


class DatumLayout(Layout):
    """DATUM: complete block design with binomial addressing.

    >>> lay = DatumLayout(5, 3)
    >>> (lay.stripes_per_period, lay.period)
    (10, 6)
    """

    name = "DATUM"

    def __init__(self, n: int, k: int):
        super().__init__(n=n, k=k)
        if k >= n:
            raise ConfigurationError(
                f"DATUM declusters; needs k < n, got k={k}, n={n}"
            )
        self._check_positions = self._balanced_check_positions()

    def _balanced_check_positions(self) -> List[int]:
        """Deterministic check-unit assignment with exact parity balance.

        ISCA'97 DATUM proves uniform check distribution; its exact
        rotation rule is not recoverable from the PDDL paper, so we use a
        deterministic least-loaded sweep over the colex stripe order
        (ties to the smallest disk).  The result is periodic and, whenever
        ``n`` divides ``C(n, k)``, exactly balanced — asserted by tests
        for the paper's configuration.
        """
        loads = [0] * self.n
        positions: List[int] = []
        blocks: List[Tuple[int, ...]] = []
        for s in range(self.stripes_per_period):
            block = colex_unrank(s, self.k)
            blocks.append(block)
            position = min(range(self.k), key=lambda i: (loads[block[i]], i))
            positions.append(position)
            loads[block[position]] += 1
        # Repair pass: colex order brings high-numbered disks in late, so
        # the greedy sweep can leave residual imbalance; move checks from
        # overloaded to underloaded member disks until balanced.
        ceiling = -(-self.stripes_per_period // self.n)
        floor = self.stripes_per_period // self.n
        changed = True
        while changed and (max(loads) > ceiling or min(loads) < floor):
            changed = False
            for s, block in enumerate(blocks):
                current = block[positions[s]]
                if loads[current] <= floor:
                    continue
                for i, disk in enumerate(block):
                    if loads[disk] < (
                        floor if loads[current] <= ceiling else ceiling
                    ):
                        loads[current] -= 1
                        loads[disk] += 1
                        positions[s] = i
                        changed = True
                        break
        return positions

    @property
    def period(self) -> int:
        # Each disk appears in C(n-1, k-1) of the C(n, k) stripes.
        return comb(self.n - 1, self.k - 1)

    @property
    def stripes_per_period(self) -> int:
        return comb(self.n, self.k)

    def stripe_units_in_period(self, stripe_index: int) -> StripeUnits:
        if not 0 <= stripe_index < self.stripes_per_period:
            raise MappingError(f"stripe {stripe_index} outside pattern")
        block = colex_unrank(stripe_index, self.k)
        check_pos = self._check_positions[stripe_index]
        data = []
        check = []
        for position, disk in enumerate(block):
            offset = colex_count_containing(disk, stripe_index, self.k)
            addr = PhysicalAddress(disk, offset)
            if position == check_pos:
                check.append(addr)
            else:
                data.append(addr)
        return StripeUnits(data=data, check=check)

    def mapping_table_entries(self) -> int:
        return 0  # purely arithmetic (Table 3)
