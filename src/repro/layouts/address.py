"""Address and role types shared by all layouts.

The array is a grid: ``n`` disks (columns) by ``units_per_disk`` stripe units
(rows, also called *offsets*).  Every cell holds exactly one stripe unit whose
role is client data, check (parity), or distributed spare space.
"""

from __future__ import annotations

import enum
from typing import List, NamedTuple


class Role(enum.Enum):
    """What a stripe unit's cell is used for."""

    DATA = "data"
    CHECK = "check"
    SPARE = "spare"

    def __repr__(self) -> str:  # keep table dumps compact
        return self.value


class PhysicalAddress(NamedTuple):
    """A cell of the array grid: ``(disk, offset)``.

    ``offset`` counts stripe units down the disk, 0 at the outermost edge of
    the layout pattern; the disk model later converts it to sectors.
    """

    disk: int
    offset: int


class StripeUnits(NamedTuple):
    """All physical cells of one stripe, data units in client order.

    ``data[j]`` holds the j-th contiguous client data unit of the stripe
    (large-write optimization, goal #4), ``check`` the parity unit(s).
    """

    data: List[PhysicalAddress]
    check: List[PhysicalAddress]

    def all_units(self) -> List[PhysicalAddress]:
        return list(self.data) + list(self.check)

    def disks(self) -> List[int]:
        return [addr.disk for addr in self.all_units()]


class UnitInfo(NamedTuple):
    """Inverse-mapping result: what lives at a physical cell.

    ``stripe`` is the global stripe id for DATA/CHECK cells and -1 for SPARE;
    ``position`` is the index within the stripe's data list (or the check
    list, offset by the stripe's data count) and -1 for SPARE.
    """

    role: Role
    stripe: int
    position: int
