"""Machine-checkable layout goals #1-#8 (paper §1).

``check_layout`` exercises a layout's full pattern and reports, per goal,
whether it holds plus the quantitative deviation — the paper's narrative
("PDDL satisfies #1, #2, #3, #4, #6 and #7, comes close to #8, does not meet
#5") becomes an executable table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.layouts.base import Layout


@dataclass(frozen=True)
class GoalResult:
    """Outcome of one layout goal."""

    satisfied: bool
    deviation: int
    detail: str


@dataclass(frozen=True)
class PropertyReport:
    """Results for goals #1-#8; sparing goals are None when not applicable."""

    single_failure_correcting: GoalResult      # goal 1
    distributed_parity: GoalResult             # goal 2
    distributed_reconstruction: GoalResult     # goal 3
    large_write_optimization: GoalResult       # goal 4
    maximal_read_parallelism: GoalResult       # goal 5
    efficient_mapping: GoalResult              # goal 6 (informational)
    distributed_sparing: Optional[GoalResult]  # goal 7
    degraded_read_parallelism: Optional[GoalResult]  # goal 8

    def goals_met(self) -> List[int]:
        met = []
        pairs = [
            (1, self.single_failure_correcting),
            (2, self.distributed_parity),
            (3, self.distributed_reconstruction),
            (4, self.large_write_optimization),
            (5, self.maximal_read_parallelism),
            (6, self.efficient_mapping),
            (7, self.distributed_sparing),
            (8, self.degraded_read_parallelism),
        ]
        for number, result in pairs:
            if result is not None and result.satisfied:
                met.append(number)
        return met


def _uniform(counts: Dict[int, int], label: str) -> GoalResult:
    values = list(counts.values())
    deviation = max(values) - min(values)
    return GoalResult(
        satisfied=deviation == 0,
        deviation=deviation,
        detail=f"{label}: min={min(values)}, max={max(values)}",
    )


def check_goal1(layout: Layout) -> GoalResult:
    """No two stripe units of a stripe share a disk."""
    worst = 0
    for s in range(layout.stripes_per_period):
        disks = layout.stripe_units_in_period(s).disks()
        worst = max(worst, len(disks) - len(set(disks)))
    return GoalResult(worst == 0, worst, f"max same-disk collisions: {worst}")


def check_goal2(layout: Layout) -> GoalResult:
    """Check units per disk are uniform over the pattern."""
    counts = {d: 0 for d in range(layout.n)}
    for s in range(layout.stripes_per_period):
        for addr in layout.stripe_units_in_period(s).check:
            counts[addr.disk] += 1
    return _uniform(counts, "check units per disk")


def check_goal3(layout: Layout) -> GoalResult:
    """Reconstruction reads are uniform over survivors, for every failure."""
    from repro.core.reconstruction import rebuild_read_tally

    worst = 0
    for failed in range(layout.n):
        tally = rebuild_read_tally(layout, failed)
        worst = max(worst, max(tally.values()) - min(tally.values()))
    return GoalResult(
        worst == 0, worst, f"worst per-failure read imbalance: {worst}"
    )


def check_goal4(layout: Layout) -> GoalResult:
    """Each stripe holds its full complement of contiguous client data
    units (k-1 for single-check stripes, k-c with c check units).

    Structural in this library (Layout.data_units_of_stripe is contiguous
    by construction), so the check verifies the stripe's data arity.
    """
    ok = all(
        len(layout.stripe_units_in_period(s).data) == layout.data_per_stripe
        for s in range(layout.stripes_per_period)
    )
    return GoalResult(
        ok, 0 if ok else 1, "contiguous data units fill each stripe"
    )


def working_set_for_read(layout: Layout, start: int, units: int) -> int:
    """Disks touched by a fault-free read of ``units`` data units."""
    return len(
        {layout.data_unit_address(start + i).disk for i in range(units)}
    )


def check_goal5(layout: Layout) -> GoalResult:
    """A read of n contiguous data units touches all n disks, at any offset."""
    worst = layout.n
    for start in range(layout.data_units_per_period):
        worst = min(worst, working_set_for_read(layout, start, layout.n))
    deviation = layout.n - worst
    return GoalResult(
        deviation == 0,
        deviation,
        f"min disks touched by n-unit read: {worst}/{layout.n}",
    )


def check_goal6(layout: Layout) -> GoalResult:
    """Efficient mapping — informational: table entries required."""
    entries = layout.mapping_table_entries()
    return GoalResult(True, entries, f"mapping table entries: {entries}")


def check_goal7(layout: Layout) -> Optional[GoalResult]:
    """Spare units per disk are uniform (layouts with sparing only)."""
    spares = layout.spare_addresses_in_period()
    if not spares:
        return None
    counts = {d: 0 for d in range(layout.n)}
    for addr in spares:
        counts[addr.disk] += 1
    return _uniform(counts, "spare units per disk")


def check_goal8(
    layout: Layout, failed_disk: int = 0, aligned_only: bool = True
) -> Optional[GoalResult]:
    """Degraded read parallelism: an ``n - g - 1``-unit read touches that
    many disks during reconstruction-mode operation.

    With ``aligned_only`` the read starts are row-aligned ("super stripes"),
    the case the paper says PDDL satisfies.
    """
    spares = layout.spare_addresses_in_period()
    if not spares:
        return None
    g = len(spares) and (layout.n - 1) // layout.k
    span = layout.n - g - 1
    if span <= 0:
        return None
    step = g * (layout.k - 1) if aligned_only else 1
    worst = span
    for start in range(0, layout.data_units_per_period, step):
        disks = set()
        for i in range(span):
            units = layout.stripe_units(
                layout.stripe_of_data_unit(start + i)
            )
            addr = layout.data_unit_address(start + i)
            if addr.disk == failed_disk:
                disks.update(
                    a.disk for a in units.all_units() if a.disk != failed_disk
                )
            else:
                disks.add(addr.disk)
        worst = min(worst, len(disks))
    deviation = span - worst
    return GoalResult(
        deviation == 0,
        deviation,
        f"min disks touched by {span}-unit degraded read: {worst}/{span}",
    )


def check_layout(layout: Layout) -> PropertyReport:
    """Run every goal check against one full layout pattern."""
    layout.validate()
    return PropertyReport(
        single_failure_correcting=check_goal1(layout),
        distributed_parity=check_goal2(layout),
        distributed_reconstruction=check_goal3(layout),
        large_write_optimization=check_goal4(layout),
        maximal_read_parallelism=check_goal5(layout),
        efficient_mapping=check_goal6(layout),
        distributed_sparing=check_goal7(layout),
        degraded_read_parallelism=check_goal8(layout),
    )
