"""Parity Declustering (Holland & Gibson, ASPLOS-V 1992).

The layout table is a complete BIBD: each block is the disk set of one
stripe.  The design is duplicated ``k`` times with the check unit rotating
through the block positions so every disk carries its fair share of parity.
Mapping is by table lookup — the scheme the paper uses as "the initial and
typical representation of BIBD-based layouts".
"""

from __future__ import annotations

from typing import Optional

from repro.designs.bibd import BlockDesign
from repro.designs.catalog import known_bibd
from repro.errors import ConfigurationError, MappingError
from repro.layouts.address import PhysicalAddress, StripeUnits
from repro.layouts.base import Layout


class ParityDeclusteringLayout(Layout):
    """BIBD-table layout with rotated parity.

    One pattern is ``k`` copies of the design; in copy ``c`` stripe ``j``'s
    check unit is block position ``(j + c) % k``.  Offsets are assigned by
    occurrence order, giving ``k * r`` rows per pattern (r = replications).

    >>> lay = ParityDeclusteringLayout(13, 4)
    >>> (lay.period, lay.stripes_per_period)
    (16, 52)
    """

    name = "Parity Declustering"

    def __init__(self, n: int, k: int, design: Optional[BlockDesign] = None):
        super().__init__(n=n, k=k)
        if design is None:
            design = known_bibd(n, k)
        if design.v != n or design.k != k:
            raise ConfigurationError(
                f"design is ({design.v}, {design.k}); layout needs ({n}, {k})"
            )
        design.validate_bibd()
        self.design = design
        self._replication = design.replication_counts()[0]
        # Offset of each (copy, block, position) unit: within a copy, disk
        # d's units stack in block order.
        self._offsets = {}
        for copy in range(k):
            seen = [0] * n
            for j, block in enumerate(design.blocks):
                for disk in block:
                    self._offsets[(copy, j, disk)] = (
                        copy * self._replication + seen[disk]
                    )
                    seen[disk] += 1

    @property
    def period(self) -> int:
        return self.k * self._replication

    @property
    def stripes_per_period(self) -> int:
        return self.k * self.design.b

    def stripe_units_in_period(self, stripe_index: int) -> StripeUnits:
        if not 0 <= stripe_index < self.stripes_per_period:
            raise MappingError(f"stripe {stripe_index} outside pattern")
        copy, j = divmod(stripe_index, self.design.b)
        block = self.design.blocks[j]
        check_pos = (j + copy) % self.k
        data = []
        check = []
        for position, disk in enumerate(block):
            addr = PhysicalAddress(disk, self._offsets[(copy, j, disk)])
            if position == check_pos:
                check.append(addr)
            else:
                data.append(addr)
        return StripeUnits(data=data, check=check)

    def mapping_table_entries(self) -> int:
        """Table 3: the stored design, ``b * k`` entries (= n(n-1)/(k-1)
        for the lambda = 1 designs the paper ships)."""
        return self.design.b * self.k
