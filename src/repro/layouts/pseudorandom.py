"""Pseudo-Random declustering (Merchant & Yu, IEEE ToC 1996).

Replaces the stored block design with an on-demand pseudo-random permutation
per row: the virtual RAID-4 template (spare columns, then ``g`` groups of
``k``) is shuffled independently in every row, so parity, spare space, and
reconstruction load are all *expected* to be even, with no exact guarantees
("expected values only" in Table 3's period column).

Merchant & Yu key a Thorpe shuffle per row; we use a seeded Fisher-Yates
draw, which is an equally deterministic stand-in exposing the same
statistical behaviour.  The layout repeats after ``rows`` rows (a knob —
true pseudo-random layouts are aperiodic, so pick it large relative to the
workload span).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError, MappingError
from repro.layouts.address import PhysicalAddress, StripeUnits
from repro.layouts.base import Layout


class PseudoRandomLayout(Layout):
    """Per-row pseudo-random shuffles of a RAID-4 template.

    >>> lay = PseudoRandomLayout(13, 4, spares=1, seed=7)
    >>> lay.stripes_per_period == lay.period * lay.g
    True
    """

    name = "Pseudo-Random"

    def __init__(
        self,
        n: int,
        k: int,
        spares: int = 1,
        rows: int = 128,
        seed: int = 0,
    ):
        super().__init__(n=n, k=k)
        if spares < 0:
            raise ConfigurationError(f"spares must be >= 0, got {spares}")
        if (n - spares) % k != 0 or n - spares <= 0:
            raise ConfigurationError(
                f"n = {n} does not decompose as g*{k} + {spares}"
            )
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        self.spares = spares
        self.g = (n - spares) // k
        self.rows = rows
        self.seed = seed
        self._row_perms: Dict[int, Tuple[int, ...]] = {}

    @property
    def period(self) -> int:
        return self.rows

    @property
    def stripes_per_period(self) -> int:
        return self.rows * self.g

    def _row_permutation(self, row: int) -> Tuple[int, ...]:
        perm = self._row_perms.get(row)
        if perm is None:
            rng = random.Random(f"{self.seed}:{row}")
            values = list(range(self.n))
            rng.shuffle(values)
            perm = tuple(values)
            self._row_perms[row] = perm
        return perm

    def stripe_units_in_period(self, stripe_index: int) -> StripeUnits:
        if not 0 <= stripe_index < self.stripes_per_period:
            raise MappingError(f"stripe {stripe_index} outside pattern")
        row, group = divmod(stripe_index, self.g)
        perm = self._row_permutation(row)
        start = self.spares + group * self.k
        columns = range(start, start + self.k)
        data = [PhysicalAddress(perm[c], row) for c in list(columns)[:-1]]
        check = [PhysicalAddress(perm[start + self.k - 1], row)]
        return StripeUnits(data=data, check=check)

    def spare_addresses_in_period(self) -> List[PhysicalAddress]:
        return [
            PhysicalAddress(self._row_permutation(row)[column], row)
            for row in range(self.rows)
            for column in range(self.spares)
        ]

    def relocation_target(self, addr: PhysicalAddress) -> PhysicalAddress:
        from repro.layouts.address import Role

        if self.spares == 0:
            raise MappingError("built without spare space")
        if self.locate(addr.disk, addr.offset).role is Role.SPARE:
            raise MappingError(f"{addr} is spare space; nothing to relocate")
        row = addr.offset % self.rows
        return PhysicalAddress(self._row_permutation(row)[0], addr.offset)

    def mapping_table_entries(self) -> int:
        return 2  # key + row-count state (Table 3: log n + log D bits)
