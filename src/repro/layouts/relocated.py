"""A layout view with one completed spare relocation folded in.

After a distributed-sparing rebuild finishes, the failed disk's units
live permanently in their same-row spare cells.  If a *second* disk then
fails, the planner does not need multi-failure logic: from the array's
point of view the completed relocation is simply the new mapping, and
the new failure is an ordinary single failure against that mapping.
:class:`RelocatedView` is that mapping — it wraps the base layout,
redirects every address on the relocated disk to its spare target, and
reports ``has_sparing = False`` (the spare space is spent), so the
planner and reconstructor drive the second repair cycle onto a
replacement spindle exactly like any no-sparing layout.

The view is duck-typed rather than a :class:`~repro.layouts.base.Layout`
subclass: the base class validates that a pattern covers the full
``n x period`` grid, which no longer holds once one spindle's cells are
dead.  It implements the full surface the planner, the reconstruction
planner, and the controller consume.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ConfigurationError, MappingError
from repro.layouts.address import PhysicalAddress, Role, StripeUnits, UnitInfo


class RelocatedView:
    """The base layout with disk ``relocated_disk``'s units in spare space.

    Addresses on the relocated disk are never returned: data units map to
    their spare targets, stripes list the targets as members, and
    ``locate`` resolves a spare target cell to the unit relocated into
    it.  Asking about the relocated disk itself raises — by construction
    nothing should be planned there.
    """

    def __init__(self, base, relocated_disk: int):
        if not base.has_sparing:
            raise ConfigurationError(
                f"{base.name} has no spare space to relocate into"
            )
        if not 0 <= relocated_disk < base.n:
            raise ConfigurationError(
                f"disk {relocated_disk} outside 0..{base.n - 1}"
            )
        self.base = base
        self.relocated_disk = relocated_disk
        self.name = f"relocated({base.name}, disk {relocated_disk})"
        self.n = base.n
        self.k = base.k
        # Inverse of the relocation over one period: spare target cell
        # -> relocated source row on the failed disk.
        inverse: Dict[Tuple[int, int], int] = {}
        for row in range(base.period):
            if base.locate(relocated_disk, row).role is Role.SPARE:
                continue
            target = base.relocation_target(
                PhysicalAddress(relocated_disk, row)
            )
            if target.disk == relocated_disk:
                raise MappingError(
                    f"{base.name}: cell ({relocated_disk}, {row})"
                    " relocates onto its own failed spindle"
                )
            inverse[(target.disk, target.offset % base.period)] = row
        self._spare_source = inverse

    # ------------------------------------------------------------------
    # Geometry (delegated).
    # ------------------------------------------------------------------

    @property
    def period(self) -> int:
        return self.base.period

    @property
    def stripes_per_period(self) -> int:
        return self.base.stripes_per_period

    @property
    def data_per_stripe(self) -> int:
        return self.base.data_per_stripe

    @property
    def checks_per_stripe(self) -> int:
        return self.base.checks_per_stripe

    @property
    def data_units_per_period(self) -> int:
        return self.base.data_units_per_period

    @property
    def has_sparing(self) -> bool:
        # The spare space is consumed by the folded-in relocation.
        return False

    def spare_addresses_in_period(self) -> List[PhysicalAddress]:
        return []

    def relocation_target(self, addr: PhysicalAddress) -> PhysicalAddress:
        raise MappingError(f"{self.name} has no spare space left")

    # ------------------------------------------------------------------
    # Forward mapping.
    # ------------------------------------------------------------------

    def _redirect(self, addr: PhysicalAddress) -> PhysicalAddress:
        if addr.disk == self.relocated_disk:
            return self.base.relocation_target(addr)
        return addr

    def data_unit_cell(self, unit: int) -> Tuple[int, int]:
        disk, offset = self.base.data_unit_cell(unit)
        if disk == self.relocated_disk:
            target = self.base.relocation_target(
                PhysicalAddress(disk, offset)
            )
            return target.disk, target.offset
        return disk, offset

    def data_unit_address(self, unit: int) -> PhysicalAddress:
        return PhysicalAddress(*self.data_unit_cell(unit))

    def stripe_of_data_unit(self, unit: int) -> int:
        return self.base.stripe_of_data_unit(unit)

    def data_units_of_stripe(self, stripe_id: int) -> range:
        return self.base.data_units_of_stripe(stripe_id)

    def stripe_units(self, stripe_id: int) -> StripeUnits:
        units = self.base.stripe_units(stripe_id)
        redirect = self._redirect
        return StripeUnits(
            data=[redirect(a) for a in units.data],
            check=[redirect(a) for a in units.check],
        )

    # ------------------------------------------------------------------
    # Inverse mapping.
    # ------------------------------------------------------------------

    def locate(self, disk: int, offset: int) -> UnitInfo:
        if disk == self.relocated_disk:
            raise MappingError(
                f"disk {disk} was relocated away; its cells hold no data"
            )
        if not 0 <= disk < self.n:
            raise MappingError(f"disk {disk} outside 0..{self.n - 1}")
        if offset < 0:
            raise MappingError(f"negative offset {offset}")
        period = self.base.period
        cycle, row = divmod(offset, period)
        source_row = self._spare_source.get((disk, row))
        if source_row is not None:
            return self.base.locate(
                self.relocated_disk, source_row + cycle * period
            )
        return self.base.locate(disk, offset)

    def describe(self) -> str:
        return (
            f"{self.name}(n={self.n}, k={self.k}, period={self.period},"
            f" sparing=False)"
        )

    def __repr__(self) -> str:
        return self.describe()
