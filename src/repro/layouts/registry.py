"""Name-keyed layout factory used by experiments and examples.

The five schemes of the paper's evaluation are registered under the names
they carry in the figures; extra aliases cover the library's additions.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.layouts.base import Layout


def _make_pddl(n: int, k: int, **kwargs) -> Layout:
    from repro.core.layout import pddl_for

    if (n - 1) % k != 0:
        raise ConfigurationError(
            f"PDDL needs n = g*k + 1; got n={n}, k={k}"
        )
    return pddl_for((n - 1) // k, k, **kwargs)


def _make_raid5(n: int, k: int, **kwargs) -> Layout:
    from repro.layouts.raid5 import LeftSymmetricRaid5Layout

    return LeftSymmetricRaid5Layout(n, **kwargs)


def _make_parity_decluster(n: int, k: int, **kwargs) -> Layout:
    from repro.layouts.parity_decluster import ParityDeclusteringLayout

    return ParityDeclusteringLayout(n, k, **kwargs)


def _make_datum(n: int, k: int, **kwargs) -> Layout:
    from repro.layouts.datum import DatumLayout

    return DatumLayout(n, k, **kwargs)


def _make_prime(n: int, k: int, **kwargs) -> Layout:
    from repro.layouts.prime import PrimeLayout

    return PrimeLayout(n, k, **kwargs)


def _make_pseudorandom(n: int, k: int, **kwargs) -> Layout:
    from repro.layouts.pseudorandom import PseudoRandomLayout

    return PseudoRandomLayout(n, k, **kwargs)


def _make_relpr(n: int, k: int, **kwargs) -> Layout:
    from repro.layouts.relpr import RelprLayout

    return RelprLayout(n, k, **kwargs)


_FACTORIES: Dict[str, Callable[..., Layout]] = {
    "pddl": _make_pddl,
    "raid5": _make_raid5,
    "raid-5": _make_raid5,
    "parity-declustering": _make_parity_decluster,
    "datum": _make_datum,
    "prime": _make_prime,
    "pseudo-random": _make_pseudorandom,
    "relpr": _make_relpr,
}

#: Display names matching the paper's figures.
DISPLAY_NAMES = {
    "pddl": "PDDL",
    "raid5": "RAID 5",
    "parity-declustering": "Parity Declustering",
    "datum": "DATUM",
    "prime": "PRIME",
    "pseudo-random": "Pseudo-Random",
    "relpr": "RELPR",
}


def available_layouts() -> List[str]:
    """Canonical registry keys."""
    return sorted(set(_FACTORIES) - {"raid-5"})


def make_layout(name: str, n: int, k: int, **kwargs) -> Layout:
    """Build a layout by registry name.

    >>> make_layout("raid5", 13, 13).name
    'RAID-5'
    """
    key = name.lower().replace("_", "-").strip()
    if key not in _FACTORIES:
        raise ConfigurationError(
            f"unknown layout {name!r}; available: {available_layouts()}"
        )
    return _FACTORIES[key](n, k, **kwargs)
