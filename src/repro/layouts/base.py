"""The abstract layout interface.

Every layout in this library is a deterministic, pure mapping between the
client's linear data-unit address space and array cells ``(disk, offset)``.
Layouts are periodic: a *layout pattern* of ``period`` rows repeats down the
disks.  Within one period there are ``stripes_per_period`` stripes, each
holding ``data_per_stripe`` contiguous client data units plus check unit(s),
and optionally distributed spare cells.

The shared machinery here (global/periodic address translation, the inverse
``locate`` table, structural validation) is what lets the simulator, the
analytic working-set tool, and the property checker treat PDDL and every
baseline uniformly.

Hot-path representation: the forward and inverse maps are served from
*flat* tables built once per layout — ``locate`` indexes a
list-of-lists ``[disk][row]`` grid and ``data_unit_address`` a flat
per-period array of ``(disk, row)`` cells — so the simulator's millions
of address translations are two integer indexings each, with no
namedtuple hashing and no per-call stripe materialisation.  The original
``Dict[PhysicalAddress, UnitInfo]`` period table survives as
:meth:`locate_reference` / :meth:`data_unit_address_reference`; the
registry-wide property test in ``tests/layouts/test_flat_fast_path.py``
pins the two paths cell-for-cell equal across multiple periods.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, MappingError
from repro.layouts.address import PhysicalAddress, Role, StripeUnits, UnitInfo

#: Shifted-cycle stripes kept per layout (see :meth:`Layout.stripe_units`).
_SHIFTED_STRIPE_CACHE_SIZE = 256


class Layout(abc.ABC):
    """Abstract data layout over ``n`` disks with stripe width ``k``.

    Subclasses implement :meth:`stripe_units_in_period` (the forward map for
    one layout pattern) and :meth:`spare_addresses_in_period`; everything
    else — global stripe addressing, client data-unit translation, the
    inverse map — derives from those.
    """

    #: Human-readable scheme name, overridden per subclass.
    name: str = "abstract"

    def __init__(self, n: int, k: int):
        if k < 2:
            raise ConfigurationError(f"stripe width must be >= 2, got {k}")
        if n < k:
            raise ConfigurationError(
                f"need at least k = {k} disks, got n = {n}"
            )
        self.n = n
        self.k = k
        self._locate_table: Optional[Dict[PhysicalAddress, UnitInfo]] = None
        self._stripe_cache: Dict[int, StripeUnits] = {}
        # Flat fast-path tables (built lazily, see _build_flat_tables).
        self._locate_grid: Optional[List[List[UnitInfo]]] = None
        self._data_cells: Optional[List[Tuple[int, int]]] = None
        # (period, stripes_per_period, data_per_stripe) snapshot: several
        # layouts compute these properties through non-trivial chains
        # (PDDL walks its permutation group), so the translation hot path
        # reads them once.  Layout geometry is immutable after
        # construction, which is what makes the snapshot sound.
        self._consts: Optional[Tuple[int, int, int]] = None
        # has_sparing memo: sits on degraded/rebuild planning hot paths
        # (every stripe decision consults it) and the spare list it is
        # derived from is fixed at construction.
        self._sparing: Optional[bool] = None
        # Small LRU of *shifted* (cycle > 0) StripeUnits: closed-loop
        # workloads revisit the same global stripes, so repeated
        # multi-period accesses reuse the materialised address lists.
        self._shifted_cache: "OrderedDict[int, StripeUnits]" = OrderedDict()

    # ------------------------------------------------------------------
    # Quantities subclasses must define.
    # ------------------------------------------------------------------

    @property
    @abc.abstractmethod
    def period(self) -> int:
        """Rows (offsets) in one layout pattern."""

    @property
    @abc.abstractmethod
    def stripes_per_period(self) -> int:
        """Number of stripes in one layout pattern."""

    @abc.abstractmethod
    def stripe_units_in_period(self, stripe_index: int) -> StripeUnits:
        """Physical cells of stripe ``stripe_index`` (0-based within the
        pattern); all offsets must lie in ``range(period)``."""

    def spare_addresses_in_period(self) -> List[PhysicalAddress]:
        """Distributed-spare cells of one pattern (empty if no sparing)."""
        return []

    # ------------------------------------------------------------------
    # Derived quantities.
    # ------------------------------------------------------------------

    @property
    def data_per_stripe(self) -> int:
        """Contiguous client data units per stripe (goal #4)."""
        return self.k - 1

    @property
    def checks_per_stripe(self) -> int:
        return self.k - self.data_per_stripe

    @property
    def data_units_per_period(self) -> int:
        return self.stripes_per_period * self.data_per_stripe

    @property
    def has_sparing(self) -> bool:
        cached = self._sparing
        if cached is None:
            cached = self._sparing = bool(self.spare_addresses_in_period())
        return cached

    @property
    def parity_overhead(self) -> float:
        """Fraction of array cells holding check units."""
        checks = self.stripes_per_period * self.checks_per_stripe
        return checks / (self.period * self.n)

    @property
    def spare_overhead(self) -> float:
        """Fraction of array cells holding spare units."""
        return len(self.spare_addresses_in_period()) / (self.period * self.n)

    # ------------------------------------------------------------------
    # Global (multi-period) addressing.
    # ------------------------------------------------------------------

    def _layout_consts(self) -> Tuple[int, int, int]:
        """Snapshot ``(period, stripes_per_period, data_per_stripe)``."""
        consts = self._consts
        if consts is None:
            consts = (
                self.period,
                self.stripes_per_period,
                self.data_per_stripe,
            )
            self._consts = consts
        return consts

    def stripe_units(self, stripe_id: int) -> StripeUnits:
        """Physical cells of a global stripe (period-extended)."""
        if stripe_id < 0:
            raise MappingError(f"negative stripe id {stripe_id}")
        period, stripes_per_period, _ = self._layout_consts()
        cycle, index = divmod(stripe_id, stripes_per_period)
        base = self._stripe_cache.get(index)
        if base is None:
            base = self.stripe_units_in_period(index)
            self._stripe_cache[index] = base
        if cycle == 0:
            return base
        shifted_cache = self._shifted_cache
        shifted = shifted_cache.get(stripe_id)
        if shifted is not None:
            shifted_cache.move_to_end(stripe_id)
            return shifted
        shift = cycle * period
        shifted = StripeUnits(
            data=[PhysicalAddress(d, o + shift) for d, o in base.data],
            check=[PhysicalAddress(d, o + shift) for d, o in base.check],
        )
        shifted_cache[stripe_id] = shifted
        if len(shifted_cache) > _SHIFTED_STRIPE_CACHE_SIZE:
            shifted_cache.popitem(last=False)
        return shifted

    def stripe_of_data_unit(self, unit: int) -> int:
        """Global stripe holding client data unit ``unit``."""
        if unit < 0:
            raise MappingError(f"negative data unit {unit}")
        return unit // self.data_per_stripe

    def data_unit_cell(self, unit: int) -> Tuple[int, int]:
        """Physical cell of a client data unit as a plain ``(disk,
        offset)`` tuple — the allocation-free core of
        :meth:`data_unit_address` (the planner builds its own op tuples
        from it)."""
        if unit < 0:
            raise MappingError(f"negative data unit {unit}")
        cells = self._data_cells
        if cells is None:
            cells = self._build_flat_tables()[1]
        consts = self._consts
        if consts is None:
            consts = self._layout_consts()
        period, stripes_per_period, per_stripe = consts
        stripe, position = divmod(unit, per_stripe)
        cycle, index = divmod(stripe, stripes_per_period)
        disk, row = cells[index * per_stripe + position]
        return disk, row + cycle * period

    def data_unit_cells(
        self, first_unit: int, count: int
    ) -> List[Tuple[int, int]]:
        """Cells of ``count`` consecutive data units starting at
        ``first_unit`` — :meth:`data_unit_cell` batched, with the bounds
        check and table lookups hoisted out of the per-unit loop and the
        two divmods replaced by an incrementing flat-table index (a unit
        step moves one slot through the period's flat cell array,
        wrapping into the next cycle)."""
        if first_unit < 0:
            raise MappingError(f"negative data unit {first_unit}")
        cells = self._data_cells
        if cells is None:
            cells = self._build_flat_tables()[1]
        period, stripes_per_period, per_stripe = self._layout_consts()
        units_per_cycle = stripes_per_period * per_stripe
        cycle, slot = divmod(first_unit, units_per_cycle)
        shift = cycle * period
        out = []
        append = out.append
        for _ in range(count):
            if slot == units_per_cycle:
                slot = 0
                shift += period
            disk, row = cells[slot]
            append((disk, row + shift))
            slot += 1
        return out

    def data_unit_address(self, unit: int) -> PhysicalAddress:
        """Physical cell of a client data unit."""
        return PhysicalAddress(*self.data_unit_cell(unit))

    def data_unit_address_reference(self, unit: int) -> PhysicalAddress:
        """Reference path for :meth:`data_unit_address`: materialise the
        whole stripe and index its data list (the pre-flat-table
        implementation, kept for the equivalence property test)."""
        stripe = self.stripe_of_data_unit(unit)
        position = unit % self.data_per_stripe
        return self.stripe_units(stripe).data[position]

    def data_units_of_stripe(self, stripe_id: int) -> range:
        """Client data units stored in the given global stripe."""
        lo = stripe_id * self.data_per_stripe
        return range(lo, lo + self.data_per_stripe)

    # ------------------------------------------------------------------
    # Inverse mapping.
    # ------------------------------------------------------------------

    def locate(self, disk: int, offset: int) -> UnitInfo:
        """What lives at cell ``(disk, offset)``.

        Returns the unit's role, its global stripe id (-1 for spares), and
        its position within the stripe.
        """
        grid = self._locate_grid
        if grid is None:
            grid = self._build_flat_tables()[0]
        if not 0 <= disk < self.n:
            raise MappingError(f"disk {disk} outside 0..{self.n - 1}")
        if offset < 0:
            raise MappingError(f"negative offset {offset}")
        cycle, row = divmod(offset, self.period)
        info = grid[disk][row]
        if cycle == 0 or info.role is Role.SPARE:
            return info
        return UnitInfo(
            role=info.role,
            stripe=info.stripe + cycle * self.stripes_per_period,
            position=info.position,
        )

    def locate_reference(self, disk: int, offset: int) -> UnitInfo:
        """Reference path for :meth:`locate`: the dict-keyed period table
        (the pre-flat-table implementation, kept for the equivalence
        property test)."""
        if not 0 <= disk < self.n:
            raise MappingError(f"disk {disk} outside 0..{self.n - 1}")
        if offset < 0:
            raise MappingError(f"negative offset {offset}")
        cycle, row = divmod(offset, self.period)
        info = self._period_table()[PhysicalAddress(disk, row)]
        if info.role is Role.SPARE:
            return info
        return UnitInfo(
            role=info.role,
            stripe=info.stripe + cycle * self.stripes_per_period,
            position=info.position,
        )

    def _period_table(self) -> Dict[PhysicalAddress, UnitInfo]:
        if self._locate_table is None:
            table: Dict[PhysicalAddress, UnitInfo] = {}
            for s in range(self.stripes_per_period):
                units = self.stripe_units_in_period(s)
                for j, addr in enumerate(units.data):
                    self._table_insert(table, addr, UnitInfo(Role.DATA, s, j))
                for j, addr in enumerate(units.check):
                    self._table_insert(
                        table,
                        addr,
                        UnitInfo(Role.CHECK, s, self.data_per_stripe + j),
                    )
            for addr in self.spare_addresses_in_period():
                self._table_insert(table, addr, UnitInfo(Role.SPARE, -1, -1))
            expected = self.period * self.n
            if len(table) != expected:
                raise MappingError(
                    f"{self.name}: pattern covers {len(table)} cells,"
                    f" expected {expected}"
                )
            self._locate_table = table
        return self._locate_table

    def _build_flat_tables(
        self,
    ) -> Tuple[List[List[UnitInfo]], List[Tuple[int, int]]]:
        """Build and cache the flat fast-path tables from the dict-keyed
        period table.

        - ``grid[disk][row]``: the :class:`UnitInfo` of every cell of one
          pattern (the inverse map, minus hashing);
        - ``data_cells[stripe_index * data_per_stripe + position]``: the
          ``(disk, row)`` cell of every client data unit of one pattern
          (the forward map, minus stripe materialisation).

        Deriving both from :meth:`_period_table` reuses its
        every-cell-covered-exactly-once validation and keeps the fast
        path equal to the reference by construction.
        """
        table = self._period_table()
        period = self.period
        grid: List[List[UnitInfo]] = [
            [None] * period for _ in range(self.n)  # type: ignore[list-item]
        ]
        data_cells: List[Tuple[int, int]] = [
            None  # type: ignore[list-item]
        ] * (self.stripes_per_period * self.data_per_stripe)
        per_stripe = self.data_per_stripe
        for (disk, row), info in table.items():
            grid[disk][row] = info
            if info.role is Role.DATA:
                data_cells[info.stripe * per_stripe + info.position] = (
                    disk,
                    row,
                )
        self._locate_grid = grid
        self._data_cells = data_cells
        return grid, data_cells

    def _table_insert(
        self,
        table: Dict[PhysicalAddress, UnitInfo],
        addr: PhysicalAddress,
        info: UnitInfo,
    ) -> None:
        if not 0 <= addr.disk < self.n or not 0 <= addr.offset < self.period:
            raise MappingError(
                f"{self.name}: cell {addr} outside the layout pattern"
            )
        if addr in table:
            raise MappingError(f"{self.name}: cell {addr} mapped twice")
        table[addr] = info

    # ------------------------------------------------------------------
    # Sparing hooks (overridden by layouts with distributed spare space).
    # ------------------------------------------------------------------

    def relocation_target(self, addr: PhysicalAddress) -> PhysicalAddress:
        """Spare cell that receives the reconstructed copy of ``addr``.

        Only meaningful for layouts with distributed sparing; the default
        raises.
        """
        raise MappingError(f"{self.name} has no spare space")

    # ------------------------------------------------------------------
    # Validation and reporting.
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural sanity of one full pattern.

        - every cell of the ``period x n`` grid is used exactly once,
        - no stripe places two units on the same disk (goal #1).
        """
        self._period_table()
        for s in range(self.stripes_per_period):
            disks = self.stripe_units_in_period(s).disks()
            if len(set(disks)) != len(disks):
                raise MappingError(
                    f"{self.name}: stripe {s} uses a disk twice (goal #1)"
                )

    def mapping_table_entries(self) -> int:
        """Entries of persistent state the mapping needs (Table 3 metric).

        0 for purely arithmetic schemes; subclasses override.
        """
        return 0

    def describe(self) -> str:
        return (
            f"{self.name}(n={self.n}, k={self.k}, period={self.period},"
            f" stripes/period={self.stripes_per_period},"
            f" sparing={self.has_sparing})"
        )

    def __repr__(self) -> str:
        return self.describe()
