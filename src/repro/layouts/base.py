"""The abstract layout interface.

Every layout in this library is a deterministic, pure mapping between the
client's linear data-unit address space and array cells ``(disk, offset)``.
Layouts are periodic: a *layout pattern* of ``period`` rows repeats down the
disks.  Within one period there are ``stripes_per_period`` stripes, each
holding ``data_per_stripe`` contiguous client data units plus check unit(s),
and optionally distributed spare cells.

The shared machinery here (global/periodic address translation, the inverse
``locate`` table, structural validation) is what lets the simulator, the
analytic working-set tool, and the property checker treat PDDL and every
baseline uniformly.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, MappingError
from repro.layouts.address import PhysicalAddress, Role, StripeUnits, UnitInfo


class Layout(abc.ABC):
    """Abstract data layout over ``n`` disks with stripe width ``k``.

    Subclasses implement :meth:`stripe_units_in_period` (the forward map for
    one layout pattern) and :meth:`spare_addresses_in_period`; everything
    else — global stripe addressing, client data-unit translation, the
    inverse map — derives from those.
    """

    #: Human-readable scheme name, overridden per subclass.
    name: str = "abstract"

    def __init__(self, n: int, k: int):
        if k < 2:
            raise ConfigurationError(f"stripe width must be >= 2, got {k}")
        if n < k:
            raise ConfigurationError(
                f"need at least k = {k} disks, got n = {n}"
            )
        self.n = n
        self.k = k
        self._locate_table: Optional[Dict[PhysicalAddress, UnitInfo]] = None
        self._stripe_cache: Dict[int, StripeUnits] = {}

    # ------------------------------------------------------------------
    # Quantities subclasses must define.
    # ------------------------------------------------------------------

    @property
    @abc.abstractmethod
    def period(self) -> int:
        """Rows (offsets) in one layout pattern."""

    @property
    @abc.abstractmethod
    def stripes_per_period(self) -> int:
        """Number of stripes in one layout pattern."""

    @abc.abstractmethod
    def stripe_units_in_period(self, stripe_index: int) -> StripeUnits:
        """Physical cells of stripe ``stripe_index`` (0-based within the
        pattern); all offsets must lie in ``range(period)``."""

    def spare_addresses_in_period(self) -> List[PhysicalAddress]:
        """Distributed-spare cells of one pattern (empty if no sparing)."""
        return []

    # ------------------------------------------------------------------
    # Derived quantities.
    # ------------------------------------------------------------------

    @property
    def data_per_stripe(self) -> int:
        """Contiguous client data units per stripe (goal #4)."""
        return self.k - 1

    @property
    def checks_per_stripe(self) -> int:
        return self.k - self.data_per_stripe

    @property
    def data_units_per_period(self) -> int:
        return self.stripes_per_period * self.data_per_stripe

    @property
    def has_sparing(self) -> bool:
        return bool(self.spare_addresses_in_period())

    @property
    def parity_overhead(self) -> float:
        """Fraction of array cells holding check units."""
        checks = self.stripes_per_period * self.checks_per_stripe
        return checks / (self.period * self.n)

    @property
    def spare_overhead(self) -> float:
        """Fraction of array cells holding spare units."""
        return len(self.spare_addresses_in_period()) / (self.period * self.n)

    # ------------------------------------------------------------------
    # Global (multi-period) addressing.
    # ------------------------------------------------------------------

    def stripe_units(self, stripe_id: int) -> StripeUnits:
        """Physical cells of a global stripe (period-extended)."""
        if stripe_id < 0:
            raise MappingError(f"negative stripe id {stripe_id}")
        cycle, index = divmod(stripe_id, self.stripes_per_period)
        base = self._stripe_cache.get(index)
        if base is None:
            base = self.stripe_units_in_period(index)
            self._stripe_cache[index] = base
        if cycle == 0:
            return base
        shift = cycle * self.period
        return StripeUnits(
            data=[PhysicalAddress(d, o + shift) for d, o in base.data],
            check=[PhysicalAddress(d, o + shift) for d, o in base.check],
        )

    def stripe_of_data_unit(self, unit: int) -> int:
        """Global stripe holding client data unit ``unit``."""
        if unit < 0:
            raise MappingError(f"negative data unit {unit}")
        return unit // self.data_per_stripe

    def data_unit_address(self, unit: int) -> PhysicalAddress:
        """Physical cell of a client data unit."""
        stripe = self.stripe_of_data_unit(unit)
        position = unit % self.data_per_stripe
        return self.stripe_units(stripe).data[position]

    def data_units_of_stripe(self, stripe_id: int) -> range:
        """Client data units stored in the given global stripe."""
        lo = stripe_id * self.data_per_stripe
        return range(lo, lo + self.data_per_stripe)

    # ------------------------------------------------------------------
    # Inverse mapping.
    # ------------------------------------------------------------------

    def locate(self, disk: int, offset: int) -> UnitInfo:
        """What lives at cell ``(disk, offset)``.

        Returns the unit's role, its global stripe id (-1 for spares), and
        its position within the stripe.
        """
        if not 0 <= disk < self.n:
            raise MappingError(f"disk {disk} outside 0..{self.n - 1}")
        if offset < 0:
            raise MappingError(f"negative offset {offset}")
        cycle, row = divmod(offset, self.period)
        info = self._period_table()[PhysicalAddress(disk, row)]
        if info.role is Role.SPARE:
            return info
        return UnitInfo(
            role=info.role,
            stripe=info.stripe + cycle * self.stripes_per_period,
            position=info.position,
        )

    def _period_table(self) -> Dict[PhysicalAddress, UnitInfo]:
        if self._locate_table is None:
            table: Dict[PhysicalAddress, UnitInfo] = {}
            for s in range(self.stripes_per_period):
                units = self.stripe_units_in_period(s)
                for j, addr in enumerate(units.data):
                    self._table_insert(table, addr, UnitInfo(Role.DATA, s, j))
                for j, addr in enumerate(units.check):
                    self._table_insert(
                        table,
                        addr,
                        UnitInfo(Role.CHECK, s, self.data_per_stripe + j),
                    )
            for addr in self.spare_addresses_in_period():
                self._table_insert(table, addr, UnitInfo(Role.SPARE, -1, -1))
            expected = self.period * self.n
            if len(table) != expected:
                raise MappingError(
                    f"{self.name}: pattern covers {len(table)} cells,"
                    f" expected {expected}"
                )
            self._locate_table = table
        return self._locate_table

    def _table_insert(
        self,
        table: Dict[PhysicalAddress, UnitInfo],
        addr: PhysicalAddress,
        info: UnitInfo,
    ) -> None:
        if not 0 <= addr.disk < self.n or not 0 <= addr.offset < self.period:
            raise MappingError(
                f"{self.name}: cell {addr} outside the layout pattern"
            )
        if addr in table:
            raise MappingError(f"{self.name}: cell {addr} mapped twice")
        table[addr] = info

    # ------------------------------------------------------------------
    # Sparing hooks (overridden by layouts with distributed spare space).
    # ------------------------------------------------------------------

    def relocation_target(self, addr: PhysicalAddress) -> PhysicalAddress:
        """Spare cell that receives the reconstructed copy of ``addr``.

        Only meaningful for layouts with distributed sparing; the default
        raises.
        """
        raise MappingError(f"{self.name} has no spare space")

    # ------------------------------------------------------------------
    # Validation and reporting.
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural sanity of one full pattern.

        - every cell of the ``period x n`` grid is used exactly once,
        - no stripe places two units on the same disk (goal #1).
        """
        self._period_table()
        for s in range(self.stripes_per_period):
            disks = self.stripe_units_in_period(s).disks()
            if len(set(disks)) != len(disks):
                raise MappingError(
                    f"{self.name}: stripe {s} uses a disk twice (goal #1)"
                )

    def mapping_table_entries(self) -> int:
        """Entries of persistent state the mapping needs (Table 3 metric).

        0 for purely arithmetic schemes; subclasses override.
        """
        return 0

    def describe(self) -> str:
        return (
            f"{self.name}(n={self.n}, k={self.k}, period={self.period},"
            f" stripes/period={self.stripes_per_period},"
            f" sparing={self.has_sparing})"
        )

    def __repr__(self) -> str:
        return self.describe()
