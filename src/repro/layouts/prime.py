"""PRIME (Alvarez, Burkhard, Stockmeyer & Cristian, ISCA 1998) —
reconstructed from its published properties.

The ISCA'98 construction itself is not reproduced verbatim here (the full
text was unavailable); this implementation is built to satisfy exactly the
properties the PDDL paper's comparison relies on, and the test suite checks
each of them:

- ``n`` prime; on-demand arithmetic mapping, zero tables (Table 3),
- distributed parity: every disk carries the same number of check units,
- (near-)maximal read parallelism: ``n`` contiguous data units always touch
  ``n`` distinct disks,
- large-write optimization: each stripe holds ``k - 1`` contiguous client
  units,
- reconstruction load spread over all survivors across the full pattern.

Construction: the pattern has ``n - 1`` *sections* with multipliers
``z = 1 .. n - 1``.  A section is ``k`` rows: ``k - 1`` data rows filled
row-major by client units (unit ``u`` of the section sits in row ``u // n``
at physical disk ``z * (u % n) mod n``) and one parity row.  Stripe ``j`` of
the section holds client units ``j*(k-1) .. j*(k-1)+k-2`` and its parity at
logical column ``(j+1)*(k-1) mod n`` of the parity row.  The multiplier
makes successive sections stripe the same logical neighbourhoods across
different physical disks, which is what spreads reconstruction load.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, MappingError
from repro.gf.prime import is_prime
from repro.layouts.address import PhysicalAddress, StripeUnits
from repro.layouts.base import Layout


class PrimeLayout(Layout):
    """PRIME-style declustered layout for a prime number of disks.

    >>> lay = PrimeLayout(13, 4)
    >>> (lay.period, lay.stripes_per_period)
    (48, 156)
    """

    name = "PRIME"

    def __init__(self, n: int, k: int):
        super().__init__(n=n, k=k)
        if not is_prime(n):
            raise ConfigurationError(f"PRIME needs a prime disk count, got {n}")
        if k >= n:
            raise ConfigurationError(
                f"PRIME declusters; needs k < n, got k={k}, n={n}"
            )

    @property
    def sections(self) -> int:
        return self.n - 1

    @property
    def period(self) -> int:
        return self.sections * self.k

    @property
    def stripes_per_period(self) -> int:
        return self.sections * self.n

    def stripe_units_in_period(self, stripe_index: int) -> StripeUnits:
        if not 0 <= stripe_index < self.stripes_per_period:
            raise MappingError(f"stripe {stripe_index} outside pattern")
        section, j = divmod(stripe_index, self.n)
        z = section + 1
        base_row = section * self.k
        data = []
        for i in range(self.k - 1):
            unit = j * (self.k - 1) + i
            row, column = divmod(unit, self.n)
            data.append(
                PhysicalAddress(z * column % self.n, base_row + row)
            )
        parity_column = (j + 1) * (self.k - 1) % self.n
        check = [
            PhysicalAddress(
                z * parity_column % self.n, base_row + self.k - 1
            )
        ]
        return StripeUnits(data=data, check=check)

    def mapping_table_entries(self) -> int:
        return 0  # purely arithmetic (Table 3)
