"""Disk-array data layouts.

A *layout* is a pure function family mapping client data units to physical
``(disk, offset)`` addresses, organized in stripes of ``k`` units (``k - 1``
data + 1 check).  This package defines the common interface
(:class:`~repro.layouts.base.Layout`), the paper's comparison layouts
(left-symmetric RAID-5, Parity Declustering, DATUM, PRIME, Pseudo-Random),
the machine-checkable layout goals #1-#8
(:mod:`~repro.layouts.properties`), and a name registry used by the
experiment harness.  PDDL itself lives in :mod:`repro.core`.
"""

from repro.layouts.address import PhysicalAddress, Role, StripeUnits, UnitInfo
from repro.layouts.base import Layout
from repro.layouts.datum import DatumLayout
from repro.layouts.parity_decluster import ParityDeclusteringLayout
from repro.layouts.prime import PrimeLayout
from repro.layouts.pseudorandom import PseudoRandomLayout
from repro.layouts.raid5 import LeftSymmetricRaid5Layout
from repro.layouts.registry import available_layouts, make_layout
from repro.layouts.relpr import RelprLayout

__all__ = [
    "DatumLayout",
    "Layout",
    "LeftSymmetricRaid5Layout",
    "ParityDeclusteringLayout",
    "PhysicalAddress",
    "PrimeLayout",
    "PseudoRandomLayout",
    "RelprLayout",
    "Role",
    "StripeUnits",
    "UnitInfo",
    "available_layouts",
    "make_layout",
]
