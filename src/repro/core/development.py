"""Development operators: how a base permutation is shifted per row.

The paper's mapping function is ``physical_disk = (permutation[d] + offset)``
with "+" taken inside GF(n): addition modulo ``n`` when ``n`` is prime (and,
empirically, for many composite ``n`` — Table 1), and bitwise XOR when ``n``
is a power of two.  For general prime powers ``p**m`` addition is
coefficient-wise mod ``p`` on base-``p`` digits.
"""

from __future__ import annotations

import abc

from repro.errors import ConfigurationError
from repro.gf.prime import factorize


class Development(abc.ABC):
    """An abelian group operation on ``range(n)`` used to develop rows."""

    def __init__(self, n: int):
        if n < 2:
            raise ConfigurationError(f"need n >= 2, got {n}")
        self.n = n

    @abc.abstractmethod
    def shift(self, value: int, t: int) -> int:
        """Develop ``value`` by row index ``t`` (t may exceed n; reduced)."""

    @abc.abstractmethod
    def unshift(self, value: int, t: int) -> int:
        """Inverse of :meth:`shift`: the v with ``shift(v, t) == value``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n})"

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.n == self.n

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.n))


class ModularDevelopment(Development):
    """Addition modulo ``n`` — the paper's default development.

    >>> ModularDevelopment(7).shift(4, 5)
    2
    """

    def shift(self, value: int, t: int) -> int:
        return (value + t) % self.n

    def unshift(self, value: int, t: int) -> int:
        return (value - t) % self.n


class XorDevelopment(Development):
    """Bitwise XOR — addition in GF(2^m) for ``n = 2**m`` (paper appendix).

    >>> XorDevelopment(16).shift(0b1010, 0b0110)
    12
    """

    def __init__(self, n: int):
        super().__init__(n)
        if n & (n - 1):
            raise ConfigurationError(f"XOR development needs n = 2**m, got {n}")
        self.mask = n - 1

    def shift(self, value: int, t: int) -> int:
        return (value ^ t) & self.mask

    unshift = shift  # XOR is an involution


class DigitDevelopment(Development):
    """Coefficient-wise addition mod ``p`` — addition in GF(p^m).

    Encodes elements as base-``p`` integers, matching how
    :class:`repro.gf.binary.BinaryField` encodes GF(2^m) (of which this is
    the general-characteristic version).

    >>> DigitDevelopment(3, 2).shift(5, 4)  # (1,2)+(1,1) = (2,0) -> 2*3+0
    6
    """

    def __init__(self, p: int, m: int):
        if m < 1:
            raise ConfigurationError(f"need m >= 1, got {m}")
        super().__init__(p**m)
        self.p = p
        self.m = m

    def _combine(self, value: int, t: int, sign: int) -> int:
        t %= self.n
        digits = []
        for _ in range(self.m):
            digits.append((value % self.p + sign * (t % self.p)) % self.p)
            value //= self.p
            t //= self.p
        out = 0
        for d in reversed(digits):
            out = out * self.p + d
        return out

    def shift(self, value: int, t: int) -> int:
        return self._combine(value, t, +1)

    def unshift(self, value: int, t: int) -> int:
        return self._combine(value, t, -1)


def development_for(n: int) -> Development:
    """Pick the natural development for ``n`` disks.

    XOR for powers of two, digit-wise GF(p^m) addition for other prime
    powers, modular addition otherwise (primes and the composite entries of
    Table 1 both use it).
    """
    factors = factorize(n)
    if len(factors) == 1:
        ((p, m),) = factors.items()
        if p == 2 and m > 1:
            return XorDevelopment(n)
        if m > 1:
            return DigitDevelopment(p, m)
    return ModularDevelopment(n)
