"""Base permutations and their quality analysis.

A base permutation assigns each *virtual column* of the RAID-4 template a
starting physical disk.  Columns are laid out spare-first: columns
``0 .. s-1`` are distributed spare space, then ``g`` groups of ``k`` columns,
each group being ``k - 1`` client-data columns followed by one check column
(Figure 1/2 of the paper).

The quality question (goal #3) is whether reconstruction reads after a disk
failure spread evenly over the survivors; :meth:`BasePermutation
.reconstruction_read_tally` computes the per-survivor read counts for one
developed pattern, and :class:`PermutationGroup` combines several base
permutations whose individual tallies cancel (the n = 10 and n = 55 examples).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.development import Development, ModularDevelopment
from repro.errors import ConfigurationError


class BasePermutation:
    """A base permutation for ``g`` stripes of width ``k`` plus spares.

    >>> bp = BasePermutation((0, 1, 2, 4, 3, 6, 5), k=3)
    >>> bp.g, bp.spares
    (2, 1)
    >>> bp.is_satisfactory()
    True
    >>> BasePermutation(tuple(range(7)), k=3).is_satisfactory()
    False
    """

    def __init__(
        self,
        values: Sequence[int],
        k: int,
        spares: int = 1,
        checks: int = 1,
    ):
        values = tuple(values)
        n = len(values)
        if sorted(values) != list(range(n)):
            raise ConfigurationError(
                f"{values} is not a permutation of 0..{n - 1}"
            )
        if k < 2:
            raise ConfigurationError(f"stripe width must be >= 2, got {k}")
        if spares < 0:
            raise ConfigurationError(f"spares must be >= 0, got {spares}")
        if not 1 <= checks < k:
            raise ConfigurationError(
                f"checks must be in 1..{k - 1}, got {checks}"
            )
        if (n - spares) % k != 0 or n - spares <= 0:
            raise ConfigurationError(
                f"n = {n} does not decompose as g*{k} + {spares}"
            )
        self.values = values
        self.n = n
        self.k = k
        self.spares = spares
        self.checks = checks
        self.g = (n - spares) // k
        self._inverse = [0] * n
        for column, disk in enumerate(values):
            self._inverse[disk] = column

    # ------------------------------------------------------------------
    # Column structure.
    # ------------------------------------------------------------------

    def column_group(self, column: int) -> int:
        """Stripe group of a column, or -1 for spare columns."""
        if column < self.spares:
            return -1
        return (column - self.spares) // self.k

    def is_check_column(self, column: int) -> bool:
        """Check columns are the last ``checks`` columns of each group.

        The paper's §5: "PDDL can be adjusted to schemes using more than
        one check block per stripe" — the development structure distributes
        any fixed role assignment evenly.
        """
        if column < self.spares:
            return False
        return (column - self.spares) % self.k >= self.k - self.checks

    def group_columns(self, group: int) -> range:
        """Columns of stripe group ``group`` (data columns then the check)."""
        if not 0 <= group < self.g:
            raise ConfigurationError(f"group {group} outside 0..{self.g - 1}")
        start = self.spares + group * self.k
        return range(start, start + self.k)

    def column_of_disk(self, disk: int, t: int, dev: Development) -> int:
        """Which virtual column lands on ``disk`` in developed row ``t``."""
        return self._inverse[dev.unshift(disk, t)]

    def disk_of_column(self, column: int, t: int, dev: Development) -> int:
        """Physical disk of virtual column ``column`` in developed row ``t``."""
        return dev.shift(self.values[column], t)

    # ------------------------------------------------------------------
    # Goal #3: distributed reconstruction.
    # ------------------------------------------------------------------

    def reconstruction_read_tally(
        self,
        failed: int = 0,
        dev: Optional[Development] = None,
    ) -> Dict[int, int]:
        """Reads each surviving disk performs to rebuild ``failed``.

        Covers one developed pattern (``n`` rows).  In each row the failed
        disk holds exactly one virtual column; unless that column is spare,
        rebuilding it reads the ``k - 1`` other units of its stripe.

        For the paper's n = 10 example permutation the tally is uneven:

        >>> bp = BasePermutation((0, 1, 2, 8, 3, 5, 7, 4, 6, 9), k=3)
        >>> [bp.reconstruction_read_tally()[d] for d in range(1, 10)]
        [1, 3, 2, 2, 2, 2, 2, 3, 1]
        """
        dev = dev or ModularDevelopment(self.n)
        if dev.n != self.n:
            raise ConfigurationError("development size mismatch")
        if not 0 <= failed < self.n:
            raise ConfigurationError(f"failed disk {failed} out of range")
        tally = {d: 0 for d in range(self.n) if d != failed}
        for t in range(self.n):
            column = self.column_of_disk(failed, t, dev)
            group = self.column_group(column)
            if group < 0:
                continue  # the failed disk held spare space in this row
            for other in self.group_columns(group):
                if other == column:
                    continue
                tally[self.disk_of_column(other, t, dev)] += 1
        return tally

    def reconstruction_write_tally(
        self,
        failed: int = 0,
        dev: Optional[Development] = None,
        spare_column: int = 0,
    ) -> Dict[int, int]:
        """Writes of reconstructed units into spare space, per survivor."""
        if self.spares == 0:
            raise ConfigurationError("layout has no spare space")
        dev = dev or ModularDevelopment(self.n)
        tally = {d: 0 for d in range(self.n) if d != failed}
        for t in range(self.n):
            column = self.column_of_disk(failed, t, dev)
            if self.column_group(column) < 0:
                continue
            target = self.disk_of_column(spare_column, t, dev)
            tally[target] += 1
        return tally

    def tally_deviation(
        self, failed: int = 0, dev: Optional[Development] = None
    ) -> int:
        """max - min of the reconstruction read tally (0 = satisfactory)."""
        tally = self.reconstruction_read_tally(failed, dev)
        return max(tally.values()) - min(tally.values())

    def is_satisfactory(self, dev: Optional[Development] = None) -> bool:
        """Goal #3 holds: every survivor reads exactly ``k - 1`` units.

        The development structure makes disk 0 representative of every
        failure (the other tallies are translations of this one).
        """
        tally = self.reconstruction_read_tally(0, dev)
        return set(tally.values()) == {self.k - 1}

    def __repr__(self) -> str:
        return (
            f"BasePermutation({self.values}, k={self.k}, spares={self.spares})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BasePermutation)
            and other.values == self.values
            and other.k == self.k
            and other.spares == self.spares
        )

    def __hash__(self) -> int:
        return hash((self.values, self.k, self.spares))


class PermutationGroup:
    """Several base permutations used together (paper §2, n = 10; Fig. 17).

    When no solitary satisfactory permutation exists, a group whose
    individual reconstruction tallies *sum* to a uniform vector still meets
    goal #3 over the combined ``p * n``-row pattern.

    >>> a = BasePermutation((0, 1, 2, 8, 3, 5, 7, 4, 6, 9), k=3)
    >>> b = BasePermutation((0, 1, 2, 4, 3, 7, 8, 5, 6, 9), k=3)
    >>> PermutationGroup([a, b]).is_satisfactory()
    True
    """

    def __init__(self, permutations: Sequence[BasePermutation]):
        if not permutations:
            raise ConfigurationError("a group needs at least one permutation")
        first = permutations[0]
        for p in permutations:
            if (p.n, p.k, p.spares, p.checks) != (
                first.n, first.k, first.spares, first.checks,
            ):
                raise ConfigurationError(
                    "all permutations in a group must share"
                    " (n, k, spares, checks)"
                )
        self.permutations: Tuple[BasePermutation, ...] = tuple(permutations)
        self.n = first.n
        self.k = first.k
        self.g = first.g
        self.spares = first.spares
        self.checks = first.checks

    @property
    def p(self) -> int:
        """Number of base permutations (Table 3's ``p``)."""
        return len(self.permutations)

    def combined_tally(
        self, failed: int = 0, dev: Optional[Development] = None
    ) -> Dict[int, int]:
        total: Dict[int, int] = {d: 0 for d in range(self.n) if d != failed}
        for perm in self.permutations:
            for d, c in perm.reconstruction_read_tally(failed, dev).items():
                total[d] += c
        return total

    def tally_deviation(
        self, failed: int = 0, dev: Optional[Development] = None
    ) -> int:
        tally = self.combined_tally(failed, dev)
        return max(tally.values()) - min(tally.values())

    def is_satisfactory(self, dev: Optional[Development] = None) -> bool:
        """Every survivor reads exactly ``p * (k - 1)`` units per pattern."""
        tally = self.combined_tally(0, dev)
        return set(tally.values()) == {self.p * (self.k - 1)}

    def __repr__(self) -> str:
        return f"PermutationGroup(p={self.p}, n={self.n}, k={self.k})"


def identity_permutation(g: int, k: int, spares: int = 1) -> BasePermutation:
    """The trivial base permutation (0 1 2 ... n-1).

    Meets goals #1/#2/#4/#6/#7 but generally not #3 — the paper's example of
    an *unsatisfactory* choice; useful as an ablation baseline.
    """
    n = g * k + spares
    return BasePermutation(tuple(range(n)), k, spares)
