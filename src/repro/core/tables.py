"""Base permutations published in the paper.

- the n = 7 worked example (§2),
- the n = 10, k = 3 pair (§2),
- the n = 16, g = 3, k = 5 GF(16) permutation (appendix),
- the n = 55, k = 6, g = 9 pair (Figure 17),
- Table 1's summary of how many base permutations each small configuration
  needs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from repro.core.permutation import BasePermutation, PermutationGroup

#: §2: the seven-disk storage-server example, from Bose with omega = 3.
PAPER_N7_K3 = (0, 1, 2, 4, 3, 6, 5)

#: §2: pair of base permutations for ten disks, stripe width three.
PAPER_N10_K3_PAIR = (
    (0, 1, 2, 8, 3, 5, 7, 4, 6, 9),
    (0, 1, 2, 4, 3, 7, 8, 5, 6, 9),
)

#: Appendix: n = 16 via GF(16), modulus x^4+x^3+x^2+x+1, generator x+1.
#: Developed with XOR.
PAPER_N16_K5 = (0, 1, 15, 8, 4, 2, 3, 14, 7, 12, 6, 5, 13, 9, 11, 10)

#: Figure 17: two 9x6 grids (rows are stripes) for 55 disks, width six.
#: Each permutation is (0,) followed by the grid flattened row-major.
_FIG17_GRID_A = (
    (1, 18, 24, 31, 40, 48),
    (2, 3, 7, 11, 13, 44),
    (4, 19, 23, 29, 32, 47),
    (5, 21, 30, 33, 36, 53),
    (6, 17, 28, 49, 52, 54),
    (8, 12, 14, 22, 34, 35),
    (9, 10, 20, 25, 39, 46),
    (15, 16, 37, 42, 50, 51),
    (26, 27, 38, 41, 43, 45),
)
_FIG17_GRID_B = (
    (1, 2, 8, 25, 46, 54),
    (3, 6, 27, 32, 41, 49),
    (4, 11, 26, 39, 43, 45),
    (5, 18, 22, 24, 36, 50),
    (7, 10, 13, 28, 40, 52),
    (9, 17, 20, 30, 48, 53),
    (12, 31, 37, 38, 42, 47),
    (14, 16, 21, 29, 44, 51),
    (15, 19, 23, 33, 34, 35),
)


def _flatten(grid) -> Tuple[int, ...]:
    return (0,) + tuple(value for row in grid for value in row)


PAPER_N55_K6_PAIR = (_flatten(_FIG17_GRID_A), _flatten(_FIG17_GRID_B))

#: Calibrated base permutation for the paper's simulated 13-disk array
#: (n = 13, g = 3, k = 4).  The Bose blocks for omega = 2 are
#: {1,8,12,5}, {2,3,11,10}, {4,6,9,7}; within-block order is free (any
#: choice keeps goals #1-#3, #7), and the paper never publishes its n = 13
#: permutation.  Placing checks on 12, 11 and 6 — clustering the sparse
#: (spare + check) columns around disk 0 — reproduces Figure 3's working
#: set behaviour: PDDL above Parity Declustering up to ~120 KB, below it
#: beyond, and never reaching the 13-disk maximum for any read size in the
#: figure.  See EXPERIMENTS.md (Figure 3) for the calibration evidence.
PAPER_N13_K4_EXPERIMENT = (0, 1, 8, 5, 12, 2, 3, 10, 11, 4, 9, 7, 6)

#: Table 1 (paper §3): number of base permutations needed, keyed by
#: (stripe width k, number of stripes g).  None marks the paper's "?"
#: (unknown / not found); values with a prime mark in the paper (solutions
#: for non-prime n from Furino) are plain ints here.
PAPER_TABLE1: Dict[Tuple[int, int], Optional[int]] = {
    # k = 5 (n = 6, 11, ..., 51)
    (5, 1): 1, (5, 2): 1, (5, 3): 1, (5, 4): 1, (5, 5): 1,
    (5, 6): 1, (5, 7): 1, (5, 8): 1, (5, 9): 2, (5, 10): 1,
    # k = 6 (n = 7, 13, ..., 61)
    (6, 1): 1, (6, 2): 1, (6, 3): 1, (6, 4): 1, (6, 5): 1,
    (6, 6): 1, (6, 7): 1, (6, 8): 2, (6, 9): 2, (6, 10): 1,
    # k = 7 (n = 8, 15, ..., 71)
    (7, 1): 1, (7, 2): 2, (7, 3): 1, (7, 4): 1, (7, 5): 1,
    (7, 6): 1, (7, 7): 2, (7, 8): 4, (7, 9): 5, (7, 10): 1,
    # k = 8 (n = 9, 17, ..., 81)
    (8, 1): 1, (8, 2): 1, (8, 3): 2, (8, 4): 1, (8, 5): 1,
    (8, 6): 3, (8, 7): 5, (8, 8): None, (8, 9): 1, (8, 10): None,
    # k = 9 (n = 10, 19, ..., 91)
    (9, 1): 1, (9, 2): 1, (9, 3): 2, (9, 4): 1, (9, 5): 3,
    (9, 6): 6, (9, 7): None, (9, 8): 1, (9, 9): None, (9, 10): None,
    # k = 10 (n = 11, 21, ..., 101)
    (10, 1): 1, (10, 2): None, (10, 3): 1, (10, 4): 1, (10, 5): 2,
    (10, 6): 1, (10, 7): 1, (10, 8): None, (10, 9): None, (10, 10): 1,
}


def published_group(
    n: int, k: int
) -> Optional[Union[BasePermutation, PermutationGroup]]:
    """Look up a paper-published permutation (group) for ``n`` disks.

    Returns ``None`` when the paper gives nothing for the configuration.

    >>> published_group(10, 3).p
    2
    """
    if n == 7 and k == 3:
        return BasePermutation(PAPER_N7_K3, k=3)
    if n == 13 and k == 4:
        return BasePermutation(PAPER_N13_K4_EXPERIMENT, k=4)
    if n == 10 and k == 3:
        return PermutationGroup(
            [BasePermutation(v, k=3) for v in PAPER_N10_K3_PAIR]
        )
    if n == 16 and k == 5:
        return BasePermutation(PAPER_N16_K5, k=5)
    if n == 55 and k == 6:
        return PermutationGroup(
            [BasePermutation(v, k=6) for v in PAPER_N55_K6_PAIR]
        )
    return None
