"""PDDL — the paper's primary contribution.

Permutation Development Data Layout: a *base permutation* of the ``n = g*k +
s`` disks assigns each virtual RAID-4 column (spare, data, check) a starting
disk; row ``t`` of the physical array permutes the roles by *developing* the
permutation — adding ``t`` inside a finite field (modulo ``n``, or XOR for
``n`` a power of two).  Satisfactory base permutations (those meeting the
distributed-reconstruction goal #3) come from the Bose construction for prime
``n``, from its GF(2^m) analogue, or from hill-climbing search, possibly as
groups of several permutations.

Public surface:

- :class:`~repro.core.permutation.BasePermutation` and
  :class:`~repro.core.development.Development` operators,
- :func:`~repro.core.bose.bose_base_permutation` /
  :func:`~repro.core.bose.bose_gf2_base_permutation`,
- :class:`~repro.core.layout.PDDLLayout` (implements
  :class:`repro.layouts.Layout`, with distributed sparing),
- :func:`~repro.core.search.search_permutation_group` (Table 1),
- :mod:`~repro.core.tables` — the paper's published permutations,
- :func:`~repro.core.wrapping.wrapped_layout` — the PDDL-over-DATUM
  *wrapping* extension sketched in the paper's conclusions.
"""

from repro.core.bose import bose_base_permutation, bose_gf2_base_permutation
from repro.core.development import (
    Development,
    DigitDevelopment,
    ModularDevelopment,
    XorDevelopment,
    development_for,
)
from repro.core.layout import PDDLLayout, pddl_for
from repro.core.permutation import BasePermutation, PermutationGroup
from repro.core.search import search_base_permutation, search_permutation_group
from repro.core.wrapping import WrappedLayout, wrapped_layout

__all__ = [
    "BasePermutation",
    "Development",
    "DigitDevelopment",
    "ModularDevelopment",
    "PDDLLayout",
    "PermutationGroup",
    "WrappedLayout",
    "XorDevelopment",
    "bose_base_permutation",
    "bose_gf2_base_permutation",
    "development_for",
    "pddl_for",
    "search_base_permutation",
    "search_permutation_group",
    "wrapped_layout",
]
