"""Analytic models of declustered-array behaviour.

Closed-form expectations that the paper's framework implies, used to
sanity-check the simulator and to reason about configurations without
running it:

- the *declustering ratio* ``alpha = (k - 1) / (n - 1)`` (Holland &
  Gibson's knob: fraction of each surviving disk's bandwidth consumed by
  reconstruction),
- expected degraded-mode load inflation for reads and writes,
- expected physical operations per logical access by size and mode,
- super-stripe geometry for goal #8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.layouts.base import Layout


def declustering_ratio(layout: Layout) -> float:
    """alpha = (k - 1) / (n - 1): 1.0 for RAID-5, lower when declustered.

    >>> from repro.layouts import make_layout
    >>> declustering_ratio(make_layout("raid5", 13, 13))
    1.0
    >>> round(declustering_ratio(make_layout("pddl", 13, 4)), 3)
    0.25
    """
    return (layout.k - 1) / (layout.n - 1)


def degraded_read_inflation(layout: Layout) -> float:
    """Expected physical reads per requested data unit with one disk dead.

    A unit lives on the failed disk with probability 1/n', where n' counts
    disks holding client data for the layout; lost units cost ``k - 1``
    reads.  For layouts storing data uniformly over all n disks the
    expectation is ``1 + (k - 2) / n``.
    """
    n = layout.n
    k = layout.k
    return (1 / n) * (k - 1) + (1 - 1 / n)


def surviving_disk_load_factor(layout: Layout) -> float:
    """Degraded-mode load multiplier on each surviving disk (reads).

    RAID-5 doubles (alpha = 1); a k=4/n=13 declustered layout adds only
    25%.  This is the paper's core motivation: "Within RAID-5, the
    workload on the surviving disks doubles during degraded read
    accesses."

    >>> from repro.layouts import make_layout
    >>> surviving_disk_load_factor(make_layout("raid5", 13, 13))
    2.0
    >>> surviving_disk_load_factor(make_layout("pddl", 13, 4))
    1.25
    """
    return 1.0 + declustering_ratio(layout)


@dataclass(frozen=True)
class WriteCost:
    """Expected physical operations of one stripe-aligned write."""

    pre_reads: float
    writes: float

    @property
    def total(self) -> float:
        return self.pre_reads + self.writes


def write_cost(layout: Layout, units_written: int) -> WriteCost:
    """Fault-free physical-op cost of writing ``m`` units of one stripe.

    Mirrors the planner's small/large/full decision; useful for reasoning
    about the small-write crossovers of §4.2 without simulation.

    >>> from repro.layouts import make_layout
    >>> write_cost(make_layout("raid5", 13, 13), 12).total  # full stripe
    13.0
    >>> write_cost(make_layout("raid5", 13, 13), 6).total   # small write
    14.0
    """
    dps = layout.data_per_stripe
    c = layout.checks_per_stripe
    m = units_written
    if not 1 <= m <= dps:
        raise ConfigurationError(
            f"a stripe holds 1..{dps} data units, got {m}"
        )
    if m == dps:
        return WriteCost(pre_reads=0.0, writes=float(m + c))
    if m <= dps // 2:
        return WriteCost(pre_reads=float(m + c), writes=float(m + c))
    return WriteCost(pre_reads=float(dps - m), writes=float(m + c))


def expected_read_ops(layout: Layout, span_units: int) -> float:
    """Fault-free reads are always one op per unit."""
    if span_units < 1:
        raise ConfigurationError("span must be >= 1")
    return float(span_units)


def expected_degraded_read_ops(layout: Layout, span_units: int) -> float:
    """Expected ops for a degraded read of ``span_units`` units.

    Each unit is lost with probability ~1/n and then costs k - 1 reads.
    """
    if span_units < 1:
        raise ConfigurationError("span must be >= 1")
    return span_units * degraded_read_inflation(layout)


def super_stripe_units(layout: Layout) -> int:
    """Goal #8's access quantum: ``n - g - 1`` data units (one full row of
    client data in a PDDL pattern)."""
    if not layout.has_sparing:
        raise ConfigurationError(
            f"{layout.name} has no sparing; goal #8 does not apply"
        )
    g = (layout.n - 1) // layout.k
    return layout.n - g - 1


def rebuild_reads_per_pattern(layout: Layout) -> int:
    """Total reconstruction reads one failed disk costs per pattern."""
    spare_cells = sum(
        1
        for addr in layout.spare_addresses_in_period()
        if addr.disk == 0
    )
    lost_units = layout.period - spare_cells
    return lost_units * (layout.k - 1)
