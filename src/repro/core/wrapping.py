"""Wrapping: combining PDDL with DATUM (paper §5, "future paper").

"To create a data layout for 30 disks with stripe width seven, we first
create a DATUM layout with stripe width 29.  Then for each of the 30 rows of
the DATUM layout, we use the PDDL data layout with four stripes each of width
seven plus a spare."

The outer DATUM complete block design picks, for each outer row, which
``n_inner = g*k + 1`` of the ``n`` physical disks participate; the inner PDDL
pattern then stripes those disks.  The result keeps goals #1-#4, #6, #7 on
arrays whose size is neither prime nor searchable.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import List, Optional, Tuple

from repro.core.layout import PDDLLayout, PermutationLike
from repro.errors import ConfigurationError
from repro.layouts.address import PhysicalAddress, StripeUnits
from repro.layouts.base import Layout


class WrappedLayout(Layout):
    """PDDL wrapped inside an outer complete-block-design disk selection.

    Each *outer block* is a ``n_inner``-subset of the ``n`` physical disks
    (all ``C(n, n_inner)`` subsets in colexicographic order, DATUM-style).
    Outer block ``B`` contributes one full inner PDDL pattern, striped over
    the disks of ``B`` (sorted ascending); disks outside ``B`` hold no units
    of that slice, so the pattern height per outer block is the inner
    period and the overall period is ``C(n, n_inner) * inner_period`` rows
    on participating disks.

    To keep every physical cell used exactly once we place each outer
    block's slice in its own row band and fill non-member disks of the band
    with spare cells — the natural generalization of distributed sparing to
    wrapping (member disks also contribute their inner spare column).
    """

    name = "PDDL-wrapped"

    def __init__(self, n: int, inner: PDDLLayout, max_outer_blocks: Optional[int] = None):
        if inner.n >= n:
            raise ConfigurationError(
                f"inner layout of {inner.n} disks does not fit in {n}"
            )
        super().__init__(n=n, k=inner.k)
        self.inner = inner
        blocks = sorted(
            combinations(range(n), inner.n), key=lambda blk: blk[::-1]
        )
        if max_outer_blocks is not None:
            if max_outer_blocks < 1:
                raise ConfigurationError("max_outer_blocks must be >= 1")
            blocks = self._balanced_subset(blocks, max_outer_blocks)
        self.outer_blocks: Tuple[Tuple[int, ...], ...] = tuple(blocks)

    @staticmethod
    def _balanced_subset(blocks, count):
        """Take a rotation-balanced subset when the full CBD is too tall."""
        step = max(1, len(blocks) // count)
        return [blocks[(i * step) % len(blocks)] for i in range(count)]

    @property
    def period(self) -> int:
        return len(self.outer_blocks) * self.inner.period

    @property
    def stripes_per_period(self) -> int:
        return len(self.outer_blocks) * self.inner.stripes_per_period

    def _band(self, stripe_index: int) -> Tuple[int, int]:
        return divmod(stripe_index, self.inner.stripes_per_period)

    def stripe_units_in_period(self, stripe_index: int) -> StripeUnits:
        band, inner_index = self._band(stripe_index)
        members = self.outer_blocks[band]
        base = self.inner.stripe_units_in_period(inner_index)
        shift = band * self.inner.period
        return StripeUnits(
            data=[
                PhysicalAddress(members[d], o + shift) for d, o in base.data
            ],
            check=[
                PhysicalAddress(members[d], o + shift) for d, o in base.check
            ],
        )

    def spare_addresses_in_period(self) -> List[PhysicalAddress]:
        out: List[PhysicalAddress] = []
        for band, members in enumerate(self.outer_blocks):
            shift = band * self.inner.period
            member_set = set(members)
            for d, o in self.inner.spare_addresses_in_period():
                out.append(PhysicalAddress(members[d], o + shift))
            for row in range(self.inner.period):
                for disk in range(self.n):
                    if disk not in member_set:
                        out.append(PhysicalAddress(disk, row + shift))
        return out

    def relocation_target(self, addr: PhysicalAddress) -> PhysicalAddress:
        row = addr.offset % self.period
        band, inner_row = divmod(row, self.inner.period)
        members = self.outer_blocks[band]
        if addr.disk not in members:
            from repro.errors import MappingError

            raise MappingError(f"{addr} is filler spare space")
        inner_disk = members.index(addr.disk)
        cycle_base = addr.offset - row
        target = self.inner.relocation_target(
            PhysicalAddress(inner_disk, inner_row)
        )
        return PhysicalAddress(
            members[target.disk],
            cycle_base + band * self.inner.period + target.offset,
        )

    def mapping_table_entries(self) -> int:
        return self.inner.mapping_table_entries()


def wrapped_layout(
    n: int,
    g: int,
    k: int,
    permutations: Optional[PermutationLike] = None,
    max_outer_blocks: Optional[int] = None,
) -> WrappedLayout:
    """Build the paper's wrapping example shape: inner PDDL of ``g*k + 1``
    disks inside ``n`` physical disks.

    ``max_outer_blocks`` bounds the outer complete design (the full
    ``C(n, g*k+1)`` blocks can be astronomically tall); the default keeps it
    complete only when it is at most 4096 blocks.
    """
    from repro.core.layout import pddl_for

    inner_n = g * k + 1
    if permutations is None:
        inner = pddl_for(g, k)
    else:
        inner = PDDLLayout(permutations)
    if max_outer_blocks is None and comb(n, inner_n) > 4096:
        max_outer_blocks = n  # one band per rotation, DATUM-wrapping flavour
    return WrappedLayout(n, inner, max_outer_blocks=max_outer_blocks)
