"""Hill-climbing search for satisfactory base permutations (paper §3).

"Using simple hill-climbing from random starting points, our program locates
permutations which are satisfactory or almost satisfactory.  If it cannot
find a satisfactory permutation, it combines almost satisfactory permutations
into small groups."  We implement that directly: the state is a group of
``p`` permutations, the objective is the non-uniformity of the *combined*
reconstruction-read tally, and moves swap two entries inside one
permutation.  Local optima are escaped with small random kicks before a
full restart, which is what makes the larger composite-``n`` cells of
Table 1 tractable.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

from repro.core.development import Development, ModularDevelopment
from repro.core.permutation import BasePermutation, PermutationGroup
from repro.errors import SearchError


def _tally_badness(
    perms: Sequence[Sequence[int]],
    k: int,
    spares: int,
    dev: Development,
) -> int:
    """Sum of squared deviations of the combined tally from ``p*(k-1)``.

    Operates on raw value lists — no object construction — because the
    search evaluates this tens of thousands of times.
    """
    n = dev.n
    g = (n - spares) // k
    tally = [0] * n
    for values in perms:
        inverse = [0] * n
        for column, disk in enumerate(values):
            inverse[disk] = column
        for t in range(n):
            column = inverse[dev.unshift(0, t)]
            group = -1 if column < spares else (column - spares) // k
            if group < 0:
                continue
            start = spares + group * k
            for other in range(start, start + k):
                if other == column:
                    continue
                tally[dev.shift(values[other], t)] += 1
    ideal = len(perms) * (k - 1)
    # Disk 0 is the reference failure; survivors are disks 1..n-1.
    return sum((count - ideal) ** 2 for count in tally[1:])


def _climb(
    rng: random.Random,
    perms: List[List[int]],
    k: int,
    spares: int,
    dev: Development,
    max_steps: int,
    kicks: int,
) -> int:
    """First-improvement hill climbing with random kicks; mutates
    ``perms`` in place and returns the final badness."""
    n = dev.n
    p = len(perms)
    badness = _tally_badness(perms, k, spares, dev)
    steps = 0
    kicks_left = kicks
    while badness > 0 and steps < max_steps:
        improved = False
        which = rng.randrange(p)
        values = perms[which]
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng.shuffle(pairs)
        for i, j in pairs:
            steps += 1
            values[i], values[j] = values[j], values[i]
            candidate = _tally_badness(perms, k, spares, dev)
            if candidate < badness:
                badness = candidate
                improved = True
                break
            values[i], values[j] = values[j], values[i]
            if steps >= max_steps:
                break
        if not improved:
            if kicks_left <= 0:
                break
            kicks_left -= 1
            # Kick: a few random swaps to hop out of the local optimum.
            for _ in range(3):
                a, b = rng.randrange(n), rng.randrange(n)
                values[a], values[b] = values[b], values[a]
            badness = _tally_badness(perms, k, spares, dev)
    return badness


def search_permutation_group(
    g: int,
    k: int,
    p: int = 0,
    spares: int = 1,
    dev: Optional[Development] = None,
    seed: int = 0,
    restarts: int = 40,
    max_steps: int = 3000,
    p_max: int = 4,
    kicks: int = 8,
) -> Union[BasePermutation, PermutationGroup]:
    """Find a satisfactory base permutation or group for ``(g, k)``.

    With ``p == 0`` (the default) group sizes 1, 2, ..., ``p_max`` are
    tried in turn, mirroring Table 1's preference for solitary
    permutations; a fixed ``p`` searches only that size.  Returns a
    :class:`~repro.core.permutation.BasePermutation` when a solitary
    permutation suffices, otherwise a
    :class:`~repro.core.permutation.PermutationGroup`.

    Raises :class:`~repro.errors.SearchError` if nothing satisfactory is
    found within the budget — the paper's Table 1 records such cells as
    "?".
    """
    n = g * k + spares
    dev = dev or ModularDevelopment(n)
    sizes = [p] if p > 0 else list(range(1, p_max + 1))
    rng = random.Random(seed)
    for size in sizes:
        for _ in range(restarts):
            perms = []
            for _ in range(size):
                values = list(range(n))
                rng.shuffle(values)
                perms.append(values)
            badness = _climb(rng, perms, k, spares, dev, max_steps, kicks)
            if badness == 0:
                group = PermutationGroup(
                    [BasePermutation(v, k, spares) for v in perms]
                )
                assert group.is_satisfactory(dev)
                if group.p == 1:
                    return group.permutations[0]
                return group
    raise SearchError(
        f"no satisfactory permutation group (p <= {max(sizes)}) found for"
        f" g={g}, k={k}, spares={spares} within budget"
    )


def search_base_permutation(
    g: int,
    k: int,
    spares: int = 1,
    dev: Optional[Development] = None,
    seed: int = 0,
    restarts: int = 40,
    max_steps: int = 3000,
) -> BasePermutation:
    """Search for a *solitary* satisfactory base permutation.

    Raises :class:`~repro.errors.SearchError` when none is found — some
    configurations genuinely require groups (e.g. n = 10, k = 3).
    """
    result = search_permutation_group(
        g,
        k,
        p=1,
        spares=spares,
        dev=dev,
        seed=seed,
        restarts=restarts,
        max_steps=max_steps,
    )
    assert isinstance(result, BasePermutation)
    return result
