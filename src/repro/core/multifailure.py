"""Multiple-failure tolerance (paper §1 and §5).

"PDDL allows 'arbitrary' fixed combinations of check and data blocks" and
"can be adjusted to schemes using more than one check block per stripe":
with ``c`` check units per stripe (an MDS code such as Reed-Solomon over
the stripe, P+Q for c = 2) any ``c`` concurrent disk failures are
tolerable, and with ``s >= c`` distributed spare columns each failure
rebuilds into its own spare column.

This module plans multi-failure reconstruction over a
:class:`~repro.core.layout.PDDLLayout` and provides the analytic tallies
that generalize goal #3 to concurrent failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.layout import PDDLLayout
from repro.errors import ConfigurationError, MappingError
from repro.layouts.address import PhysicalAddress, Role


@dataclass(frozen=True)
class MultiRebuildStep:
    """Work to rebuild the lost units of one stripe after >= 1 failures.

    ``lost`` maps each lost cell to the spare cell that receives its
    rebuilt contents; ``reads`` are the surviving units decoded to recover
    them (an MDS code needs any ``k - c`` survivors; we read all of them,
    which is what an erasure decoder consumes).
    """

    stripe: int
    lost: Dict[PhysicalAddress, PhysicalAddress]
    reads: List[PhysicalAddress]


def multi_rebuild_plan(
    layout: PDDLLayout,
    failed_disks: Sequence[int],
    rows: int = 0,
) -> Iterator[MultiRebuildStep]:
    """Yield per-stripe rebuild steps for a set of concurrent failures.

    Requires ``len(failed_disks) <= checks`` (code strength) and
    ``<= spares`` (room to rebuild into).  Spare cells lost on failed
    disks are skipped — there is nothing to rebuild, and later failures
    simply use the next available spare column.
    """
    failures = list(dict.fromkeys(failed_disks))
    if len(failures) != len(failed_disks):
        raise ConfigurationError(f"duplicate failed disks in {failed_disks}")
    for disk in failures:
        if not 0 <= disk < layout.n:
            raise ConfigurationError(f"no disk {disk}")
    if len(failures) > layout.checks:
        raise ConfigurationError(
            f"{len(failures)} failures exceed the {layout.checks}-failure"
            f" tolerance of a {layout.checks}-check stripe"
        )
    if len(failures) > layout.spares:
        raise ConfigurationError(
            f"{len(failures)} failures exceed the {layout.spares}"
            " distributed spare column(s)"
        )
    rows = rows or layout.period
    failed_set = set(failures)
    spare_of = {disk: i for i, disk in enumerate(failures)}

    seen_stripes = set()
    for offset in range(rows):
        for disk in failures:
            info = layout.locate(disk, offset)
            if info.role is Role.SPARE or info.stripe in seen_stripes:
                continue
            seen_stripes.add(info.stripe)
            units = layout.stripe_units(info.stripe)
            lost: Dict[PhysicalAddress, PhysicalAddress] = {}
            reads: List[PhysicalAddress] = []
            for addr in units.all_units():
                if addr.disk in failed_set:
                    lost[addr] = layout.relocation_target(
                        addr, spare_column=spare_of[addr.disk]
                    )
                else:
                    reads.append(addr)
            if len(reads) < layout.k - layout.checks:
                raise MappingError(
                    f"stripe {info.stripe} lost too many units to decode"
                )
            yield MultiRebuildStep(
                stripe=info.stripe, lost=lost, reads=reads
            )


def multi_rebuild_read_tally(
    layout: PDDLLayout, failed_disks: Sequence[int]
) -> Dict[int, int]:
    """Per-survivor read counts over one period of multi-failure rebuild."""
    tally = {
        d: 0 for d in range(layout.n) if d not in set(failed_disks)
    }
    for step in multi_rebuild_plan(layout, failed_disks):
        for addr in step.reads:
            tally[addr.disk] += 1
    return tally


def worst_case_tally_deviation(
    layout: PDDLLayout, failures: int = 2
) -> Tuple[int, Tuple[int, ...]]:
    """Max read-tally imbalance over all failure combinations of a size.

    Returns ``(deviation, worst_combination)``; small deviations mean the
    development structure keeps multi-failure rebuild load spread too.
    """
    from itertools import combinations

    if failures < 1:
        raise ConfigurationError("need at least one failure")
    worst = -1
    worst_combo: Tuple[int, ...] = ()
    for combo in combinations(range(layout.n), failures):
        tally = multi_rebuild_read_tally(layout, combo)
        deviation = max(tally.values()) - min(tally.values())
        if deviation > worst:
            worst = deviation
            worst_combo = combo
    return worst, worst_combo


def degraded_read_cost(
    layout: PDDLLayout, failed_disks: Sequence[int]
) -> float:
    """Mean physical reads per client data unit in multi-degraded mode.

    1.0 when nothing failed; grows with the fraction of units whose
    stripes must be decoded.
    """
    failed_set = set(failed_disks)
    total = 0
    count = layout.data_units_per_period
    for unit in range(count):
        addr = layout.data_unit_address(unit)
        if addr.disk in failed_set:
            units = layout.stripe_units(layout.stripe_of_data_unit(unit))
            total += sum(
                1 for a in units.all_units() if a.disk not in failed_set
            )
        else:
            total += 1
    return total / count
