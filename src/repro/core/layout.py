"""The PDDL layout: permutation development over a RAID-4 template.

The virtual array is RAID Level 4 with ``s`` spare columns (usually one),
then ``g`` groups of ``k`` columns (``k - 1`` data + 1 check).  Physical row
``r`` of the pattern places virtual column ``d`` on disk
``develop(perm[d], r mod n)``; with ``p`` base permutations the pattern is
``p * n`` rows, rows ``q*n .. (q+1)*n - 1`` developing permutation ``q``.

The mapping function is the paper's two-liner::

    int virtual2physical(int disk, int offset)
        { return (permutation[disk] + offset) % n; }

generalized to XOR/GF(p^m) development and to permutation groups.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.development import Development, development_for
from repro.core.permutation import BasePermutation, PermutationGroup
from repro.errors import ConfigurationError, MappingError
from repro.layouts.address import PhysicalAddress, Role, StripeUnits
from repro.layouts.base import Layout

PermutationLike = Union[BasePermutation, PermutationGroup]


class PDDLLayout(Layout):
    """Permutation Development Data Layout.

    >>> from repro.core.bose import bose_base_permutation
    >>> layout = PDDLLayout(bose_base_permutation(2, 3))
    >>> layout.stripe_units_in_period(0)
    StripeUnits(data=[PhysicalAddress(disk=1, offset=0), PhysicalAddress(disk=2, offset=0)], check=[PhysicalAddress(disk=4, offset=0)])
    >>> layout.relocation_target(PhysicalAddress(4, 0))
    PhysicalAddress(disk=0, offset=0)
    """

    name = "PDDL"

    def __init__(
        self,
        permutations: PermutationLike,
        development: Optional[Development] = None,
    ):
        if isinstance(permutations, BasePermutation):
            permutations = PermutationGroup([permutations])
        self.group = permutations
        self.dev = development or development_for(self.group.n)
        if self.dev.n != self.group.n:
            raise ConfigurationError(
                f"development over {self.dev.n} does not match n = "
                f"{self.group.n}"
            )
        super().__init__(n=self.group.n, k=self.group.k)
        self.g = self.group.g
        self.spares = self.group.spares
        self.checks = self.group.checks

    @property
    def data_per_stripe(self) -> int:
        """k - checks contiguous client data units per stripe."""
        return self.k - self.checks

    # ------------------------------------------------------------------
    # Layout interface.
    # ------------------------------------------------------------------

    @property
    def period(self) -> int:
        return self.group.p * self.n

    @property
    def stripes_per_period(self) -> int:
        return self.period * self.g

    def _row_context(self, row: int):
        """(permutation, develop shift t) for a pattern row."""
        q, t = divmod(row, self.n)
        return self.group.permutations[q], t

    def stripe_units_in_period(self, stripe_index: int) -> StripeUnits:
        if not 0 <= stripe_index < self.stripes_per_period:
            raise MappingError(f"stripe {stripe_index} outside pattern")
        row, group = divmod(stripe_index, self.g)
        perm, t = self._row_context(row)
        columns = list(perm.group_columns(group))
        split = self.k - self.checks
        data = [
            PhysicalAddress(perm.disk_of_column(c, t, self.dev), row)
            for c in columns[:split]
        ]
        check = [
            PhysicalAddress(perm.disk_of_column(c, t, self.dev), row)
            for c in columns[split:]
        ]
        return StripeUnits(data=data, check=check)

    def spare_addresses_in_period(self) -> List[PhysicalAddress]:
        out = []
        for row in range(self.period):
            perm, t = self._row_context(row)
            for column in range(self.spares):
                out.append(
                    PhysicalAddress(
                        perm.disk_of_column(column, t, self.dev), row
                    )
                )
        return out

    def relocation_target(
        self, addr: PhysicalAddress, spare_column: int = 0
    ) -> PhysicalAddress:
        """Spare cell (same row) that receives ``addr``'s rebuilt contents.

        With multiple distributed spares (§5: PDDL "can even be altered to
        have more than one spare disk"), ``spare_column`` selects which
        spare column absorbs this failure — the i-th concurrent failure
        rebuilds into spare column i.
        """
        if self.spares == 0:
            raise MappingError("this PDDL instance was built without spares")
        if not 0 <= spare_column < self.spares:
            raise MappingError(
                f"spare column {spare_column} outside 0..{self.spares - 1}"
            )
        row = addr.offset % self.period
        perm, t = self._row_context(row)
        if self.locate(addr.disk, addr.offset).role is Role.SPARE:
            raise MappingError(f"{addr} is spare space; nothing to relocate")
        spare_disk = perm.disk_of_column(spare_column, t, self.dev)
        return PhysicalAddress(spare_disk, addr.offset)

    def mapping_table_entries(self) -> int:
        """Table 3: PDDL stores ``p`` permutations of ``n`` entries."""
        return self.group.p * self.n

    # ------------------------------------------------------------------
    # The paper's raw mapping functions.
    # ------------------------------------------------------------------

    def virtual_to_physical(self, disk: int, offset: int) -> int:
        """Paper §2's ``virtual2physical``: physical disk of virtual
        address ``(disk, offset)``.

        ``disk`` is the virtual RAID-4 column; ``offset`` the stripe-unit
        row.  With a permutation group, the permutation alternates every
        ``n`` rows.
        """
        if not 0 <= disk < self.n:
            raise MappingError(f"virtual disk {disk} outside 0..{self.n - 1}")
        if offset < 0:
            raise MappingError(f"negative offset {offset}")
        perm, t = self._row_context(offset % self.period)
        return perm.disk_of_column(disk, t, self.dev)

    def virtual_disk_of(self, stripe_unit: int) -> PhysicalAddress:
        """Paper appendix ``virtualDisk``: linear client stripe-unit index
        to virtual RAID-4 address ``(column, offset)``.

        Skips spare and check columns — only client data columns are
        addressed.
        """
        if stripe_unit < 0:
            raise MappingError(f"negative stripe unit {stripe_unit}")
        dps = self.data_per_stripe
        data_per_row = self.g * dps
        offset, within = divmod(stripe_unit, data_per_row)
        column = self.spares + within + (within // dps) * self.checks
        return PhysicalAddress(column, offset)

    def __repr__(self) -> str:
        return (
            f"PDDLLayout(n={self.n}, k={self.k}, g={self.g},"
            f" p={self.group.p}, dev={type(self.dev).__name__})"
        )


def pddl_for(
    g: int,
    k: int,
    development: Optional[Development] = None,
    search_seed: int = 0,
) -> PDDLLayout:
    """Build a satisfactory PDDL layout for ``g`` stripes of width ``k``.

    Resolution order: paper-published / calibrated permutations
    (:mod:`repro.core.tables`), Bose construction (prime ``n``), GF(2^m)
    construction (``n`` a power of two), then hill-climbing search for a
    solitary permutation or a small group.
    """
    from repro.core import tables
    from repro.core.bose import satisfactory_permutation
    from repro.core.search import search_permutation_group

    n = g * k + 1
    published = tables.published_group(n, k)
    if published is not None:
        perm: PermutationLike = published
    else:
        try:
            perm = satisfactory_permutation(g, k)
        except ConfigurationError:
            perm = search_permutation_group(g, k, seed=search_seed)
    if isinstance(perm, BasePermutation) and n & (n - 1) == 0:
        return PDDLLayout(perm, development or None)
    return PDDLLayout(perm, development)
