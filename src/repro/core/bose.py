"""The Bose construction of satisfactory base permutations (paper §3).

For a prime number of disks ``n = g*k + 1``:

1. find a primitive element ``w`` of GF(n),
2. deal the nonzero elements round-robin into blocks
   ``B_i = { w**(i-1), w**(g+i-1), ..., w**(g(k-1)+i-1) }``,
3. the base permutation is ``(0, B_1, B_2, ..., B_g)``.

The resulting blocks form a difference family, hence a near-resolvable
design, hence the developed layout distributes reconstruction evenly.  The
GF(2^m) analogue replaces powers mod ``n`` with powers of a primitive field
element and modular development with XOR.
"""

from __future__ import annotations

from typing import Optional

from repro.core.development import XorDevelopment
from repro.core.permutation import BasePermutation
from repro.errors import ConfigurationError
from repro.gf.binary import BinaryField
from repro.gf.prime import is_prime
from repro.gf.primitives import primitive_root


def bose_base_permutation(
    g: int,
    k: int,
    omega: Optional[int] = None,
    check_values: Optional[list] = None,
) -> BasePermutation:
    """Bose base permutation for ``n = g*k + 1`` prime.

    ``omega`` overrides the primitive root (the paper uses 3 for n = 7).

    ``check_values`` optionally names, per block, which element serves as
    the check unit (it is rotated to the block's last position).  Any
    choice preserves goals #1-#3 and #7 — the stripe *sets* are unchanged
    and development still hits every disk once per column — but the choice
    shapes large-access working sets, since it decides which disks of a row
    hold no client data.  The default keeps the paper's natural block
    order (the worked n = 7 example (0 1 2 4 3 6 5)).

    >>> bose_base_permutation(2, 3).values
    (0, 1, 2, 4, 3, 6, 5)
    """
    if g < 1 or k < 2:
        raise ConfigurationError(f"need g >= 1 and k >= 2, got g={g}, k={k}")
    n = g * k + 1
    if not is_prime(n):
        raise ConfigurationError(
            f"Bose construction needs n = g*k + 1 prime; {n} is not"
        )
    if omega is None:
        omega = primitive_root(n)
    else:
        from repro.gf.primitives import is_primitive_root

        if not is_primitive_root(omega, n):
            raise ConfigurationError(f"{omega} is not primitive mod {n}")
    blocks = [
        [pow(omega, j * g + i, n) for j in range(k)] for i in range(g)
    ]
    if check_values is not None:
        if len(check_values) != g:
            raise ConfigurationError(
                f"need one check value per block, got {len(check_values)}"
            )
        reordered = []
        for block, check in zip(blocks, check_values):
            if check not in block:
                raise ConfigurationError(
                    f"{check} is not in Bose block {sorted(block)}"
                )
            reordered.append([x for x in block if x != check] + [check])
        blocks = reordered
    values = [0]
    for block in blocks:
        values.extend(block)
    perm = BasePermutation(values, k, spares=1)
    assert perm.is_satisfactory(), "Bose construction must be satisfactory"
    return perm


def bose_gf2_base_permutation(
    g: int, k: int, field: Optional[BinaryField] = None
) -> BasePermutation:
    """Bose base permutation for ``n = 2**m = g*k + 1`` via GF(2^m).

    Developed with XOR.  The paper's appendix example is n = 16, g = 3,
    k = 5 with modulus x^4+x^3+x^2+x+1 and generator x+1:

    >>> from repro.gf.binary import PAPER_GF16_MODULUS
    >>> f = BinaryField(4, modulus=PAPER_GF16_MODULUS)
    >>> bose_gf2_base_permutation(3, 5, field=f).values
    (0, 1, 15, 8, 4, 2, 3, 14, 7, 12, 6, 5, 13, 9, 11, 10)
    """
    if g < 1 or k < 2:
        raise ConfigurationError(f"need g >= 1 and k >= 2, got g={g}, k={k}")
    n = g * k + 1
    if n & (n - 1):
        raise ConfigurationError(f"n = {n} is not a power of two")
    m = n.bit_length() - 1
    if field is None:
        field = BinaryField(m)
    elif field.order != n:
        raise ConfigurationError(
            f"field order {field.order} does not match n = {n}"
        )
    powers = field.generator_powers()
    values = [0]
    for i in range(g):
        for j in range(k):
            values.append(powers[j * g + i])
    return BasePermutation(values, k, spares=1)


def bose_gf_base_permutation(
    g: int, k: int, p: int, m: int
) -> BasePermutation:
    """Bose base permutation for ``n = p**m = g*k + 1`` via GF(p^m).

    The general prime-power case the paper's §3 sketches: "the Bose
    construction also works when n is a power of a prime" with "the
    addition operation ... within the underlying finite field GF(n)".
    Elements are base-``p`` digit-encoded integers; development is
    digit-wise addition mod ``p``
    (:class:`~repro.core.development.DigitDevelopment`).

    >>> perm = bose_gf_base_permutation(2, 4, p=3, m=2)  # n = 9
    >>> from repro.core.development import DigitDevelopment
    >>> perm.is_satisfactory(DigitDevelopment(3, 2))
    True
    """
    if g < 1 or k < 2:
        raise ConfigurationError(f"need g >= 1 and k >= 2, got g={g}, k={k}")
    n = g * k + 1
    if p**m != n:
        raise ConfigurationError(f"{p}**{m} != n = {n}")
    if not is_prime(p):
        raise ConfigurationError(f"{p} is not prime")
    from repro.gf.primitives import (
        element_powers,
        find_irreducible,
        find_primitive_element,
    )

    modulus = find_irreducible(p, m)
    generator = find_primitive_element(modulus)
    powers = element_powers(generator, modulus)
    values = [0]
    for i in range(g):
        for j in range(k):
            values.append(powers[j * g + i])
    perm = BasePermutation(values, k, spares=1)
    from repro.core.development import DigitDevelopment

    assert perm.is_satisfactory(DigitDevelopment(p, m)), (
        "GF(p^m) Bose construction must be satisfactory"
    )
    return perm


def satisfactory_permutation(g: int, k: int) -> BasePermutation:
    """Best-effort constructive satisfactory permutation for ``n = g*k + 1``.

    Uses Bose for prime ``n``, the GF(2^m) variant for powers of two, and
    the general GF(p^m) variant for odd prime powers (satisfactory under
    digit-wise development); raises
    :class:`~repro.errors.ConfigurationError` otherwise — callers then fall
    back to :func:`repro.core.search.search_permutation_group`.
    """
    from repro.gf.prime import factorize

    n = g * k + 1
    if is_prime(n):
        return bose_base_permutation(g, k)
    if n & (n - 1) == 0:
        perm = bose_gf2_base_permutation(g, k)
        if perm.is_satisfactory(XorDevelopment(n)):
            return perm
        raise ConfigurationError(
            f"GF(2^m) Bose permutation for n={n} is not satisfactory"
        )
    factors = factorize(n)
    if len(factors) == 1:
        ((p, m),) = factors.items()
        return bose_gf_base_permutation(g, k, p, m)
    raise ConfigurationError(
        f"no constructive satisfactory permutation for n = {n}; use search"
    )
