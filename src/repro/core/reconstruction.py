"""Reconstruction planning over any layout.

Given a failed disk, produce — purely from the layout mapping — the plan of
work a rebuild performs: for every lost stripe unit, which surviving cells
must be read and (for layouts with distributed sparing) which spare cell
receives the rebuilt unit.  The simulator's background reconstructor and the
analytic tally tools (goal #3 checking, Figure-3-style degraded working
sets) both consume these plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.layouts.address import PhysicalAddress, Role
from repro.layouts.base import Layout


@dataclass(frozen=True)
class RebuildStep:
    """Work to rebuild one lost stripe unit.

    ``lost`` is the failed cell; ``reads`` the surviving cells of its stripe;
    ``write`` the spare cell that receives the result (``None`` without
    sparing).  Lost *spare* cells produce no step — there is nothing to
    rebuild.
    """

    lost: PhysicalAddress
    stripe: int
    reads: List[PhysicalAddress]
    write: Optional[PhysicalAddress]


def rebuild_plan(
    layout: Layout, failed_disk: int, rows: Optional[int] = None
) -> Iterator[RebuildStep]:
    """Yield the rebuild steps for ``failed_disk`` over ``rows`` offsets.

    ``rows`` defaults to one layout period — by periodicity, per-disk load
    ratios over any whole number of periods equal the one-period ratios.
    """
    if not 0 <= failed_disk < layout.n:
        raise ConfigurationError(
            f"failed disk {failed_disk} outside 0..{layout.n - 1}"
        )
    if rows is None:
        rows = layout.period
    for offset in range(rows):
        info = layout.locate(failed_disk, offset)
        if info.role is Role.SPARE:
            continue
        units = layout.stripe_units(info.stripe)
        reads = [
            addr for addr in units.all_units() if addr.disk != failed_disk
        ]
        write = None
        if layout.has_sparing:
            write = layout.relocation_target(
                PhysicalAddress(failed_disk, offset)
            )
        yield RebuildStep(
            lost=PhysicalAddress(failed_disk, offset),
            stripe=info.stripe,
            reads=reads,
            write=write,
        )


def count_lost_units(
    layout: Layout, failed_disk: int, rows: Optional[int] = None
) -> int:
    """How many rebuild steps :func:`rebuild_plan` will yield.

    Counts the failed disk's non-spare cells over ``rows`` offsets
    arithmetically (no plan materialization), so a reconstructor can
    report progress against a known total.
    """
    if not 0 <= failed_disk < layout.n:
        raise ConfigurationError(
            f"failed disk {failed_disk} outside 0..{layout.n - 1}"
        )
    if rows is None:
        rows = layout.period
    if rows < 0:
        raise ConfigurationError(f"negative row count {rows}")
    spare_offsets = [
        addr.offset
        for addr in layout.spare_addresses_in_period()
        if addr.disk == failed_disk
    ]
    full_periods, remainder = divmod(rows, layout.period)
    spares = full_periods * len(spare_offsets) + sum(
        1 for offset in spare_offsets if offset < remainder
    )
    return rows - spares


def rebuild_read_tally(
    layout: Layout, failed_disk: int = 0
) -> Dict[int, int]:
    """Per-survivor read counts for one period's rebuild (goal #3 metric).

    For a PDDL layout this equals
    :meth:`repro.core.permutation.PermutationGroup.combined_tally`; computing
    it through the generic plan lets tests cross-check the two and lets the
    same metric rank DATUM / PRIME / Parity Declustering.
    """
    tally = {d: 0 for d in range(layout.n) if d != failed_disk}
    for step in rebuild_plan(layout, failed_disk):
        for addr in step.reads:
            tally[addr.disk] += 1
    return tally


def rebuild_write_tally(
    layout: Layout, failed_disk: int = 0
) -> Dict[int, int]:
    """Per-survivor spare-write counts for one period's rebuild."""
    tally = {d: 0 for d in range(layout.n) if d != failed_disk}
    for step in rebuild_plan(layout, failed_disk):
        if step.write is not None:
            tally[step.write.disk] += 1
    return tally


def reconstruction_deviation(layout: Layout, failed_disk: int = 0) -> int:
    """max - min of the rebuild read tally; 0 means goal #3 holds exactly."""
    tally = rebuild_read_tally(layout, failed_disk)
    return max(tally.values()) - min(tally.values())
