"""Zoned disk geometry: LBA <-> cylinder/head/sector translation.

Modern-for-1998 drives record more sectors on outer tracks; the HP 2247 of
the paper's Table 2 has 8 zones over 1981 cylinders and 13 heads.  Logical
blocks are numbered cylinder-major: all sectors of cylinder 0 (head 0's
track, then head 1's, ...), then cylinder 1, and so on — the conventional
serpentine-free layout, which makes sequential transfers cross a head switch
every track and a cylinder switch every ``heads`` tracks.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Zone:
    """A contiguous cylinder range recorded at one areal density."""

    first_cylinder: int
    cylinders: int
    sectors_per_track: int

    def __post_init__(self):
        if self.cylinders < 1 or self.sectors_per_track < 1:
            raise ConfigurationError(f"degenerate zone {self}")


class Chs(NamedTuple):
    """A physical sector position."""

    cylinder: int
    head: int
    sector: int


class DiskGeometry:
    """Immutable zoned geometry with O(log zones) LBA translation.

    >>> g = DiskGeometry(heads=2, zones=[Zone(0, 2, 10), Zone(2, 2, 8)])
    >>> g.total_sectors
    72
    >>> g.lba_to_chs(25)
    Chs(cylinder=1, head=0, sector=5)
    >>> g.chs_to_lba(Chs(1, 0, 5))
    25
    """

    def __init__(self, heads: int, zones: Sequence[Zone]):
        if heads < 1:
            raise ConfigurationError(f"need >= 1 head, got {heads}")
        if not zones:
            raise ConfigurationError("need at least one zone")
        expected_start = 0
        for zone in zones:
            if zone.first_cylinder != expected_start:
                raise ConfigurationError(
                    f"zone starting at {zone.first_cylinder} leaves a gap"
                    f" (expected {expected_start})"
                )
            expected_start += zone.cylinders
        self.heads = heads
        self.zones: Tuple[Zone, ...] = tuple(zones)
        self.cylinders = expected_start
        # Cumulative sector count at the start of each zone.
        self._zone_first_lba: List[int] = []
        self._zone_first_cyl: List[int] = []
        lba = 0
        for zone in self.zones:
            self._zone_first_lba.append(lba)
            self._zone_first_cyl.append(zone.first_cylinder)
            lba += zone.cylinders * heads * zone.sectors_per_track
        self.total_sectors = lba
        # Per-cylinder density table: sectors_per_track() is called for
        # every track crossed by every transfer, so the O(log zones)
        # bisect is flattened into one list index (a few KB for ~2000
        # cylinders).
        self._spt_by_cylinder: List[int] = []
        for zone in self.zones:
            self._spt_by_cylinder.extend(
                [zone.sectors_per_track] * zone.cylinders
            )
        # LBA -> Chs memo.  The geometry is immutable and simulations
        # revisit a bounded working set of block addresses (every queue
        # push and every service re-translates), so a plain dict turns
        # the bisect + divmod translation into one lookup on the hot
        # path.  Safe to share across drives: entries are value-equal
        # for equal LBAs by construction.
        self._chs_cache: Dict[int, Chs] = {}
        # LBA -> cylinder alone: the head schedulers only need the
        # cylinder per queued request, and a dedicated int-valued memo
        # (shared across every scheduler on this geometry) skips the
        # Chs attribute hop per push.
        self._cylinder_cache: Dict[int, int] = {}

    @property
    def capacity_bytes(self) -> int:
        """Capacity assuming 512-byte sectors."""
        return self.total_sectors * 512

    def zone_of_cylinder(self, cylinder: int) -> Zone:
        if not 0 <= cylinder < self.cylinders:
            raise ConfigurationError(
                f"cylinder {cylinder} outside 0..{self.cylinders - 1}"
            )
        index = bisect.bisect_right(self._zone_first_cyl, cylinder) - 1
        return self.zones[index]

    def sectors_per_track(self, cylinder: int) -> int:
        if 0 <= cylinder < self.cylinders:
            return self._spt_by_cylinder[cylinder]
        # Out of range: delegate for the canonical error message.
        return self.zone_of_cylinder(cylinder).sectors_per_track

    def lba_to_chs(self, lba: int) -> Chs:
        """Translate a logical block address to cylinder/head/sector
        (memoized per LBA)."""
        chs = self._chs_cache.get(lba)
        if chs is not None:
            return chs
        if not 0 <= lba < self.total_sectors:
            raise ConfigurationError(
                f"LBA {lba} outside 0..{self.total_sectors - 1}"
            )
        index = bisect.bisect_right(self._zone_first_lba, lba) - 1
        zone = self.zones[index]
        within = lba - self._zone_first_lba[index]
        per_cylinder = self.heads * zone.sectors_per_track
        cyl_in_zone, rest = divmod(within, per_cylinder)
        head, sector = divmod(rest, zone.sectors_per_track)
        chs = Chs(zone.first_cylinder + cyl_in_zone, head, sector)
        self._chs_cache[lba] = chs
        return chs

    def chs_to_lba(self, chs: Chs) -> int:
        zone = self.zone_of_cylinder(chs.cylinder)
        if not 0 <= chs.head < self.heads:
            raise ConfigurationError(f"head {chs.head} out of range")
        if not 0 <= chs.sector < zone.sectors_per_track:
            raise ConfigurationError(f"sector {chs.sector} out of range")
        index = self.zones.index(zone)
        within = (
            (chs.cylinder - zone.first_cylinder)
            * self.heads
            * zone.sectors_per_track
            + chs.head * zone.sectors_per_track
            + chs.sector
        )
        return self._zone_first_lba[index] + within

    def __repr__(self) -> str:
        return (
            f"DiskGeometry(cylinders={self.cylinders}, heads={self.heads},"
            f" zones={len(self.zones)}, sectors={self.total_sectors})"
        )


def uniform_zones(
    cylinders: int, zone_count: int, sectors_per_track: Sequence[int]
) -> List[Zone]:
    """Split ``cylinders`` into ``zone_count`` contiguous zones.

    ``sectors_per_track[i]`` is zone i's density (outer zones first).
    """
    if len(sectors_per_track) != zone_count:
        raise ConfigurationError("one density per zone required")
    base, extra = divmod(cylinders, zone_count)
    zones = []
    start = 0
    for i in range(zone_count):
        size = base + (1 if i < extra else 0)
        zones.append(Zone(start, size, sectors_per_track[i]))
        start += size
    return zones
