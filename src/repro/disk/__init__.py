"""Mechanical disk model.

Implements the drive side of the paper's Table 2: zoned CHS geometry, a
calibrated seek-time curve, rotational position tracking, per-sector zoned
transfer rates, and head scheduling (SSTF on a bounded queue).  The HP 2247
instance used by every experiment lives in :mod:`~repro.disk.hp2247`.
"""

from repro.disk.drive import DiskDrive, DiskRequest, ServiceRecord
from repro.disk.geometry import DiskGeometry, Zone
from repro.disk.hp2247 import HP2247_GEOMETRY, HP2247_SEEK, make_hp2247
from repro.disk.scheduler import (
    FifoScheduler,
    LookScheduler,
    Scheduler,
    SstfScheduler,
    make_scheduler,
)
from repro.disk.seek import SeekModel
from repro.disk.stats import DiskOpClass, DiskStats, classify_operation

__all__ = [
    "DiskDrive",
    "DiskGeometry",
    "DiskOpClass",
    "DiskRequest",
    "DiskStats",
    "FifoScheduler",
    "HP2247_GEOMETRY",
    "HP2247_SEEK",
    "LookScheduler",
    "Scheduler",
    "SeekModel",
    "ServiceRecord",
    "SstfScheduler",
    "Zone",
    "classify_operation",
    "make_hp2247",
    "make_scheduler",
]
