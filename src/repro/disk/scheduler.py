"""Head-scheduling policies.

Table 2: "dynamic request reordering following the shortest-seek-time-first
(SSTF) policy ... on 20-request queue".  FIFO and LOOK are provided for the
ablation benchmarks.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from repro.disk.drive import DiskRequest
from repro.disk.geometry import DiskGeometry
from repro.errors import ConfigurationError


class Scheduler(abc.ABC):
    """A per-disk request queue with a pick-next policy."""

    name: str = "abstract"

    def __init__(self, geometry: DiskGeometry):
        self.geometry = geometry
        self._queue: List[Tuple[int, DiskRequest]] = []  # (cylinder, req)

    def push(self, request: DiskRequest) -> None:
        cylinder = self.geometry.lba_to_chs(request.lba).cylinder
        self._queue.append((cylinder, request))

    def __len__(self) -> int:
        return len(self._queue)

    def peek_all(self) -> List[DiskRequest]:
        return [req for _, req in self._queue]

    @abc.abstractmethod
    def pop(self, current_cylinder: int) -> Optional[DiskRequest]:
        """Remove and return the next request, or None when empty."""


class FifoScheduler(Scheduler):
    """First come, first served."""

    name = "fifo"

    def pop(self, current_cylinder: int) -> Optional[DiskRequest]:
        if not self._queue:
            return None
        return self._queue.pop(0)[1]


class SstfScheduler(Scheduler):
    """Shortest seek time first over a bounded inspection window.

    Only the oldest ``window`` queued requests are candidates (Table 2's
    "20-request queue"), which bounds starvation the way the paper's
    simulator did.
    """

    name = "sstf"

    def __init__(self, geometry: DiskGeometry, window: int = 20):
        super().__init__(geometry)
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window

    def pop(self, current_cylinder: int) -> Optional[DiskRequest]:
        if not self._queue:
            return None
        candidates = self._queue[: self.window]
        best_index = min(
            range(len(candidates)),
            key=lambda i: (abs(candidates[i][0] - current_cylinder), i),
        )
        return self._queue.pop(best_index)[1]


class LookScheduler(Scheduler):
    """Elevator (LOOK): sweep in one direction, reverse at the last request."""

    name = "look"

    def __init__(self, geometry: DiskGeometry):
        super().__init__(geometry)
        self._direction = 1

    def pop(self, current_cylinder: int) -> Optional[DiskRequest]:
        if not self._queue:
            return None
        ahead = [
            (cyl, i)
            for i, (cyl, _) in enumerate(self._queue)
            if (cyl - current_cylinder) * self._direction >= 0
        ]
        if not ahead:
            self._direction = -self._direction
            ahead = [(cyl, i) for i, (cyl, _) in enumerate(self._queue)]
        _, index = min(
            ahead, key=lambda item: abs(item[0] - current_cylinder)
        )
        return self._queue.pop(index)[1]


def make_scheduler(
    name: str, geometry: DiskGeometry, window: int = 20
) -> Scheduler:
    """Factory by policy name: "sstf", "fifo", or "look"."""
    key = name.lower()
    if key == "sstf":
        return SstfScheduler(geometry, window=window)
    if key == "fifo":
        return FifoScheduler(geometry)
    if key == "look":
        return LookScheduler(geometry)
    raise ConfigurationError(f"unknown scheduler {name!r}")
