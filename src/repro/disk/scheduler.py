"""Head-scheduling policies.

Table 2: "dynamic request reordering following the shortest-seek-time-first
(SSTF) policy ... on 20-request queue".  FIFO and LOOK are provided for the
ablation benchmarks.

The shared queue is a :class:`collections.deque`: FIFO pop is O(1)
instead of ``list.pop(0)``'s O(n), and the windowed policies only ever
index the first ``window`` entries (cheap at deque ends).  Pop order is
bit-identical to the original list implementation — ties still go to the
oldest queued request — which the hypothesis equivalence test in
``tests/disk/test_scheduler_equivalence.py`` pins against a list-based
reference model.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.disk.drive import DiskRequest
from repro.disk.geometry import DiskGeometry
from repro.errors import ConfigurationError


class Scheduler(abc.ABC):
    """A per-disk request queue with a pick-next policy."""

    name: str = "abstract"

    #: True when popping a lone queued request is equivalent to FIFO pop
    #: *and* leaves no policy state behind.  Lets the disk server skip
    #: the push/pop round trip for a request arriving at an idle, empty
    #: server.  LOOK must opt out: even a single-item pop can flip its
    #: sweep direction.
    pops_lone_item_fifo: bool = True

    def __init__(self, geometry: DiskGeometry):
        self.geometry = geometry
        # (cylinder, request), oldest first.
        self._queue: Deque[Tuple[int, DiskRequest]] = deque()
        # Shared per-geometry LBA -> cylinder memo (one dict hit per
        # push instead of the full CHS translation + attribute hop).
        self._cylinder_cache = geometry._cylinder_cache

    def push(self, request: DiskRequest) -> None:
        lba = request.lba
        cache = self._cylinder_cache
        cylinder = cache.get(lba)
        if cylinder is None:
            cylinder = self.geometry.lba_to_chs(lba).cylinder
            cache[lba] = cylinder
        self._queue.append((cylinder, request))

    def __len__(self) -> int:
        return len(self._queue)

    def peek_all(self) -> List[DiskRequest]:
        """Queued requests, oldest first (arrival order)."""
        return [req for _, req in self._queue]

    def clear(self) -> int:
        """Drop every queued request (controller crash); returns count."""
        dropped = len(self._queue)
        self._queue.clear()
        return dropped

    @abc.abstractmethod
    def pop(self, current_cylinder: int) -> Optional[DiskRequest]:
        """Remove and return the next request, or None when empty."""


class FifoScheduler(Scheduler):
    """First come, first served."""

    name = "fifo"

    def pop(self, current_cylinder: int) -> Optional[DiskRequest]:
        if not self._queue:
            return None
        return self._queue.popleft()[1]


class SstfScheduler(Scheduler):
    """Shortest seek time first over a bounded inspection window.

    Only the oldest ``window`` queued requests are candidates (Table 2's
    "20-request queue"), which bounds starvation the way the paper's
    simulator did.
    """

    name = "sstf"

    def __init__(self, geometry: DiskGeometry, window: int = 20):
        super().__init__(geometry)
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window

    def pop(self, current_cylinder: int) -> Optional[DiskRequest]:
        queue = self._queue
        if not queue:
            return None
        if len(queue) == 1:
            # Depth-one queues dominate moderate loads: nothing to rank.
            return queue.popleft()[1]
        # Manual windowed argmin — no slice copy, no per-call key lambda.
        # Strict < keeps the oldest request on distance ties, matching
        # the original ``min(..., key=(distance, index))``.
        window = self.window
        best_index = -1
        best_distance = -1
        for i, (cylinder, _) in enumerate(queue):
            if i >= window:
                break
            distance = cylinder - current_cylinder
            if distance < 0:
                distance = -distance
            if best_index < 0 or distance < best_distance:
                best_index = i
                best_distance = distance
                if distance == 0:
                    break
        if best_index == 0:
            return queue.popleft()[1]
        request = queue[best_index][1]
        del queue[best_index]
        return request


class LookScheduler(Scheduler):
    """Elevator (LOOK): sweep in one direction, reverse at the last request."""

    name = "look"

    pops_lone_item_fifo = False  # a lone pop may flip the sweep direction

    def __init__(self, geometry: DiskGeometry):
        super().__init__(geometry)
        self._direction = 1

    def _nearest(self, current_cylinder: int, ahead_only: bool) -> int:
        """Index of the closest queued request (first wins ties);
        ``ahead_only`` restricts to the current sweep direction.
        Returns -1 when no candidate qualifies."""
        direction = self._direction
        best_index = -1
        best_distance = -1
        for i, (cylinder, _) in enumerate(self._queue):
            delta = cylinder - current_cylinder
            if ahead_only and delta * direction < 0:
                continue
            distance = -delta if delta < 0 else delta
            if best_index < 0 or distance < best_distance:
                best_index = i
                best_distance = distance
        return best_index

    def pop(self, current_cylinder: int) -> Optional[DiskRequest]:
        queue = self._queue
        if not queue:
            return None
        index = self._nearest(current_cylinder, ahead_only=True)
        if index < 0:
            self._direction = -self._direction
            index = self._nearest(current_cylinder, ahead_only=False)
        if index == 0:
            return queue.popleft()[1]
        request = queue[index][1]
        del queue[index]
        return request


def make_scheduler(
    name: str, geometry: DiskGeometry, window: int = 20
) -> Scheduler:
    """Factory by policy name: "sstf", "fifo", or "look"."""
    key = name.lower()
    if key == "sstf":
        return SstfScheduler(geometry, window=window)
    if key == "fifo":
        return FifoScheduler(geometry)
    if key == "look":
        return LookScheduler(geometry)
    raise ConfigurationError(f"unknown scheduler {name!r}")
