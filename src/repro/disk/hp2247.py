"""The HP 2247 drive of the paper's Table 2.

Published envelope: 1.03 GB, 1981 cylinders, 13 heads, 8 zones, 10 ms
average seek, 5400 RPM (11.12 ms/revolution); §4 adds a 2.9 ms cylinder
switch and a 0.8 ms track switch.  The actual per-zone densities were never
published, so we synthesize an 8-zone table whose totals land on the
published capacity — any table satisfying the envelope exercises the same
code paths (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from repro.disk.drive import DiskDrive
from repro.disk.geometry import DiskGeometry, uniform_zones
from repro.disk.seek import SeekModel

CYLINDERS = 1981
HEADS = 13
ZONES = 8
RPM = 5400.0
AVERAGE_SEEK_MS = 10.0
SINGLE_CYLINDER_SEEK_MS = 2.9   # §4: "cylinder switch service time"
HEAD_SWITCH_MS = 0.8            # §4: "track switch service time"
MAX_SEEK_MS = 18.0              # unpublished; typical for the class
SECTOR_BYTES = 512

#: Synthesized per-zone sectors-per-track, outer (denser) zones first.
#: Totals 2,022,098 sectors = 1.035 GB, matching the published 1.03 GB.
ZONE_SECTORS_PER_TRACK = (96, 91, 86, 81, 76, 71, 66, 61)

HP2247_GEOMETRY = DiskGeometry(
    heads=HEADS,
    zones=uniform_zones(CYLINDERS, ZONES, ZONE_SECTORS_PER_TRACK),
)

HP2247_SEEK = SeekModel.fitted(
    CYLINDERS, SINGLE_CYLINDER_SEEK_MS, AVERAGE_SEEK_MS, MAX_SEEK_MS
)


def make_hp2247(track_buffer: bool = False) -> DiskDrive:
    """A fresh HP 2247 drive (arm parked at cylinder 0, head 0).

    ``track_buffer`` enables the optional read track cache (an ablation
    feature; the paper's simulation models no drive cache).

    >>> drive = make_hp2247()
    >>> round(drive.revolution_ms, 2)
    11.11
    >>> drive.geometry.capacity_bytes > 1_030_000_000
    True
    """
    return DiskDrive(
        geometry=HP2247_GEOMETRY,
        seek_model=HP2247_SEEK,
        rpm=RPM,
        head_switch_ms=HEAD_SWITCH_MS,
        cylinder_switch_ms=SINGLE_CYLINDER_SEEK_MS,
        track_buffer=track_buffer,
    )
