"""The mechanical drive service model.

A drive serves one request at a time: position the arm (full seek when the
cylinder changes, a head switch when only the head does), wait for the start
sector to rotate under the head, then transfer, paying a head switch per
track boundary and a cylinder switch when the transfer spills into the next
cylinder (ideal track skew assumed: no extra rotational wait after a
switch).  The platter spins continuously, so rotational latency is derived
from absolute time, which is what couples queueing order to service time and
makes SSTF matter.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.disk.geometry import DiskGeometry
from repro.disk.seek import SeekModel
from repro.errors import ConfigurationError

try:  # numpy accelerates table precomputation; the scalar fallback is exact
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None


class DiskRequest(NamedTuple):
    """One physical transfer: ``sectors`` blocks starting at ``lba``.

    ``access_id`` ties the request to its logical access (for the paper's
    local / non-local operation classification); ``tag`` is free for the
    array controller.
    """

    lba: int
    sectors: int
    is_write: bool
    access_id: int
    tag: object = None


class ServiceRecord(NamedTuple):
    """Timing decomposition of one serviced request.

    ``failed`` marks a *transient* I/O error: the drive spent the full
    mechanical time (arm moved, transfer attempted) but the operation did
    not succeed — a retry of the same sector usually will.  Distinct from
    the persistent :class:`~repro.faults.media.MediaErrorMap` errors,
    which never heal without a rewrite.

    (A named tuple, not a dataclass: one is built per physical
    operation, and tuple construction is several times cheaper than a
    frozen dataclass ``__init__`` — measurable on the hot path.)
    """

    seek_ms: float
    latency_ms: float
    transfer_ms: float
    cylinder_changed: bool
    head_changed: bool
    failed: bool = False

    @property
    def total_ms(self) -> float:
        return self.seek_ms + self.latency_ms + self.transfer_ms


class TransientErrorModel:
    """Seeded per-operation transient-failure draws for one drive.

    Each mechanical service draws once from the drive's named stream;
    with probability ``rate`` the operation fails transiently.  A zero
    rate consumes no randomness, so attaching an inactive model leaves
    simulations byte-identical.
    """

    def __init__(self, rate: float, seed: object):
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(
                f"transient error rate must be in [0, 1), got {rate}"
            )
        self.rate = rate
        self._rng = random.Random(seed)
        self.draws = 0
        self.injected = 0

    def draw(self) -> bool:
        if self.rate <= 0.0:
            return False
        self.draws += 1
        if self._rng.random() < self.rate:
            self.injected += 1
            return True
        return False


class ServiceTables:
    """Precomputed service arithmetic, shared per drive *model*.

    The mechanical constants (geometry, seek curve, spin rate, switch
    times) are per-model, not per-spindle, so every table here is built
    once and shared by all drives of an array — and across arrays, and
    across Monte-Carlo trials in one process:

    - ``seek_by_distance``: the seek curve flattened to one list indexed
      by cylinder distance, evaluated in a single numpy vector sweep
      (``single + alpha*sqrt(d-1) + beta*(d-1)`` elementwise, which is
      IEEE-identical to the scalar evaluation — a test pins every
      entry against :meth:`SeekModel.seek_time`);
    - ``angle_by_spt``: per zone density, the rotation angle of each
      sector start (``(sector / spt) * rev``) as one numpy sweep;
    - ``transfer``: ``(lba, sectors) -> (start_cyl, start_head,
      target_angle, transfer_ms, end_cyl, end_head)``.  Transfer time
      and final arm position depend only on the start address and
      length — never on the clock or previous arm state — so the
      track-crossing walk runs once per distinct request shape and is
      a dict hit forever after.

    Nothing here depends on drive *state*; :class:`DiskDrive.service`
    combines a table entry with the arm position and clock.
    """

    _shared: Dict[tuple, "ServiceTables"] = {}

    def __init__(
        self,
        geometry: DiskGeometry,
        seek_model: SeekModel,
        revolution_ms: float,
        head_switch_ms: float,
        cylinder_switch_ms: float,
    ):
        self.geometry = geometry
        self.revolution_ms = revolution_ms
        self.head_switch_ms = head_switch_ms
        self.cylinder_switch_ms = cylinder_switch_ms
        self.seek_by_distance = self._seek_table(seek_model)
        self.angle_by_spt: Dict[int, List[float]] = {
            zone.sectors_per_track: self._angle_table(zone.sectors_per_track)
            for zone in geometry.zones
        }
        self.transfer: Dict[
            Tuple[int, int], Tuple[int, int, float, float, int, int]
        ] = {}

    @classmethod
    def shared(
        cls,
        geometry: DiskGeometry,
        seek_model: SeekModel,
        revolution_ms: float,
        head_switch_ms: float,
        cylinder_switch_ms: float,
    ) -> "ServiceTables":
        """The one table set for this drive model (keyed by identity of
        the immutable geometry/seek objects plus the scalar constants)."""
        key = (
            id(geometry),
            id(seek_model),
            revolution_ms,
            head_switch_ms,
            cylinder_switch_ms,
        )
        tables = cls._shared.get(key)
        if tables is None:
            tables = cls(
                geometry,
                seek_model,
                revolution_ms,
                head_switch_ms,
                cylinder_switch_ms,
            )
            # The instance holds strong refs to geometry/seek_model, so
            # the ids in the key stay pinned while the entry lives.
            cls._shared[key] = tables
        return tables

    def _seek_table(self, seek_model: SeekModel) -> List[float]:
        cylinders = seek_model.cylinders
        if _np is not None:
            d_minus_1 = _np.arange(-1.0, cylinders - 1.0)
            d_minus_1[0] = 0.0  # distance 0: placeholder, overwritten below
            curve = (
                seek_model.single_ms
                + seek_model.alpha * _np.sqrt(d_minus_1)
                + seek_model.beta * d_minus_1
            )
            table = curve.tolist()
        else:
            table = [seek_model.seek_time(d) for d in range(cylinders)]
        table[0] = 0.0  # no arm motion, no seek
        return table

    def _angle_table(self, spt: int) -> List[float]:
        rev = self.revolution_ms
        if _np is not None:
            return ((_np.arange(float(spt)) / spt) * rev).tolist()
        return [(sector / spt) * rev for sector in range(spt)]

    def entry(
        self, lba: int, sectors: int
    ) -> Tuple[int, int, float, float, int, int]:
        """The transfer-table entry for ``(lba, sectors)``, computing and
        caching it on first use (the exact reference walk)."""
        geometry = self.geometry
        cylinder, head, sector = geometry.lba_to_chs(lba)
        spt_of = geometry.sectors_per_track
        spt = spt_of(cylinder)
        target_angle = self.angle_by_spt[spt][sector]
        rev = self.revolution_ms
        transfer_ms = 0.0
        remaining = sectors
        heads = geometry.heads
        end_cylinder, end_head = cylinder, head
        while remaining > 0:
            chunk = spt - sector
            if remaining < chunk:
                chunk = remaining
            transfer_ms += chunk * rev / spt
            remaining -= chunk
            sector += chunk
            if remaining > 0:
                sector = 0
                end_head += 1
                if end_head == heads:
                    end_head = 0
                    end_cylinder += 1
                    transfer_ms += self.cylinder_switch_ms
                    spt = spt_of(end_cylinder)
                else:
                    transfer_ms += self.head_switch_ms
        entry = (
            cylinder,
            head,
            target_angle,
            transfer_ms,
            end_cylinder,
            end_head,
        )
        self.transfer[(lba, sectors)] = entry
        return entry


class DiskDrive:
    """Stateful mechanical model of one spindle.

    >>> from repro.disk.hp2247 import make_hp2247
    >>> drive = make_hp2247()
    >>> rec = drive.service(DiskRequest(0, 16, False, access_id=0), now_ms=0.0)
    >>> rec.total_ms > 0
    True
    """

    def __init__(
        self,
        geometry: DiskGeometry,
        seek_model: SeekModel,
        rpm: float,
        head_switch_ms: float,
        cylinder_switch_ms: float,
        track_buffer: bool = False,
        buffer_hit_ms: float = 0.2,
    ):
        if seek_model.cylinders != geometry.cylinders:
            raise ConfigurationError(
                "seek model and geometry disagree on cylinder count"
            )
        if rpm <= 0:
            raise ConfigurationError(f"rpm must be positive, got {rpm}")
        if buffer_hit_ms < 0:
            raise ConfigurationError("buffer hit time must be >= 0")
        self.geometry = geometry
        self.seek_model = seek_model
        self.revolution_ms = 60_000.0 / rpm
        self.head_switch_ms = head_switch_ms
        self.cylinder_switch_ms = cylinder_switch_ms
        self.track_buffer = track_buffer
        self.buffer_hit_ms = buffer_hit_ms
        self.cylinder = 0
        self.head = 0
        self._buffered_track = None  # (cylinder, head) of the cached track
        self.buffer_hits = 0
        self.ops_serviced = 0
        self.busy_ms = 0.0
        #: Optional transient-failure injection; None (the default) draws
        #: nothing and keeps service byte-identical to an error-free drive.
        self.transient_errors: Optional[TransientErrorModel] = None
        #: Optional fail-slow (gray failure) inflation, duck-typed to
        #: :class:`repro.faults.failslow.FailSlowModel`; None (the
        #: default) leaves every service computation untouched.
        self.fail_slow = None
        #: Precomputed per-model service tables, shared across spindles.
        self.tables = ServiceTables.shared(
            geometry,
            seek_model,
            self.revolution_ms,
            head_switch_ms,
            cylinder_switch_ms,
        )

    def reset(self) -> None:
        self.cylinder = 0
        self.head = 0
        self._buffered_track = None
        self.buffer_hits = 0
        self.ops_serviced = 0
        self.busy_ms = 0.0

    def _rotational_wait(self, now_ms: float, sector: int, spt: int) -> float:
        """Time until ``sector`` passes under the head, from ``now_ms``."""
        rev = self.revolution_ms
        target_angle = (sector / spt) * rev
        current_angle = now_ms % rev
        return (target_angle - current_angle) % rev

    def service(self, request: DiskRequest, now_ms: float) -> ServiceRecord:
        """Serve ``request`` starting at absolute time ``now_ms``.

        Returns the timing decomposition and leaves the arm at the final
        track.  The caller (simulation engine) owns queueing; this method
        assumes the drive is idle.

        Table-backed hot path: the request's state-independent arithmetic
        (start/end position, rotation target angle, transfer walk) comes
        from the shared :class:`ServiceTables`; only the seek distance
        and the rotational wait — the parts coupled to arm position and
        absolute time — are computed here.  Bit-identical to
        :meth:`service_reference`, which remains the authority (and
        serves the track-buffer configuration, whose hit test needs the
        per-request CHS walk anyway).
        """
        if self.track_buffer:
            return self.service_reference(request, now_ms)
        sectors = request.sectors
        if sectors < 1:
            raise ConfigurationError(f"empty transfer: {request}")
        tables = self.tables
        key = (request.lba, sectors)
        entry = tables.transfer.get(key)
        if entry is None:
            entry = tables.entry(request.lba, sectors)
        cylinder, head, target_angle, transfer_ms, end_cyl, end_head = entry
        arm = self.cylinder
        head_changed = head != self.head
        if cylinder != arm:
            cylinder_changed = True
            distance = cylinder - arm if cylinder > arm else arm - cylinder
            seek_ms = tables.seek_by_distance[distance]
        else:
            cylinder_changed = False
            seek_ms = self.head_switch_ms if head_changed else 0.0
        rev = self.revolution_ms
        latency_ms = (target_angle - (now_ms + seek_ms) % rev) % rev
        if self.fail_slow is not None:
            m = self.fail_slow.scale(now_ms)
            if m != 1.0:
                seek_ms *= m
                latency_ms *= m
                transfer_ms *= m
        self.cylinder = end_cyl
        self.head = end_head
        failed = (
            self.transient_errors.draw()
            if self.transient_errors is not None
            else False
        )
        self.ops_serviced += 1
        self.busy_ms += seek_ms + latency_ms + transfer_ms
        return ServiceRecord(
            seek_ms,
            latency_ms,
            transfer_ms,
            cylinder_changed,
            head_changed,
            failed,
        )

    def service_reference(
        self, request: DiskRequest, now_ms: float
    ) -> ServiceRecord:
        """The scalar reference walk (and the track-buffer path).

        Recomputes everything from the geometry per call; the
        equivalence tests pin :meth:`service` against it request by
        request.
        """
        sectors = request.sectors
        if sectors < 1:
            raise ConfigurationError(f"empty transfer: {request}")
        geometry = self.geometry
        chs = geometry.lba_to_chs(request.lba)
        cylinder, head, sector = chs
        cylinder_changed = cylinder != self.cylinder
        head_changed = head != self.head

        # Track-buffer hit: a read entirely within the cached track is
        # served from the buffer at electronic speed — no arm or platter
        # involvement, arm position unchanged.
        if self.track_buffer and not request.is_write:
            last = geometry.lba_to_chs(request.lba + sectors - 1)
            if (
                self._buffered_track == (cylinder, head)
                and (last.cylinder, last.head) == self._buffered_track
            ):
                self.buffer_hits += 1
                self.ops_serviced += 1
                self.busy_ms += self.buffer_hit_ms
                return ServiceRecord(
                    seek_ms=0.0,
                    latency_ms=0.0,
                    transfer_ms=self.buffer_hit_ms,
                    cylinder_changed=False,
                    head_changed=False,
                )

        if cylinder_changed:
            seek_ms = self.seek_model.seek_time(
                abs(cylinder - self.cylinder)
            )
        elif head_changed:
            seek_ms = self.head_switch_ms
        else:
            seek_ms = 0.0

        rev = self.revolution_ms
        spt_of = geometry.sectors_per_track
        spt = spt_of(cylinder)
        # Rotational wait for `sector` from `now_ms + seek_ms` — the
        # inlined _rotational_wait, same operations in the same order.
        latency_ms = ((sector / spt) * rev - (now_ms + seek_ms) % rev) % rev

        transfer_ms = 0.0
        remaining = sectors
        heads = geometry.heads
        while remaining > 0:
            # spt only changes when the transfer crosses a cylinder
            # boundary (updated below) — head switches stay in-zone.
            chunk = spt - sector
            if remaining < chunk:
                chunk = remaining
            transfer_ms += chunk * rev / spt
            remaining -= chunk
            sector += chunk
            if remaining > 0:
                sector = 0
                head += 1
                if head == heads:
                    head = 0
                    cylinder += 1
                    transfer_ms += self.cylinder_switch_ms
                    spt = spt_of(cylinder)
                else:
                    transfer_ms += self.head_switch_ms

        # Fail-slow inflation covers mechanical service only — a track
        # buffer hit is electronic and returned above.
        if self.fail_slow is not None:
            m = self.fail_slow.scale(now_ms)
            if m != 1.0:
                seek_ms *= m
                latency_ms *= m
                transfer_ms *= m
        self.cylinder = cylinder
        self.head = head
        # Transient failure draw covers mechanical transfers only — a
        # buffer hit touches no media (it returned above).
        failed = (
            self.transient_errors.draw()
            if self.transient_errors is not None
            else False
        )
        if self.track_buffer:
            # Reading fills the buffer with the final track touched;
            # writes invalidate it (write-through, no read-back), and a
            # failed read caches nothing trustworthy.
            if request.is_write or failed:
                self._buffered_track = None
            else:
                self._buffered_track = (cylinder, head)
        self.ops_serviced += 1
        self.busy_ms += seek_ms + latency_ms + transfer_ms
        return ServiceRecord(
            seek_ms=seek_ms,
            latency_ms=latency_ms,
            transfer_ms=transfer_ms,
            cylinder_changed=cylinder_changed,
            head_changed=head_changed,
            failed=failed,
        )

    def __repr__(self) -> str:
        return (
            f"DiskDrive({self.geometry!r}, rev={self.revolution_ms:.2f}ms)"
        )
