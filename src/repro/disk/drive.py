"""The mechanical drive service model.

A drive serves one request at a time: position the arm (full seek when the
cylinder changes, a head switch when only the head does), wait for the start
sector to rotate under the head, then transfer, paying a head switch per
track boundary and a cylinder switch when the transfer spills into the next
cylinder (ideal track skew assumed: no extra rotational wait after a
switch).  The platter spins continuously, so rotational latency is derived
from absolute time, which is what couples queueing order to service time and
makes SSTF matter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import NamedTuple, Optional

from repro.disk.geometry import DiskGeometry
from repro.disk.seek import SeekModel
from repro.errors import ConfigurationError


class DiskRequest(NamedTuple):
    """One physical transfer: ``sectors`` blocks starting at ``lba``.

    ``access_id`` ties the request to its logical access (for the paper's
    local / non-local operation classification); ``tag`` is free for the
    array controller.
    """

    lba: int
    sectors: int
    is_write: bool
    access_id: int
    tag: object = None


@dataclass(frozen=True)
class ServiceRecord:
    """Timing decomposition of one serviced request.

    ``failed`` marks a *transient* I/O error: the drive spent the full
    mechanical time (arm moved, transfer attempted) but the operation did
    not succeed — a retry of the same sector usually will.  Distinct from
    the persistent :class:`~repro.faults.media.MediaErrorMap` errors,
    which never heal without a rewrite.
    """

    seek_ms: float
    latency_ms: float
    transfer_ms: float
    cylinder_changed: bool
    head_changed: bool
    failed: bool = False

    @property
    def total_ms(self) -> float:
        return self.seek_ms + self.latency_ms + self.transfer_ms


class TransientErrorModel:
    """Seeded per-operation transient-failure draws for one drive.

    Each mechanical service draws once from the drive's named stream;
    with probability ``rate`` the operation fails transiently.  A zero
    rate consumes no randomness, so attaching an inactive model leaves
    simulations byte-identical.
    """

    def __init__(self, rate: float, seed: object):
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(
                f"transient error rate must be in [0, 1), got {rate}"
            )
        self.rate = rate
        self._rng = random.Random(seed)
        self.draws = 0
        self.injected = 0

    def draw(self) -> bool:
        if self.rate <= 0.0:
            return False
        self.draws += 1
        if self._rng.random() < self.rate:
            self.injected += 1
            return True
        return False


class DiskDrive:
    """Stateful mechanical model of one spindle.

    >>> from repro.disk.hp2247 import make_hp2247
    >>> drive = make_hp2247()
    >>> rec = drive.service(DiskRequest(0, 16, False, access_id=0), now_ms=0.0)
    >>> rec.total_ms > 0
    True
    """

    def __init__(
        self,
        geometry: DiskGeometry,
        seek_model: SeekModel,
        rpm: float,
        head_switch_ms: float,
        cylinder_switch_ms: float,
        track_buffer: bool = False,
        buffer_hit_ms: float = 0.2,
    ):
        if seek_model.cylinders != geometry.cylinders:
            raise ConfigurationError(
                "seek model and geometry disagree on cylinder count"
            )
        if rpm <= 0:
            raise ConfigurationError(f"rpm must be positive, got {rpm}")
        if buffer_hit_ms < 0:
            raise ConfigurationError("buffer hit time must be >= 0")
        self.geometry = geometry
        self.seek_model = seek_model
        self.revolution_ms = 60_000.0 / rpm
        self.head_switch_ms = head_switch_ms
        self.cylinder_switch_ms = cylinder_switch_ms
        self.track_buffer = track_buffer
        self.buffer_hit_ms = buffer_hit_ms
        self.cylinder = 0
        self.head = 0
        self._buffered_track = None  # (cylinder, head) of the cached track
        self.buffer_hits = 0
        self.ops_serviced = 0
        self.busy_ms = 0.0
        #: Optional transient-failure injection; None (the default) draws
        #: nothing and keeps service byte-identical to an error-free drive.
        self.transient_errors: Optional[TransientErrorModel] = None

    def reset(self) -> None:
        self.cylinder = 0
        self.head = 0
        self._buffered_track = None
        self.buffer_hits = 0
        self.ops_serviced = 0
        self.busy_ms = 0.0

    def _rotational_wait(self, now_ms: float, sector: int, spt: int) -> float:
        """Time until ``sector`` passes under the head, from ``now_ms``."""
        rev = self.revolution_ms
        target_angle = (sector / spt) * rev
        current_angle = now_ms % rev
        return (target_angle - current_angle) % rev

    def service(self, request: DiskRequest, now_ms: float) -> ServiceRecord:
        """Serve ``request`` starting at absolute time ``now_ms``.

        Returns the timing decomposition and leaves the arm at the final
        track.  The caller (simulation engine) owns queueing; this method
        assumes the drive is idle.
        """
        sectors = request.sectors
        if sectors < 1:
            raise ConfigurationError(f"empty transfer: {request}")
        geometry = self.geometry
        chs = geometry.lba_to_chs(request.lba)
        cylinder, head, sector = chs
        cylinder_changed = cylinder != self.cylinder
        head_changed = head != self.head

        # Track-buffer hit: a read entirely within the cached track is
        # served from the buffer at electronic speed — no arm or platter
        # involvement, arm position unchanged.
        if self.track_buffer and not request.is_write:
            last = geometry.lba_to_chs(request.lba + sectors - 1)
            if (
                self._buffered_track == (cylinder, head)
                and (last.cylinder, last.head) == self._buffered_track
            ):
                self.buffer_hits += 1
                self.ops_serviced += 1
                self.busy_ms += self.buffer_hit_ms
                return ServiceRecord(
                    seek_ms=0.0,
                    latency_ms=0.0,
                    transfer_ms=self.buffer_hit_ms,
                    cylinder_changed=False,
                    head_changed=False,
                )

        if cylinder_changed:
            seek_ms = self.seek_model.seek_time(
                abs(cylinder - self.cylinder)
            )
        elif head_changed:
            seek_ms = self.head_switch_ms
        else:
            seek_ms = 0.0

        rev = self.revolution_ms
        spt_of = geometry.sectors_per_track
        spt = spt_of(cylinder)
        # Rotational wait for `sector` from `now_ms + seek_ms` — the
        # inlined _rotational_wait, same operations in the same order.
        latency_ms = ((sector / spt) * rev - (now_ms + seek_ms) % rev) % rev

        transfer_ms = 0.0
        remaining = sectors
        heads = geometry.heads
        while remaining > 0:
            # spt only changes when the transfer crosses a cylinder
            # boundary (updated below) — head switches stay in-zone.
            chunk = spt - sector
            if remaining < chunk:
                chunk = remaining
            transfer_ms += chunk * rev / spt
            remaining -= chunk
            sector += chunk
            if remaining > 0:
                sector = 0
                head += 1
                if head == heads:
                    head = 0
                    cylinder += 1
                    transfer_ms += self.cylinder_switch_ms
                    spt = spt_of(cylinder)
                else:
                    transfer_ms += self.head_switch_ms

        self.cylinder = cylinder
        self.head = head
        # Transient failure draw covers mechanical transfers only — a
        # buffer hit touches no media (it returned above).
        failed = (
            self.transient_errors.draw()
            if self.transient_errors is not None
            else False
        )
        if self.track_buffer:
            # Reading fills the buffer with the final track touched;
            # writes invalidate it (write-through, no read-back), and a
            # failed read caches nothing trustworthy.
            if request.is_write or failed:
                self._buffered_track = None
            else:
                self._buffered_track = (cylinder, head)
        self.ops_serviced += 1
        self.busy_ms += seek_ms + latency_ms + transfer_ms
        return ServiceRecord(
            seek_ms=seek_ms,
            latency_ms=latency_ms,
            transfer_ms=transfer_ms,
            cylinder_changed=cylinder_changed,
            head_changed=head_changed,
            failed=failed,
        )

    def __repr__(self) -> str:
        return (
            f"DiskDrive({self.geometry!r}, rev={self.revolution_ms:.2f}ms)"
        )
