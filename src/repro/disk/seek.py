"""Seek-time model.

The classic three-parameter curve (Lee/Katz): for a seek of ``d >= 1``
cylinders,

    t(d) = single + alpha * sqrt(d - 1) + beta * (d - 1)

— square-root-dominated arm acceleration for short seeks, linear coast for
long ones.  :meth:`SeekModel.fitted` solves alpha and beta from the drive's
published single-cylinder, average (over uniformly random request pairs),
and full-stroke seek times, which is all Table 2 gives us for the HP 2247.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


class SeekModel:
    """Seek time as a function of cylinder distance.

    >>> m = SeekModel(cylinders=1981, single_ms=2.9, alpha=0.2, beta=0.004)
    >>> m.seek_time(0)
    0.0
    >>> m.seek_time(1)
    2.9
    """

    def __init__(
        self, cylinders: int, single_ms: float, alpha: float, beta: float
    ):
        if cylinders < 2:
            raise ConfigurationError("need at least 2 cylinders")
        if single_ms < 0 or alpha < 0 or beta < 0:
            raise ConfigurationError("seek parameters must be nonnegative")
        self.cylinders = cylinders
        self.single_ms = single_ms
        self.alpha = alpha
        self.beta = beta
        # distance -> ms memo: the curve is pure and the distance domain
        # is bounded by the cylinder count, so the sqrt is paid once per
        # distinct arm travel.
        self._seek_cache: dict = {}

    def seek_time(self, distance: int) -> float:
        """Milliseconds to move the arm ``distance`` cylinders."""
        cached = self._seek_cache.get(distance)
        if cached is not None:
            return cached
        if distance < 0:
            raise ConfigurationError(f"negative seek distance {distance}")
        if distance == 0:
            ms = 0.0
        else:
            ms = (
                self.single_ms
                + self.alpha * math.sqrt(distance - 1)
                + self.beta * (distance - 1)
            )
        self._seek_cache[distance] = ms
        return ms

    def average_seek_time(self) -> float:
        """Mean seek time over independent uniform start/end cylinders,
        conditioned on actually moving (distance >= 1)."""
        c = self.cylinders
        total = 0.0
        weight = 0
        for d in range(1, c):
            w = 2 * (c - d)  # number of ordered pairs at distance d
            total += w * self.seek_time(d)
            weight += w
        return total / weight

    @classmethod
    def fitted(
        cls,
        cylinders: int,
        single_ms: float,
        average_ms: float,
        max_ms: float,
    ) -> "SeekModel":
        """Solve alpha/beta to hit the published average and full-stroke
        times exactly.

        >>> m = SeekModel.fitted(1981, 2.9, 10.0, 18.0)
        >>> round(m.average_seek_time(), 6)
        10.0
        >>> round(m.seek_time(1980), 6)
        18.0
        """
        if not single_ms < average_ms < max_ms:
            raise ConfigurationError(
                "need single < average < max seek times"
            )
        c = cylinders
        # Conditional expectations of sqrt(d-1) and (d-1) for d >= 1.
        weight = 0
        e_sqrt = 0.0
        e_lin = 0.0
        for d in range(1, c):
            w = 2 * (c - d)
            weight += w
            e_sqrt += w * math.sqrt(d - 1)
            e_lin += w * (d - 1)
        e_sqrt /= weight
        e_lin /= weight
        dmax = c - 1
        # alpha * e_sqrt + beta * e_lin = average - single
        # alpha * sqrt(dmax-1) + beta * (dmax-1) = max - single
        a1, b1, r1 = e_sqrt, e_lin, average_ms - single_ms
        a2, b2, r2 = math.sqrt(dmax - 1), dmax - 1, max_ms - single_ms
        det = a1 * b2 - a2 * b1
        if abs(det) < 1e-12:
            raise ConfigurationError("degenerate seek fit")
        alpha = (r1 * b2 - r2 * b1) / det
        beta = (a1 * r2 - a2 * r1) / det
        if alpha < 0 or beta < 0:
            raise ConfigurationError(
                f"published times imply a non-physical curve"
                f" (alpha={alpha:.4f}, beta={beta:.6f})"
            )
        return cls(cylinders, single_ms, alpha, beta)

    def __repr__(self) -> str:
        return (
            f"SeekModel(cylinders={self.cylinders}, single={self.single_ms},"
            f" alpha={self.alpha:.4f}, beta={self.beta:.6f})"
        )
