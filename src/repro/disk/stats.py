"""Per-disk operation classification and counters (Figures 4/7/15/16).

The paper classifies each physical operation by (a) locality — *local* when
the previous operation on the same disk belonged to the same logical access,
*non-local* otherwise — and (b) the head movement it required: a cylinder
switch, a track (head) switch, or no switch at all (rotation only).  The
seek/no-switch histograms of Figures 4, 7, 15 and 16 are exactly these
counters divided by the number of logical accesses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class DiskOpClass(enum.Enum):
    """Figure 4's four column components."""

    NON_LOCAL_SEEK = "non-local seek"
    CYLINDER_SWITCH = "one cylinder switch"
    TRACK_SWITCH = "one track switch"
    NO_SWITCH = "no-switch"

    # Members are singletons, so the identity hash is equivalent to
    # Enum's name-string hash — and C-speed.  ``by_class[op_class] += 1``
    # runs once per physical operation.
    __hash__ = object.__hash__


def classify_operation(
    local: bool, cylinder_changed: bool, head_changed: bool
) -> DiskOpClass:
    """Classify one physical operation.

    >>> classify_operation(False, True, False)
    <DiskOpClass.NON_LOCAL_SEEK: 'non-local seek'>
    >>> classify_operation(True, False, True)
    <DiskOpClass.TRACK_SWITCH: 'one track switch'>
    """
    if not local:
        return DiskOpClass.NON_LOCAL_SEEK
    if cylinder_changed:
        return DiskOpClass.CYLINDER_SWITCH
    if head_changed:
        return DiskOpClass.TRACK_SWITCH
    return DiskOpClass.NO_SWITCH


@dataclass(slots=True)
class DiskStats:
    """Mutable per-disk counters maintained by the simulator.

    ``slots=True``: the counters are bumped once per physical operation
    (inlined in the disk server's service path), and slot access is
    measurably cheaper than a dict-backed instance there.
    """

    operations: int = 0
    busy_ms: float = 0.0
    seek_ms: float = 0.0
    latency_ms: float = 0.0
    transfer_ms: float = 0.0
    by_class: Dict[DiskOpClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in DiskOpClass}
    )
    #: Logical access that issued the previous operation (for locality).
    last_access_id: Optional[int] = None

    def record(
        self,
        op_class: DiskOpClass,
        seek_ms: float,
        latency_ms: float,
        transfer_ms: float,
    ) -> None:
        self.operations += 1
        self.by_class[op_class] += 1
        self.seek_ms += seek_ms
        self.latency_ms += latency_ms
        self.transfer_ms += transfer_ms
        self.busy_ms += seek_ms + latency_ms + transfer_ms

    def merge(self, other: "DiskStats") -> None:
        self.operations += other.operations
        self.busy_ms += other.busy_ms
        self.seek_ms += other.seek_ms
        self.latency_ms += other.latency_ms
        self.transfer_ms += other.transfer_ms
        for cls, count in other.by_class.items():
            self.by_class[cls] += count
