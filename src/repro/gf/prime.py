"""Arithmetic in the prime field GF(p).

The PDDL layout for a prime number of disks develops its base permutation with
addition modulo ``n``; the Bose construction multiplies powers of a primitive
root modulo ``n``.  This module provides those operations behind a small,
explicit class so that the modular and GF(2^m) cases share one interface.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import FieldError

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(value: int) -> bool:
    """Deterministic Miller-Rabin primality test, exact for 64-bit inputs.

    >>> [p for p in range(20) if is_prime(p)]
    [2, 3, 5, 7, 11, 13, 17, 19]
    """
    if value < 2:
        return False
    for p in _SMALL_PRIMES:
        if value % p == 0:
            return value == p
    d = value - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for base in _SMALL_PRIMES:
        x = pow(base, d, value)
        if x in (1, value - 1):
            continue
        for _ in range(r - 1):
            x = x * x % value
            if x == value - 1:
                break
        else:
            return False
    return True


def factorize(value: int) -> dict:
    """Return the prime factorization of ``value`` as ``{prime: exponent}``.

    Trial division; intended for the small integers that occur as disk counts.

    >>> factorize(60)
    {2: 2, 3: 1, 5: 1}
    """
    if value < 1:
        raise ValueError(f"cannot factorize {value}")
    factors: dict = {}
    candidate = 2
    while candidate * candidate <= value:
        while value % candidate == 0:
            factors[candidate] = factors.get(candidate, 0) + 1
            value //= candidate
        candidate += 1 if candidate == 2 else 2
    if value > 1:
        factors[value] = factors.get(value, 0) + 1
    return factors


class PrimeField:
    """The field GF(p) of integers modulo a prime ``p``.

    Elements are plain Python ints in ``range(p)``.  All operations validate
    their operands, which keeps layout bugs from silently wrapping.

    >>> f = PrimeField(7)
    >>> f.add(5, 4)
    2
    >>> f.mul(3, 5)
    1
    >>> f.inverse(3)
    5
    """

    def __init__(self, p: int):
        if not is_prime(p):
            raise FieldError(f"PrimeField order must be prime, got {p}")
        self.order = p
        self.characteristic = p

    def _check(self, *values: int) -> None:
        for v in values:
            if not 0 <= v < self.order:
                raise FieldError(
                    f"{v} is not an element of GF({self.order})"
                )

    def add(self, a: int, b: int) -> int:
        """Field addition: ``(a + b) mod p``."""
        self._check(a, b)
        return (a + b) % self.order

    def sub(self, a: int, b: int) -> int:
        """Field subtraction: ``(a - b) mod p``."""
        self._check(a, b)
        return (a - b) % self.order

    def neg(self, a: int) -> int:
        """Additive inverse."""
        self._check(a)
        return (-a) % self.order

    def mul(self, a: int, b: int) -> int:
        """Field multiplication: ``(a * b) mod p``."""
        self._check(a, b)
        return a * b % self.order

    def pow(self, a: int, e: int) -> int:
        """Exponentiation ``a**e`` in the field; ``e`` may be negative."""
        self._check(a)
        if e < 0:
            return pow(self.inverse(a), -e, self.order)
        return pow(a, e, self.order)

    def inverse(self, a: int) -> int:
        """Multiplicative inverse of a nonzero element."""
        self._check(a)
        if a == 0:
            raise FieldError("0 has no multiplicative inverse")
        return pow(a, self.order - 2, self.order)

    def elements(self) -> Iterator[int]:
        """Iterate over all field elements, 0 first."""
        return iter(range(self.order))

    def nonzero_elements(self) -> Iterator[int]:
        """Iterate over the multiplicative group."""
        return iter(range(1, self.order))

    def element_order(self, a: int) -> int:
        """Multiplicative order of a nonzero element.

        >>> PrimeField(7).element_order(3)
        6
        """
        self._check(a)
        if a == 0:
            raise FieldError("0 has no multiplicative order")
        group = self.order - 1
        order = group
        for prime in factorize(group):
            while order % prime == 0 and pow(a, order // prime, self.order) == 1:
                order //= prime
        return order

    def __repr__(self) -> str:
        return f"PrimeField({self.order})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.order == self.order

    def __hash__(self) -> int:
        return hash(("PrimeField", self.order))
