"""GF(2^m) arithmetic with log/antilog tables.

For ``n = 2**m`` disks the PDDL development operation is bitwise XOR — "which
is available in most hardware environments" (paper §3) — and the Bose
construction enumerates powers of a primitive element of GF(2^m).  Elements
are plain ints in ``range(2**m)`` whose bits are polynomial coefficients.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import FieldError
from repro.gf.polynomial import Polynomial
from repro.gf.prime import PrimeField
from repro.gf.primitives import find_primitive_element, is_primitive_element

#: Paper appendix modulus for GF(16): x^4 + x^3 + x^2 + x + 1 (bits 0b11111).
PAPER_GF16_MODULUS = 0b11111


class BinaryField:
    """The field GF(2^m), elements encoded as integers in ``range(2**m)``.

    Builds log/antilog tables at construction, so multiplication and division
    are two table lookups — the "fastest possible mapping" flavour the paper's
    appendix advertises for power-of-two arrays.

    >>> f = BinaryField(4, modulus=PAPER_GF16_MODULUS)
    >>> f.add(0b1010, 0b0110)
    12
    >>> f.generator_powers()[:5]
    [1, 3, 5, 15, 14]
    """

    def __init__(
        self,
        m: int,
        modulus: Optional[int] = None,
        generator: Optional[int] = None,
    ):
        if m < 1:
            raise FieldError("m must be >= 1")
        self.m = m
        self.order = 1 << m
        gf2 = PrimeField(2)
        if modulus is None:
            from repro.gf.primitives import find_irreducible

            modulus_poly = find_irreducible(2, m)
        else:
            modulus_poly = Polynomial.from_int(gf2, modulus)
            if modulus_poly.degree != m:
                raise FieldError(
                    f"modulus degree {modulus_poly.degree} != m = {m}"
                )
            if not modulus_poly.is_irreducible():
                raise FieldError(f"modulus {modulus:#x} is reducible")
        self.modulus = modulus_poly.to_int()
        self._modulus_poly = modulus_poly

        if generator is None:
            gen_poly = find_primitive_element(modulus_poly)
        else:
            gen_poly = Polynomial.from_int(gf2, generator)
            if not is_primitive_element(gen_poly, modulus_poly):
                raise FieldError(f"{generator:#x} is not primitive")
        self.generator = gen_poly.to_int()

        self._exp: List[int] = [0] * (2 * (self.order - 1))
        self._log: List[int] = [0] * self.order
        current = Polynomial.one(gf2)
        for i in range(self.order - 1):
            value = current.to_int()
            self._exp[i] = value
            self._exp[i + self.order - 1] = value
            self._log[value] = i
            current = (current * gen_poly) % modulus_poly

    def _check(self, *values: int) -> None:
        for v in values:
            if not 0 <= v < self.order:
                raise FieldError(f"{v} is not an element of GF({self.order})")

    def add(self, a: int, b: int) -> int:
        """Addition is XOR; this is the PDDL development operation."""
        self._check(a, b)
        return a ^ b

    sub = add  # characteristic 2: subtraction equals addition

    def neg(self, a: int) -> int:
        self._check(a)
        return a

    def mul(self, a: int, b: int) -> int:
        """Table-based multiplication."""
        self._check(a, b)
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def inverse(self, a: int) -> int:
        self._check(a)
        if a == 0:
            raise FieldError("0 has no multiplicative inverse")
        return self._exp[self.order - 1 - self._log[a]]

    def pow(self, a: int, e: int) -> int:
        self._check(a)
        if a == 0:
            if e == 0:
                return 1
            if e < 0:
                raise FieldError("0 has no negative powers")
            return 0
        exponent = (self._log[a] * e) % (self.order - 1)
        return self._exp[exponent]

    def log(self, a: int) -> int:
        """Discrete log base the field generator."""
        self._check(a)
        if a == 0:
            raise FieldError("log(0) is undefined")
        return self._log[a]

    def generator_powers(self) -> List[int]:
        """All ``2**m - 1`` successive powers of the generator, from 1.

        For the paper's GF(16) example this is
        ``[1, 3, 5, 15, 14, 13, 8, 7, 9, 4, 12, 11, 2, 6, 10]``.
        """
        return list(self._exp[: self.order - 1])

    def elements(self):
        return iter(range(self.order))

    def __repr__(self) -> str:
        return (
            f"BinaryField(m={self.m}, modulus={self.modulus:#x},"
            f" generator={self.generator:#x})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BinaryField)
            and other.m == self.m
            and other.modulus == self.modulus
            and other.generator == self.generator
        )

    def __hash__(self) -> int:
        return hash(("BinaryField", self.m, self.modulus, self.generator))
