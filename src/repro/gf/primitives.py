"""Primitive roots and irreducible/primitive polynomials.

The Bose construction (paper §3) needs a primitive element of GF(n): for prime
``n`` that is a primitive root modulo ``n``; for ``n = 2**m`` it is a root of a
primitive polynomial, whose successive powers give the base permutation (the
appendix works n = 16 with x^4 + x^3 + x^2 + x + 1 and generator x + 1).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import FieldError
from repro.gf.polynomial import Polynomial
from repro.gf.prime import PrimeField, factorize, is_prime


def is_primitive_root(candidate: int, p: int) -> bool:
    """True if ``candidate`` generates the multiplicative group of GF(p).

    >>> is_primitive_root(3, 7)
    True
    >>> is_primitive_root(2, 7)
    False
    """
    if not is_prime(p):
        raise FieldError(f"{p} is not prime")
    candidate %= p
    if candidate == 0:
        return False
    group = p - 1
    return all(pow(candidate, group // q, p) != 1 for q in factorize(group))


def primitive_root(p: int) -> int:
    """Smallest primitive root modulo the prime ``p``.

    >>> primitive_root(7)
    3
    >>> primitive_root(13)
    2
    """
    if p == 2:
        return 1
    for candidate in range(2, p):
        if is_primitive_root(candidate, p):
            return candidate
    raise FieldError(f"no primitive root found for {p}")  # pragma: no cover


def primitive_roots(p: int) -> Iterator[int]:
    """All primitive roots modulo the prime ``p``, ascending."""
    return (c for c in range(1, p) if is_primitive_root(c, p))


def find_irreducible(p: int, degree: int) -> Polynomial:
    """Find a monic irreducible polynomial of the given degree over GF(p).

    Deterministic: scans candidate coefficient vectors in integer order so the
    same field construction is produced on every run.

    >>> find_irreducible(2, 4).coeffs
    (1, 1, 0, 0, 1)
    """
    if degree < 1:
        raise FieldError("degree must be >= 1")
    field = PrimeField(p)
    for tail in range(p ** degree):
        coeffs = []
        value = tail
        for _ in range(degree):
            coeffs.append(value % p)
            value //= p
        coeffs.append(1)
        poly = Polynomial(field, coeffs)
        if poly.is_irreducible():
            return poly
    raise FieldError(
        f"no irreducible polynomial of degree {degree} over GF({p})"
    )  # pragma: no cover


def polynomial_order(element: Polynomial, modulus: Polynomial) -> int:
    """Multiplicative order of ``element`` in GF(p^m) = GF(p)[x]/(modulus)."""
    p = element.field.order
    m = modulus.degree
    group = p ** m - 1
    reduced = element % modulus
    if reduced.is_zero():
        raise FieldError("0 has no multiplicative order")
    order = group
    for q in factorize(group):
        one = Polynomial.one(element.field)
        while order % q == 0 and reduced.pow_mod(order // q, modulus) == one:
            order //= q
    return order


def is_primitive_element(element: Polynomial, modulus: Polynomial) -> bool:
    """True if ``element`` generates the multiplicative group of GF(p^m)."""
    p = element.field.order
    return polynomial_order(element, modulus) == p ** modulus.degree - 1


def find_primitive_element(
    modulus: Polynomial, start: Optional[Polynomial] = None
) -> Polynomial:
    """Find a primitive element of GF(p^m) defined by ``modulus``.

    Scans low-weight candidates first (x, x+1, x+2, ...), matching the paper's
    appendix choice of ``x + 1`` for GF(16) with x^4+x^3+x^2+x+1.
    """
    field = modulus.field
    p = field.order
    m = modulus.degree
    for value in range(p, p ** m):
        candidate = Polynomial.from_int(field, value)
        if is_primitive_element(candidate, modulus):
            return candidate
    raise FieldError("no primitive element found")  # pragma: no cover


def element_powers(
    generator: Polynomial, modulus: Polynomial, count: Optional[int] = None
) -> List[int]:
    """Successive powers of ``generator`` in GF(p^m), as base-p integers.

    The PDDL appendix lists these for GF(16): ``1 3 5 15 14 13 8 7 9 4 12 11
    2 6 10`` for generator x+1 and modulus x^4+x^3+x^2+x+1.
    """
    p = generator.field.order
    group = p ** modulus.degree - 1
    if count is None:
        count = group
    powers = []
    current = Polynomial.one(generator.field)
    for _ in range(count):
        powers.append(current.to_int())
        current = (current * generator) % modulus
    return powers
