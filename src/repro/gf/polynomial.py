"""Dense polynomials over GF(p).

Used to build extension fields GF(p^m): irreducible polynomials define the
field, and primitive polynomials give generators whose powers enumerate the
multiplicative group (the sequence the PDDL appendix uses for n = 16).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import FieldError
from repro.gf.prime import PrimeField


class Polynomial:
    """An immutable polynomial with coefficients in GF(p).

    Coefficients are stored little-endian: ``coeffs[i]`` multiplies ``x**i``.
    Trailing zeros are normalized away; the zero polynomial has ``coeffs == ()``.

    >>> f = PrimeField(2)
    >>> p = Polynomial(f, [1, 1, 0, 1])  # 1 + x + x^3
    >>> p.degree
    3
    >>> (p * p).degree
    6
    """

    __slots__ = ("field", "coeffs")

    def __init__(self, field: PrimeField, coeffs: Sequence[int]):
        self.field = field
        trimmed = list(coeffs)
        while trimmed and trimmed[-1] == 0:
            trimmed.pop()
        for c in trimmed:
            if not 0 <= c < field.order:
                raise FieldError(f"coefficient {c} not in GF({field.order})")
        self.coeffs: Tuple[int, ...] = tuple(trimmed)

    @classmethod
    def zero(cls, field: PrimeField) -> "Polynomial":
        return cls(field, [])

    @classmethod
    def one(cls, field: PrimeField) -> "Polynomial":
        return cls(field, [1])

    @classmethod
    def x(cls, field: PrimeField) -> "Polynomial":
        return cls(field, [0, 1])

    @classmethod
    def from_int(cls, field: PrimeField, value: int) -> "Polynomial":
        """Interpret ``value`` in base ``p`` as a coefficient vector.

        This is the encoding GF(2^m) hardware uses: the integer's bits are the
        polynomial's coefficients.

        >>> Polynomial.from_int(PrimeField(2), 0b1011).coeffs
        (1, 1, 0, 1)
        """
        coeffs = []
        p = field.order
        while value:
            coeffs.append(value % p)
            value //= p
        return cls(field, coeffs)

    def to_int(self) -> int:
        """Inverse of :meth:`from_int`."""
        value = 0
        for c in reversed(self.coeffs):
            value = value * self.field.order + c
        return value

    @property
    def degree(self) -> int:
        """Degree of the polynomial; the zero polynomial has degree -1."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return not self.coeffs

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check_field(other)
        f = self.field
        longer, shorter = (self.coeffs, other.coeffs)
        if len(longer) < len(shorter):
            longer, shorter = shorter, longer
        out = list(longer)
        for i, c in enumerate(shorter):
            out[i] = f.add(out[i], c)
        return Polynomial(f, out)

    def __neg__(self) -> "Polynomial":
        f = self.field
        return Polynomial(f, [f.neg(c) for c in self.coeffs])

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        return self + (-other)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        self._check_field(other)
        if self.is_zero() or other.is_zero():
            return Polynomial.zero(self.field)
        p = self.field.order
        out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                out[i + j] = (out[i + j] + a * b) % p
        return Polynomial(self.field, out)

    def scale(self, scalar: int) -> "Polynomial":
        f = self.field
        return Polynomial(f, [f.mul(scalar, c) for c in self.coeffs])

    def divmod(self, divisor: "Polynomial") -> Tuple["Polynomial", "Polynomial"]:
        """Polynomial division with remainder.

        >>> f = PrimeField(2)
        >>> num = Polynomial(f, [0, 0, 0, 0, 1])       # x^4
        >>> den = Polynomial(f, [1, 1, 1, 1, 1])       # x^4+x^3+x^2+x+1
        >>> q, r = num.divmod(den)
        >>> r.coeffs
        (1, 1, 1, 1)
        """
        self._check_field(divisor)
        if divisor.is_zero():
            raise FieldError("polynomial division by zero")
        f = self.field
        remainder = list(self.coeffs)
        quotient = [0] * max(0, len(remainder) - len(divisor.coeffs) + 1)
        lead_inv = f.inverse(divisor.coeffs[-1])
        dlen = len(divisor.coeffs)
        while len(remainder) >= dlen:
            while remainder and remainder[-1] == 0:
                remainder.pop()
            if len(remainder) < dlen:
                break
            shift = len(remainder) - dlen
            factor = f.mul(remainder[-1], lead_inv)
            quotient[shift] = factor
            for i, c in enumerate(divisor.coeffs):
                remainder[shift + i] = f.sub(remainder[shift + i], f.mul(factor, c))
        return Polynomial(f, quotient), Polynomial(f, remainder)

    def __mod__(self, divisor: "Polynomial") -> "Polynomial":
        return self.divmod(divisor)[1]

    def __floordiv__(self, divisor: "Polynomial") -> "Polynomial":
        return self.divmod(divisor)[0]

    def pow_mod(self, exponent: int, modulus: "Polynomial") -> "Polynomial":
        """Compute ``self**exponent mod modulus`` by square-and-multiply."""
        if exponent < 0:
            raise FieldError("negative exponents are not supported here")
        result = Polynomial.one(self.field)
        base = self % modulus
        while exponent:
            if exponent & 1:
                result = (result * base) % modulus
            base = (base * base) % modulus
            exponent >>= 1
        return result

    def gcd(self, other: "Polynomial") -> "Polynomial":
        """Monic greatest common divisor."""
        a, b = self, other
        while not b.is_zero():
            a, b = b, a % b
        if a.is_zero():
            return a
        return a.scale(self.field.inverse(a.coeffs[-1]))

    def is_irreducible(self) -> bool:
        """Rabin's irreducibility test over GF(p).

        A degree-``m`` polynomial ``f`` is irreducible iff ``x**(p**m) == x
        (mod f)`` and ``gcd(f, x**(p**(m/q)) - x) == 1`` for every prime
        divisor ``q`` of ``m``.

        >>> f = PrimeField(2)
        >>> Polynomial(f, [1, 1, 1, 1, 1]).is_irreducible()  # x^4+x^3+x^2+x+1
        True
        >>> Polynomial(f, [1, 0, 0, 0, 1]).is_irreducible()  # x^4+1 = (x+1)^4
        False
        """
        from repro.gf.prime import factorize

        m = self.degree
        if m <= 0:
            return False
        if m == 1:
            return True
        p = self.field.order
        x = Polynomial.x(self.field)
        for q in factorize(m):
            h = x.pow_mod(p ** (m // q), self) - x
            if self.gcd(h).degree != 0:
                return False
        return x.pow_mod(p ** m, self) == x % self

    def _check_field(self, other: "Polynomial") -> None:
        if self.field != other.field:
            raise FieldError("polynomials over different fields")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Polynomial)
            and other.field == self.field
            and other.coeffs == self.coeffs
        )

    def __hash__(self) -> int:
        return hash((self.field, self.coeffs))

    def __repr__(self) -> str:
        if self.is_zero():
            return "Polynomial(0)"
        terms = []
        for i, c in enumerate(self.coeffs):
            if c == 0:
                continue
            if i == 0:
                terms.append(str(c))
            elif i == 1:
                terms.append(f"{c}*x" if c != 1 else "x")
            else:
                terms.append(f"{c}*x^{i}" if c != 1 else f"x^{i}")
        return "Polynomial(" + " + ".join(terms) + f" over GF({self.field.order}))"
