"""Finite-field arithmetic used by PDDL constructions.

The PDDL mapping develops a base permutation by repeated addition inside a
finite field: addition modulo ``n`` when the number of disks is prime, and
bitwise XOR (addition in GF(2^m)) when it is a power of two.  The Bose
construction of satisfactory base permutations needs primitive elements of
those fields.

Public surface:

- :class:`~repro.gf.prime.PrimeField` — GF(p) arithmetic.
- :class:`~repro.gf.binary.BinaryField` — GF(2^m) with log/antilog tables.
- :mod:`~repro.gf.polynomial` — dense polynomials over GF(p).
- :func:`~repro.gf.primitives.primitive_root` and friends.
"""

from repro.gf.binary import BinaryField
from repro.gf.extension import ExtensionField
from repro.gf.polynomial import Polynomial
from repro.gf.prime import PrimeField, is_prime
from repro.gf.primitives import (
    find_irreducible,
    is_primitive_root,
    primitive_root,
)

__all__ = [
    "BinaryField",
    "ExtensionField",
    "Polynomial",
    "PrimeField",
    "find_irreducible",
    "is_prime",
    "is_primitive_root",
    "primitive_root",
]
