"""General extension fields GF(p^m) with integer-encoded elements.

Completes the field family: :class:`~repro.gf.prime.PrimeField` covers
GF(p), :class:`~repro.gf.binary.BinaryField` the table-accelerated GF(2^m)
special case, and this class arbitrary prime powers — the fields behind
the paper's §3 remark that the Bose construction "also works when n is a
power of a prime" with addition taken "within the underlying finite field
GF(n)".  Elements are base-``p`` digit encodings of polynomials, matching
:class:`~repro.core.development.DigitDevelopment`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import FieldError
from repro.gf.polynomial import Polynomial
from repro.gf.prime import PrimeField, is_prime
from repro.gf.primitives import (
    find_irreducible,
    find_primitive_element,
    is_primitive_element,
)


class ExtensionField:
    """GF(p^m) with log/antilog tables over integer-encoded elements.

    >>> f = ExtensionField(3, 2)
    >>> f.order
    9
    >>> f.add(5, 4)   # (1,2) + (1,1) = (2,0) -> 6
    6
    >>> f.mul(f.generator, f.inverse(f.generator))
    1
    """

    def __init__(
        self,
        p: int,
        m: int,
        modulus: Optional[int] = None,
        generator: Optional[int] = None,
    ):
        if not is_prime(p):
            raise FieldError(f"{p} is not prime")
        if m < 1:
            raise FieldError(f"need m >= 1, got {m}")
        self.p = p
        self.m = m
        self.order = p**m
        self.characteristic = p
        base = PrimeField(p)
        if modulus is None:
            modulus_poly = find_irreducible(p, m)
        else:
            modulus_poly = Polynomial.from_int(base, modulus)
            if modulus_poly.degree != m or not modulus_poly.is_irreducible():
                raise FieldError(
                    f"modulus {modulus} is not an irreducible degree-{m}"
                    f" polynomial over GF({p})"
                )
        self.modulus = modulus_poly.to_int()
        if generator is None:
            gen_poly = find_primitive_element(modulus_poly)
        else:
            gen_poly = Polynomial.from_int(base, generator)
            if not is_primitive_element(gen_poly, modulus_poly):
                raise FieldError(f"{generator} is not primitive")
        self.generator = gen_poly.to_int()

        group = self.order - 1
        self._exp: List[int] = [0] * (2 * group)
        self._log: List[int] = [0] * self.order
        current = Polynomial.one(base)
        for i in range(group):
            value = current.to_int()
            self._exp[i] = value
            self._exp[i + group] = value
            self._log[value] = i
            current = (current * gen_poly) % modulus_poly

    def _check(self, *values: int) -> None:
        for v in values:
            if not 0 <= v < self.order:
                raise FieldError(f"{v} is not an element of GF({self.order})")

    def _digits(self, value: int) -> List[int]:
        digits = []
        for _ in range(self.m):
            digits.append(value % self.p)
            value //= self.p
        return digits

    def _undigits(self, digits: List[int]) -> int:
        out = 0
        for d in reversed(digits):
            out = out * self.p + d
        return out

    def add(self, a: int, b: int) -> int:
        """Digit-wise addition mod p — the PDDL development operation."""
        self._check(a, b)
        da, db = self._digits(a), self._digits(b)
        return self._undigits([(x + y) % self.p for x, y in zip(da, db)])

    def sub(self, a: int, b: int) -> int:
        self._check(a, b)
        da, db = self._digits(a), self._digits(b)
        return self._undigits([(x - y) % self.p for x, y in zip(da, db)])

    def neg(self, a: int) -> int:
        self._check(a)
        return self._undigits([(-x) % self.p for x in self._digits(a)])

    def mul(self, a: int, b: int) -> int:
        self._check(a, b)
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def inverse(self, a: int) -> int:
        self._check(a)
        if a == 0:
            raise FieldError("0 has no multiplicative inverse")
        return self._exp[self.order - 1 - self._log[a]]

    def pow(self, a: int, e: int) -> int:
        self._check(a)
        if a == 0:
            if e == 0:
                return 1
            if e < 0:
                raise FieldError("0 has no negative powers")
            return 0
        return self._exp[(self._log[a] * e) % (self.order - 1)]

    def log(self, a: int) -> int:
        self._check(a)
        if a == 0:
            raise FieldError("log(0) is undefined")
        return self._log[a]

    def generator_powers(self) -> List[int]:
        """Successive powers of the generator — the Bose ingredient."""
        return list(self._exp[: self.order - 1])

    def elements(self) -> Iterator[int]:
        return iter(range(self.order))

    def __repr__(self) -> str:
        return (
            f"ExtensionField(GF({self.p}^{self.m}), modulus={self.modulus},"
            f" generator={self.generator})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ExtensionField)
            and (other.p, other.m, other.modulus, other.generator)
            == (self.p, self.m, self.modulus, self.generator)
        )

    def __hash__(self) -> int:
        return hash(("ExtensionField", self.p, self.m, self.modulus,
                      self.generator))
