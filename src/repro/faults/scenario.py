"""Declarative fault scenarios.

A :class:`FaultScenario` is pure data: JSON-scalar fields only, frozen,
with a stable content hash — the same discipline as the runner's
experiment specs, so scenarios can key result caches and cross
``multiprocessing`` boundaries without surprises.

Fault timing comes in two flavours:

- **deterministic**: ``fault_time_ms`` pins the failure of
  ``failed_disk`` to an exact simulation time (reproduction runs);
- **stochastic**: ``mttf_hours`` draws an independent exponential
  lifetime per disk (rate ``1/MTTF``, the MTTDL models' assumption) from
  named streams seeded by ``fault_seed``; the shortest-lived disk fails.
  Seeded draws are deterministic, so these scenarios replay exactly too.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, fields
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.reliability.mttdl import exponential_lifetime_ms

#: Part of every scenario content hash; bump on semantic changes.
FAULT_SCENARIO_VERSION = 1

#: Multi-fault/media/scrub fields added after v1 shipped, with their
#: inactive defaults.  :meth:`FaultScenario.to_dict` omits them while
#: they hold these values, so every single-fault scenario hashes exactly
#: as it did before the fields existed (pinned by the scenario tests).
_V1_OPTIONAL_DEFAULTS = {
    "second_fault_time_ms": None,
    "second_failed_disk": None,
    "max_faults": 1,
    "lse_per_gb": 0.0,
    "scrub_interval_ms": None,
    "scrub_throttle_ms": 0.0,
    "transient_io_rate": 0.0,
}


@dataclass(frozen=True)
class FaultScenario:
    """One array-lifetime script: a failure plus the rebuild's behaviour.

    Exactly one of ``fault_time_ms`` (deterministic) and ``mttf_hours``
    (seeded-exponential; ``failed_disk`` is then ignored in favour of the
    draw) must be set.  ``degraded_dwell_ms`` is the delay between the
    failure and the rebuild sweep starting (detection + spare-up time);
    ``rebuild_rows`` bounds the sweep (``None`` = the whole disk);
    ``rebuild_throttle_ms`` idles each rebuild slot between steps so the
    client/rebuild interference is tunable.

    >>> FaultScenario(fault_time_ms=100.0).content_hash() == \\
    ...     FaultScenario(fault_time_ms=100.0).content_hash()
    True
    """

    failed_disk: int = 0
    fault_time_ms: Optional[float] = None
    mttf_hours: Optional[float] = None
    fault_seed: int = 0
    degraded_dwell_ms: float = 0.0
    rebuild_rows: Optional[int] = None
    rebuild_parallel: int = 1
    rebuild_throttle_ms: float = 0.0
    # Multi-fault extensions (all inactive by default; see
    # _V1_OPTIONAL_DEFAULTS for the hash-compatibility contract).
    # A scripted second whole-disk failure, and/or further stochastic
    # failures: with ``mttf_hours`` set, ``max_faults`` of the per-disk
    # lifetime draws are scheduled in time order instead of only the
    # earliest.
    second_fault_time_ms: Optional[float] = None
    second_failed_disk: Optional[int] = None
    max_faults: int = 1
    # Latent sector errors: expected errors per GB of swept capacity,
    # drawn per disk from seeded Poisson counts (see repro.faults.media).
    lse_per_gb: float = 0.0
    # Background scrubbing: a full-pass read of every live cell each
    # ``scrub_interval_ms``, throttled like the reconstructor.
    scrub_interval_ms: Optional[float] = None
    scrub_throttle_ms: float = 0.0
    # Transient I/O errors: per-operation failure probability, drawn from
    # per-disk named streams ``"{fault_seed}/transient-{disk}"`` (distinct
    # from the *persistent* latent sector errors above; recovered by the
    # controller's retry/escalation machinery, see
    # :class:`repro.array.controller.RetryPolicy`).
    transient_io_rate: float = 0.0

    def __post_init__(self):
        if (self.fault_time_ms is None) == (self.mttf_hours is None):
            raise ConfigurationError(
                "set exactly one of fault_time_ms (deterministic) and"
                " mttf_hours (seeded-exponential)"
            )
        if self.fault_time_ms is not None and self.fault_time_ms < 0:
            raise ConfigurationError(
                f"negative fault time {self.fault_time_ms}"
            )
        if self.mttf_hours is not None and self.mttf_hours <= 0:
            raise ConfigurationError(f"mttf must be > 0: {self.mttf_hours}")
        if self.failed_disk < 0:
            raise ConfigurationError(f"bad failed disk {self.failed_disk}")
        if self.degraded_dwell_ms < 0:
            raise ConfigurationError(
                f"negative degraded dwell {self.degraded_dwell_ms}"
            )
        if self.rebuild_rows is not None and self.rebuild_rows < 1:
            raise ConfigurationError(
                f"need >= 1 rebuild row, got {self.rebuild_rows}"
            )
        if self.rebuild_parallel < 1:
            raise ConfigurationError("need >= 1 rebuild slot")
        if self.rebuild_throttle_ms < 0:
            raise ConfigurationError(
                f"negative rebuild throttle {self.rebuild_throttle_ms}"
            )
        if self.second_fault_time_ms is not None:
            if self.fault_time_ms is None:
                raise ConfigurationError(
                    "a scripted second fault needs a scripted first fault"
                    " (set fault_time_ms)"
                )
            if self.second_fault_time_ms <= self.fault_time_ms:
                raise ConfigurationError(
                    f"second fault at {self.second_fault_time_ms} must land"
                    f" strictly after the first at {self.fault_time_ms}"
                )
            if self.second_failed_disk is None:
                raise ConfigurationError(
                    "a scripted second fault needs second_failed_disk"
                )
        if self.second_failed_disk is not None:
            if self.second_fault_time_ms is None:
                raise ConfigurationError(
                    "second_failed_disk needs second_fault_time_ms"
                )
            if self.second_failed_disk < 0:
                raise ConfigurationError(
                    f"bad second failed disk {self.second_failed_disk}"
                )
            if self.second_failed_disk == self.failed_disk:
                raise ConfigurationError(
                    "second failure must strike a different disk"
                )
        if self.max_faults < 1:
            raise ConfigurationError(
                f"need >= 1 fault, got max_faults={self.max_faults}"
            )
        if self.max_faults > 1 and self.mttf_hours is None:
            raise ConfigurationError(
                "max_faults > 1 draws extra failures from disk lifetimes"
                " and needs mttf_hours (script a pair with"
                " second_fault_time_ms instead)"
            )
        if self.lse_per_gb < 0:
            raise ConfigurationError(
                f"negative latent-error rate {self.lse_per_gb}"
            )
        if self.scrub_interval_ms is not None and self.scrub_interval_ms <= 0:
            raise ConfigurationError(
                f"scrub interval must be > 0, got {self.scrub_interval_ms}"
            )
        if self.scrub_throttle_ms < 0:
            raise ConfigurationError(
                f"negative scrub throttle {self.scrub_throttle_ms}"
            )
        if not 0.0 <= self.transient_io_rate < 1.0:
            raise ConfigurationError(
                "transient I/O rate must be in [0, 1), got"
                f" {self.transient_io_rate}"
            )

    # ------------------------------------------------------------------
    # Fault timing.
    # ------------------------------------------------------------------

    def draw_fault(self, n_disks: int) -> Tuple[float, int]:
        """``(time_ms, disk)`` of the scenario's failure.

        Deterministic scenarios return their pinned values; stochastic
        ones draw one exponential lifetime per disk from independent
        named streams and fail the earliest.
        """
        if self.fault_time_ms is not None:
            if not 0 <= self.failed_disk < n_disks:
                raise ConfigurationError(
                    f"failed disk {self.failed_disk} outside"
                    f" 0..{n_disks - 1}"
                )
            return self.fault_time_ms, self.failed_disk
        lifetimes = [
            exponential_lifetime_ms(
                self.mttf_hours,
                random.Random(f"{self.fault_seed}/disk-{disk}"),
            )
            for disk in range(n_disks)
        ]
        time_ms = min(lifetimes)
        return time_ms, lifetimes.index(time_ms)

    @property
    def multi_fault(self) -> bool:
        """Does this scenario schedule more than one whole-disk failure?"""
        return self.second_fault_time_ms is not None or self.max_faults > 1

    def draw_faults(self, n_disks: int) -> List[Tuple[float, int]]:
        """Every scheduled failure as ``(time_ms, disk)``, in time order.

        Deterministic scenarios return the scripted first (and optional
        second) failure; stochastic scenarios draw one exponential
        lifetime per disk and schedule the ``max_faults`` earliest.
        Equal draws break ties by disk id, so the sequence is a pure
        function of the scenario and ``n_disks``.
        """
        if self.fault_time_ms is not None:
            faults = [(self.fault_time_ms, self.failed_disk)]
            if self.second_fault_time_ms is not None:
                if not 0 <= self.second_failed_disk < n_disks:
                    raise ConfigurationError(
                        f"second failed disk {self.second_failed_disk}"
                        f" outside 0..{n_disks - 1}"
                    )
                faults.append(
                    (self.second_fault_time_ms, self.second_failed_disk)
                )
            if not 0 <= self.failed_disk < n_disks:
                raise ConfigurationError(
                    f"failed disk {self.failed_disk} outside"
                    f" 0..{n_disks - 1}"
                )
            return faults
        lifetimes = [
            (
                exponential_lifetime_ms(
                    self.mttf_hours,
                    random.Random(f"{self.fault_seed}/disk-{disk}"),
                ),
                disk,
            )
            for disk in range(n_disks)
        ]
        lifetimes.sort()
        return lifetimes[: self.max_faults]

    # ------------------------------------------------------------------
    # Serialization and hashing.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Flat JSON-able form.

        Fields added after v1 are omitted while at their inactive
        defaults, so pre-existing scenarios keep their original content
        hashes (and old serialized scenarios round-trip unchanged).
        """
        data = asdict(self)
        for name, default in _V1_OPTIONAL_DEFAULTS.items():
            if data[name] == default:
                del data[name]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultScenario":
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ConfigurationError(
                f"unknown scenario fields {sorted(unknown)}"
            )
        return cls(**data)

    def content_hash(self) -> str:
        """Stable SHA-256 over the canonical JSON of the fields."""
        payload = {"schema": FAULT_SCENARIO_VERSION}
        payload.update(self.to_dict())
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
