"""Fault injection and array lifecycle orchestration.

The paper's degraded/reconstruction/post-reconstruction results hinge on
rebuild traffic *competing* with client traffic.  This package closes the
loop: a :class:`FaultScenario` declares *when* a disk dies (a fixed
timestamp, or a seeded-exponential draw from the MTTDL parameters of
:mod:`repro.reliability`) and how the rebuild behaves (parallelism,
throttle); a :class:`FaultInjector` schedules the failure on the event
loop; an :class:`ArrayLifecycle` drives the controller through
fault-free -> degraded -> reconstruction -> post-reconstruction with
timestamped transitions.

Scenarios are pure data and content-hashable, so whole lifecycle sweeps
plug into the ``repro.runner`` cache/parallel machinery (see
``LifecycleSpec`` in :mod:`repro.runner.spec` and RUNNER.md).
"""

from repro.faults.injector import FaultInjector
from repro.faults.lifecycle import ArrayLifecycle
from repro.faults.scenario import FAULT_SCENARIO_VERSION, FaultScenario

__all__ = [
    "ArrayLifecycle",
    "FAULT_SCENARIO_VERSION",
    "FaultInjector",
    "FaultScenario",
]
