"""Fault injection and array lifecycle orchestration.

The paper's degraded/reconstruction/post-reconstruction results hinge on
rebuild traffic *competing* with client traffic.  This package closes the
loop: a :class:`FaultScenario` declares *when* a disk dies (a fixed
timestamp, or a seeded-exponential draw from the MTTDL parameters of
:mod:`repro.reliability`) and how the rebuild behaves (parallelism,
throttle); a :class:`FaultInjector` schedules the failure on the event
loop; an :class:`ArrayLifecycle` drives the controller through
fault-free -> degraded -> reconstruction -> post-reconstruction with
timestamped transitions.

Scenarios are pure data and content-hashable, so whole lifecycle sweeps
plug into the ``repro.runner`` cache/parallel machinery (see
``LifecycleSpec`` in :mod:`repro.runner.spec` and RUNNER.md).

Multi-fault campaigns build on the same pieces: scenarios can script or
draw failure *sequences*, :mod:`repro.faults.multifault` classifies a
second whole-disk failure exactly against the rebuild frontier,
:class:`MediaErrorMap` seeds latent sector errors, and a
:class:`Scrubber` finds and repairs them before they can ambush a
rebuild.
"""

from repro.faults.crash import CrashInjector
from repro.faults.failslow import FailSlowModel
from repro.faults.injector import FaultInjector
from repro.faults.lifecycle import ArrayLifecycle
from repro.faults.media import MediaErrorMap
from repro.faults.nemesis import (
    NEMESIS_SCHEDULE_VERSION,
    ActiveFaultTracker,
    NemesisEvent,
    NemesisSchedule,
)
from repro.faults.multifault import (
    SecondFailureOutcome,
    evaluate_second_failure,
    second_failure_repair_steps,
)
from repro.faults.oracle import IntegrityOracle, StripeParityModel
from repro.faults.scenario import FAULT_SCENARIO_VERSION, FaultScenario
from repro.faults.scrubber import SCRUB_ID_BASE, Scrubber

__all__ = [
    "ActiveFaultTracker",
    "ArrayLifecycle",
    "CrashInjector",
    "FAULT_SCENARIO_VERSION",
    "FailSlowModel",
    "FaultInjector",
    "FaultScenario",
    "IntegrityOracle",
    "MediaErrorMap",
    "NEMESIS_SCHEDULE_VERSION",
    "NemesisEvent",
    "NemesisSchedule",
    "SCRUB_ID_BASE",
    "Scrubber",
    "SecondFailureOutcome",
    "StripeParityModel",
    "evaluate_second_failure",
    "second_failure_repair_steps",
]
