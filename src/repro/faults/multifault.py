"""Exact loss accounting for a second whole-disk failure.

When a second spindle dies while the first failure is still being
repaired, the outcome is fully determined by the layout mapping and the
rebuild frontier — no sampling, no heuristics.  Over the swept domain of
``rows`` offsets, each non-spare cell of the first failed disk is in one
of four states when disk ``second`` dies:

- **rebuilt, copy elsewhere** — the unit survives; the stripe may have
  lost its ``second``-disk member, but that member is reconstructible
  from the k-1 survivors (which now include the rebuilt copy);
- **rebuilt, copy on the second disk** — the relocated copy just died.
  If the stripe's other members all survive the unit is *re-lost but
  recoverable* (a repeat rebuild reconstructs it again); if the stripe
  ALSO had a member on the second disk, two members are gone and both
  are unrecoverable;
- **un-rebuilt, stripe avoids the second disk** — still reconstructible
  on the fly; the normal sweep can finish it;
- **un-rebuilt, stripe touches the second disk** — two members of one
  stripe are dead: the first disk's unit *and* the second disk's member
  are both unrecoverable.  Data loss.

Cells of the second disk belonging to stripes that never touch the
first disk always have k-1 live peers, so they are recoverable and
contribute no loss.  ``lost_units`` counts every unit (data or check)
left without a surviving or reconstructible copy.

The evaluation is exact and cheap: stripe membership and relocation
targets repeat with the layout period, so one period is analysed and
the per-row classification is reused across cycles (only the rebuild
frontier varies per offset).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Container, List, Tuple

from repro.core.reconstruction import RebuildStep
from repro.errors import ConfigurationError
from repro.layouts.address import PhysicalAddress, Role


@dataclass(frozen=True)
class SecondFailureOutcome:
    """What a second whole-disk failure costs, exactly.

    ``data_loss`` is True iff at least one unit has no surviving or
    reconstructible copy; ``relost_offsets`` are first-disk offsets
    whose rebuilt copy lived on the second disk but remain recoverable
    (they must be swept again onto a fresh target); ``exposed_unrebuilt``
    counts un-rebuilt first-disk units whose stripe also lost its
    second-disk member (each such stripe loses two units).
    """

    first_disk: int
    second_disk: int
    data_loss: bool
    lost_units: int
    relost_offsets: Tuple[int, ...]
    exposed_unrebuilt: int


def _period_profile(layout, first_disk: int, second_disk: int):
    """Per-row (one period) classification of the first disk's cells.

    Returns ``(is_spare, touches_second, target_disk, target_offset)``
    lists indexed by row.  ``target_*`` is the rebuilt copy's home: the
    same-row spare cell for layouts with distributed sparing, the
    original cell on a replacement spindle otherwise.
    """
    period = layout.period
    sparing = layout.has_sparing
    is_spare: List[bool] = [False] * period
    touches: List[bool] = [False] * period
    target_disk: List[int] = [first_disk] * period
    target_offset: List[int] = list(range(period))
    for row in range(period):
        info = layout.locate(first_disk, row)
        if info.role is Role.SPARE:
            is_spare[row] = True
            continue
        members = layout.stripe_units(info.stripe).all_units()
        touches[row] = any(a.disk == second_disk for a in members)
        if sparing:
            target = layout.relocation_target(
                PhysicalAddress(first_disk, row)
            )
            target_disk[row] = target.disk
            target_offset[row] = target.offset
    return is_spare, touches, target_disk, target_offset


def evaluate_second_failure(
    layout,
    first_disk: int,
    second_disk: int,
    rebuilt: Container[int],
    rows: int,
) -> SecondFailureOutcome:
    """Classify a second failure against the rebuild frontier.

    ``rebuilt`` is the set of first-disk offsets already swept (the
    reconstructor's frontier); ``rows`` is the repair domain — the same
    row bound the rebuild sweeps, so the evaluation and the simulation
    describe the same (possibly truncated) array.
    """
    if first_disk == second_disk:
        raise ConfigurationError("second failure must strike a new disk")
    for disk in (first_disk, second_disk):
        if not 0 <= disk < layout.n:
            raise ConfigurationError(
                f"disk {disk} outside 0..{layout.n - 1}"
            )
    if rows < 1:
        raise ConfigurationError(f"need >= 1 row, got {rows}")
    is_spare, touches, target_disk, _ = _period_profile(
        layout, first_disk, second_disk
    )
    period = layout.period
    lost = 0
    exposed = 0
    relost: List[int] = []
    for offset in range(rows):
        row = offset % period
        if is_spare[row]:
            continue
        if offset in rebuilt:
            if target_disk[row] == second_disk:
                if touches[row]:
                    # Relocated copy and a sibling member both died.
                    lost += 2
                else:
                    relost.append(offset)
        elif touches[row]:
            # Stripe lost two members: the un-rebuilt unit and its
            # sibling on the second disk.
            lost += 2
            exposed += 1
    return SecondFailureOutcome(
        first_disk=first_disk,
        second_disk=second_disk,
        data_loss=lost > 0,
        lost_units=lost,
        relost_offsets=tuple(relost),
        exposed_unrebuilt=exposed,
    )


def second_failure_repair_steps(
    layout,
    first_disk: int,
    second_disk: int,
    relost_offsets: Tuple[int, ...],
    rebuilt: Container[int],
    rows: int,
) -> List[RebuildStep]:
    """The extra sweep work a *survivable* second failure creates.

    Two kinds of steps, both writable once a replacement spindle sits in
    the second disk's slot:

    - every re-lost first-disk unit is reconstructed again from its
      surviving stripe members and written back to its original spare
      target (now on the replacement);
    - every non-spare cell of the second disk is reconstructed from its
      stripe; first-disk members of those stripes are read from their
      rebuilt copies (a survivable failure guarantees they are rebuilt
      with live targets).

    Offsets the normal sweep has not reached are *not* duplicated here —
    the in-progress sweep still owns them.

    Truncated domains (``rows`` < one layout period) follow the same
    convention as the rebuild sweep: cells outside the swept domain are
    treated as intact, so a straddling stripe may read a first-disk
    member at an out-of-domain offset directly.
    """
    outcome_domain = range(rows)
    relost_set = set(relost_offsets)
    steps: List[RebuildStep] = []
    sparing = layout.has_sparing
    for offset in sorted(relost_set):
        info = layout.locate(first_disk, offset)
        members = layout.stripe_units(info.stripe).all_units()
        reads = [
            a
            for a in members
            if a.disk != first_disk and a.disk != second_disk
        ]
        steps.append(
            RebuildStep(
                lost=PhysicalAddress(first_disk, offset),
                stripe=info.stripe,
                reads=reads,
                write=layout.relocation_target(
                    PhysicalAddress(first_disk, offset)
                ),
            )
        )
    for offset in outcome_domain:
        info = layout.locate(second_disk, offset)
        if info.role is Role.SPARE:
            # Spare cells of the second disk either held a relocated
            # first-disk unit (covered by relost steps above) or were
            # still empty — nothing to rebuild in place.
            continue
        members = layout.stripe_units(info.stripe).all_units()
        reads: List[PhysicalAddress] = []
        for addr in members:
            if addr.disk == second_disk:
                continue
            if addr.disk == first_disk:
                if sparing and addr.offset in rebuilt:
                    reads.append(layout.relocation_target(addr))
                else:
                    # Replacement-spindle rebuild serves the original
                    # address once swept; un-swept first-disk members of
                    # second-disk stripes mean the failure was not
                    # survivable and this function must not be called.
                    reads.append(addr)
            else:
                reads.append(addr)
        steps.append(
            RebuildStep(
                lost=PhysicalAddress(second_disk, offset),
                stripe=info.stripe,
                reads=reads,
                write=None,
            )
        )
    return steps
