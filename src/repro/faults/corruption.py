"""Disk-originated silent corruption: lost writes, misdirected writes, bit rot.

Every fault model before this one fails *loudly*: a dead disk, a read
that errors, a latent sector that reports unreadable.  Real drives also
fail silently — the drive acks a write it never persisted (a *lost
write*), persists it at the wrong LBA (a *misdirected write*, which both
leaves the intended cell stale and clobbers an innocent victim cell),
or lets stored bits decay (*bit rot*).  In all three cases the next read
of the cell returns plausible-looking garbage with no error, which is
why end-to-end checksums and write-version metadata exist.

The simulator never models byte contents, so corruption is tracked as a
per-cell predicate: a cell is *corrupt* when its platter content no
longer matches what the controller's checksum+version metadata says it
should hold.  :class:`CorruptionModel` owns that map plus the seeded
draws that grow it and the per-kind detection/repair/silence ledger the
oracle and bench summaries report from.

Determinism contract, matching the other optional fault hooks:

- a controller with no model attached is byte-identical to one that
  never imported this module;
- a model whose rates are all zero draws nothing — per-disk RNG streams
  (``"{seed}/corrupt-{disk}"``) are created lazily, on the first draw
  that can actually fire, so attaching an inactive model keeps results
  byte-identical;
- bit rot draws all of its randomness at construction (cell choice and
  onset time per disk, from ``"{seed}/bitrot-{disk}"``); afterwards a
  cell's rot state is a pure function of the simulated clock.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.random import poisson_draw

#: Corruption kinds the model draws.
CORRUPTION_KINDS = ("lost-write", "misdirected-write", "bit-rot")

#: All kinds that can appear in the ledger: the drawn kinds plus
#: ``parity-pollution`` — parity poisoned by an undefended
#: read-modify-write whose pre-read consumed stale data.
ALL_CORRUPTION_KINDS = CORRUPTION_KINDS + ("parity-pollution",)

_EMPTY: tuple = ()


class CorruptionModel:
    """Seeded per-disk silent-corruption injector and ledger.

    ``lost_rate`` and ``misdirected_rate`` are per physical write
    operation (one draw per completed write request, from the target
    disk's named stream); ``bitrot_cells`` is the Poisson mean of decayed
    cells per disk, each with an onset drawn uniform over
    ``[0, bitrot_window_ms)``.  ``rows`` bounds the per-disk offset
    domain — misdirected victims never escape ``[0, rows)``.

    >>> model = CorruptionModel(4, 100, seed=7, lost_rate=1.0)
    >>> model.note_write(0, 10, 2, now_ms=0.0)
    'lost-write'
    >>> sorted(off for off, _ in model.corrupt_cells(0, 10, 2, 0.0))
    [10, 11]
    """

    def __init__(
        self,
        n_disks: int,
        rows: int,
        seed: object,
        lost_rate: float = 0.0,
        misdirected_rate: float = 0.0,
        bitrot_cells: float = 0.0,
        bitrot_window_ms: float = 60_000.0,
    ):
        if n_disks < 1 or rows < 1:
            raise ConfigurationError("need >= 1 disk and >= 1 row")
        for name, rate in (
            ("lost_rate", lost_rate),
            ("misdirected_rate", misdirected_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if lost_rate + misdirected_rate > 1.0:
            raise ConfigurationError(
                "lost_rate + misdirected_rate must not exceed 1.0"
            )
        if bitrot_cells < 0:
            raise ConfigurationError(
                f"negative bitrot_cells {bitrot_cells}"
            )
        if bitrot_window_ms <= 0:
            raise ConfigurationError(
                f"bitrot window must be positive, got {bitrot_window_ms}"
            )
        self.n_disks = n_disks
        self.rows = rows
        self.seed = seed
        self.lost_rate = lost_rate
        self.misdirected_rate = misdirected_rate
        #: disk -> (lost_rate, misdirected_rate) override while a
        #: nemesis corruption-burst window is open on that disk.
        self._burst: Dict[int, Tuple[float, float]] = {}
        #: (disk, offset) -> kind; membership is the corruption predicate.
        self._corrupt: Dict[Tuple[int, int], str] = {}
        self._rngs: Dict[int, random.Random] = {}
        #: (onset_ms, disk, offset), sorted; absorbed lazily by clock.
        self._bitrot_pending: List[Tuple[float, int, int]] = []
        self._bitrot_idx = 0
        if bitrot_cells > 0:
            pending = self._bitrot_pending
            for disk in range(n_disks):
                rng = random.Random(f"{seed}/bitrot-{disk}")
                count = min(poisson_draw(bitrot_cells, rng), rows)
                if count:
                    for offset in rng.sample(range(rows), count):
                        pending.append(
                            (rng.uniform(0.0, bitrot_window_ms), disk, offset)
                        )
            pending.sort()
        self.injected = {kind: 0 for kind in ALL_CORRUPTION_KINDS}
        self.detected = {kind: 0 for kind in ALL_CORRUPTION_KINDS}
        self.silent = {kind: 0 for kind in ALL_CORRUPTION_KINDS}
        self.repaired = {kind: 0 for kind in ALL_CORRUPTION_KINDS}
        self.cells_corrupted = 0

    # ------------------------------------------------------------------
    # Draw machinery.
    # ------------------------------------------------------------------

    def _rng(self, disk: int) -> random.Random:
        rng = self._rngs.get(disk)
        if rng is None:
            rng = random.Random(f"{self.seed}/corrupt-{disk}")
            self._rngs[disk] = rng
        return rng

    def _rates(self, disk: int) -> Tuple[float, float]:
        burst = self._burst.get(disk)
        if burst is not None:
            return burst
        return self.lost_rate, self.misdirected_rate

    def misdirect_target(self, offset: int, rng: random.Random) -> int:
        """The victim offset a misdirected write of ``offset`` lands on.

        Always inside ``[0, rows)`` and never ``offset`` itself when the
        disk has more than one row (property-tested).
        """
        if self.rows == 1:
            return offset
        return (offset + rng.randrange(1, self.rows)) % self.rows

    def _absorb_bitrot(self, now_ms: float) -> None:
        pending = self._bitrot_pending
        i = self._bitrot_idx
        if i >= len(pending):
            return
        while i < len(pending) and pending[i][0] <= now_ms:
            _, disk, offset = pending[i]
            i += 1
            self._mark(disk, offset, "bit-rot", count_event=True)
        self._bitrot_idx = i

    def _mark(
        self, disk: int, offset: int, kind: str, count_event: bool = False
    ) -> None:
        key = (disk, offset)
        if count_event:
            self.injected[kind] += 1
        if key not in self._corrupt:
            self._corrupt[key] = kind
            self.cells_corrupted += 1

    def _clear(self, disk: int, offset: int) -> None:
        kind = self._corrupt.pop((disk, offset), None)
        if kind is not None:
            self.repaired[kind] += 1

    # ------------------------------------------------------------------
    # Controller hooks.
    # ------------------------------------------------------------------

    def note_write(
        self, disk: int, first_offset: int, n_units: int, now_ms: float
    ) -> Optional[str]:
        """One physical write of ``n_units`` contiguous cells completed.

        Returns the drawn corruption kind, or None when the write
        persisted correctly (in which case it *repairs* any corruption
        the covered cells carried — fresh content matches fresh
        metadata).  Zero-rate models draw nothing.
        """
        self._absorb_bitrot(now_ms)
        lost, misdirected = self._rates(disk)
        outcome = None
        if lost > 0.0 or misdirected > 0.0:
            draw = self._rng(disk).random()
            if draw < lost:
                outcome = "lost-write"
            elif draw < lost + misdirected:
                outcome = "misdirected-write"
        if outcome is None:
            if self._corrupt:
                for offset in range(first_offset, first_offset + n_units):
                    self._clear(disk, offset)
            return None
        self.injected[outcome] += 1
        if outcome == "lost-write":
            # The drive acked but nothing hit the platter: every covered
            # cell now disagrees with its freshly-bumped write version.
            for offset in range(first_offset, first_offset + n_units):
                self._mark(disk, offset, "lost-write")
        else:
            # The payload landed at a perturbed address: the intended
            # cells stay stale *and* the victim run is clobbered.
            victim_first = self.misdirect_target(first_offset, self._rng(disk))
            for i in range(n_units):
                self._mark(disk, first_offset + i, "misdirected-write")
                self._mark(disk, (victim_first + i) % self.rows,
                           "misdirected-write")
        return outcome

    def corrupt_cells(
        self, disk: int, first_offset: int, n_units: int, now_ms: float
    ) -> List[Tuple[int, str]]:
        """Corrupt cells covered by a read, as ``(offset, kind)`` pairs."""
        if not self._corrupt and self._bitrot_idx >= len(
            self._bitrot_pending
        ):
            return _EMPTY  # type: ignore[return-value]
        self._absorb_bitrot(now_ms)
        corrupt = self._corrupt
        if not corrupt:
            return _EMPTY  # type: ignore[return-value]
        hits = []
        for offset in range(first_offset, first_offset + n_units):
            kind = corrupt.get((disk, offset))
            if kind is not None:
                hits.append((offset, kind))
        return hits

    def pollute(self, disk: int, offset: int) -> None:
        """An undefended RMW folded stale data into this check cell."""
        self._mark(disk, offset, "parity-pollution", count_event=True)

    def note_detected(self, kind: str) -> None:
        """Checksum/version validation caught a corrupt cell."""
        self.detected[kind] += 1

    def note_silent(self, kind: str) -> None:
        """A corrupt cell was consumed as good data — served silently."""
        self.silent[kind] += 1

    # ------------------------------------------------------------------
    # Nemesis burst windows.
    # ------------------------------------------------------------------

    def begin_burst(
        self, disk: int, lost_rate: float, misdirected_rate: float
    ) -> None:
        """Open a corruption-burst window: raised rates on one disk."""
        if not 0 <= disk < self.n_disks:
            raise ConfigurationError(f"no disk {disk}")
        if lost_rate + misdirected_rate > 1.0 or min(
            lost_rate, misdirected_rate
        ) < 0.0:
            raise ConfigurationError(
                f"bad burst rates ({lost_rate}, {misdirected_rate})"
            )
        self._burst[disk] = (lost_rate, misdirected_rate)

    def end_burst(self, disk: int) -> None:
        """Close the window: the disk returns to the base rates."""
        self._burst.pop(disk, None)

    def burst_active(self, disk: int) -> bool:
        """Is a corruption-burst window currently open on ``disk``?"""
        return disk in self._burst

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------

    @property
    def remaining(self) -> int:
        """Corrupt cells currently latent (drawn but never repaired)."""
        return len(self._corrupt)

    def report(self) -> dict:
        """JSON-able per-kind ledger for trial records."""
        return {
            "injected": dict(self.injected),
            "detected": dict(self.detected),
            "silent": dict(self.silent),
            "repaired": dict(self.repaired),
            "cells_corrupted": self.cells_corrupted,
            "remaining": self.remaining,
            "silent_total": sum(self.silent.values()),
            "detected_total": sum(self.detected.values()),
        }

    def __repr__(self) -> str:
        return (
            f"CorruptionModel(lost={self.lost_rate:g},"
            f" misdirected={self.misdirected_rate:g},"
            f" corrupt_cells={self.remaining})"
        )
