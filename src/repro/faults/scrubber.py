"""Periodic background media scrubbing.

Latent sector errors are only dangerous when they are *discovered during
a rebuild* — the stripe then has no redundancy left to recover the bad
cell from.  A scrub pass reads every cell of every live disk while the
array still has full redundancy, and rewrites any cell that reads back
bad (sector reallocation), clearing the latent error before it can
ambush a rebuild.

The scrubber is deliberately gentle: one outstanding read at a time,
disk-major order, an optional idle ``throttle_ms`` between operations,
and it pauses whenever the array is degraded or rebuilding (a wounded
array needs its bandwidth; the rebuild sweep is already reading
everything that matters).  Scrub traffic shares the disk model with
client and rebuild traffic, so its cost shows up in the same statistics.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional

from repro.array.controller import ArrayController
from repro.array.raidops import ArrayMode
from repro.errors import ConfigurationError
from repro.faults.media import MediaErrorMap
from repro.layouts import Role

#: Access ids at or above this value are scrub traffic (rebuild traffic
#: starts at 1 << 40; scrub ids never collide with either space).
SCRUB_ID_BASE = 1 << 41

#: Modes in which scrubbing runs; anywhere else it pauses and re-checks.
_SCRUB_MODES = (ArrayMode.FAULT_FREE, ArrayMode.POST_RECONSTRUCTION)


class Scrubber:
    """Find-and-repair sweep over every live cell, every ``interval_ms``.

    ``rows`` bounds the sweep per disk (``None`` = the controller's full
    period count — use the same bound as the rebuild domain so scrub and
    rebuild describe the same array).  ``on_repair(disk, offset)`` fires
    for every latent error the scrub fixes.  ``id_base`` overrides the
    access-id block — a harness that replaces a stalled scrubber (e.g.
    after a crash wiped its in-flight reads) hands each generation a
    distinct block so their ids never collide.

    ``audit=True`` turns the sweep into a *parity-audit* scrub: every
    cell read is additionally verified against the controller's
    checksum+write-version metadata (via the attached
    :class:`~repro.faults.corruption.CorruptionModel`), which is exactly
    the per-member check of the stripe's parity equation — a cell whose
    content disagrees with its metadata is a stripe whose equation
    cannot balance.  A mismatched cell is reconstructed from its stripe
    peers and rewritten (repair traffic on the engine clock, like every
    other scrub operation); a mismatch in a stripe with no redundancy
    left is counted unrepairable.
    """

    def __init__(
        self,
        controller: ArrayController,
        media: MediaErrorMap,
        interval_ms: float,
        throttle_ms: float = 0.0,
        rows: Optional[int] = None,
        on_repair: Optional[Callable[[int, int], None]] = None,
        id_base: Optional[int] = None,
        audit: bool = False,
    ):
        if interval_ms <= 0:
            raise ConfigurationError(
                f"scrub interval must be > 0, got {interval_ms}"
            )
        if throttle_ms < 0:
            raise ConfigurationError(
                f"negative scrub throttle {throttle_ms}"
            )
        total_rows = (
            rows
            if rows is not None
            else controller.periods * controller.layout.period
        )
        if total_rows < 1:
            raise ConfigurationError(f"need >= 1 scrub row, got {rows}")
        self.controller = controller
        self.media = media
        self.interval_ms = interval_ms
        self.throttle_ms = throttle_ms
        self.rows = total_rows
        self.on_repair = on_repair
        self.passes_completed = 0
        self.cells_read = 0
        self.found = 0
        self.repaired = 0
        self.audit = audit
        #: Parity-audit accounting: each audited cell is one member-level
        #: verification of its stripe's parity equation.
        self.stripes_audited = 0
        self.audit_mismatches = 0
        self.audit_repairs = 0
        self.audit_unrepairable = 0
        self._running = False
        self._stopped = False
        self._disk = 0
        self._offset = 0
        self._next_id = SCRUB_ID_BASE if id_base is None else id_base

    def start(self) -> None:
        """Arm the scrubber: the first pass begins one interval from now."""
        if self._running or self._stopped:
            raise ConfigurationError("scrubber already started")
        self._running = True
        self.controller.engine.schedule(self.interval_ms, self._begin_pass)

    def stop(self) -> None:
        """Halt permanently (campaign end, or terminal data loss)."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Pass machinery.
    # ------------------------------------------------------------------

    def _begin_pass(self) -> None:
        if self._stopped:
            return
        self._disk = 0
        self._offset = 0
        self._next_cell()

    def _next_cell(self) -> None:
        if self._stopped:
            return
        mode = self.controller.mode
        if mode is ArrayMode.DATA_LOSS:
            self._stopped = True
            return
        if mode not in _SCRUB_MODES:
            # The array is wounded; cede the bandwidth and look again in
            # one interval, resuming from the current position.
            self.controller.engine.schedule(
                self.interval_ms, self._next_cell
            )
            return
        while self._disk < self.controller.layout.n:
            if self.controller.servers[self._disk].failed:
                self._disk += 1
                self._offset = 0
                continue
            if self._offset >= self.rows:
                self._disk += 1
                self._offset = 0
                self._next_id += 1  # new id per disk sweep
                continue
            disk, offset = self._disk, self._offset
            self._offset += 1
            self.cells_read += 1
            self.controller.submit_raw(
                disk,
                offset,
                False,
                self._next_id,
                partial(self._read_done, disk, offset),
                tag="scrub-read",
            )
            return
        self.passes_completed += 1
        self.controller.engine.schedule(self.interval_ms, self._begin_pass)

    def _read_done(self, disk: int, offset: int) -> None:
        if self._stopped:
            return
        if (
            self.controller.mode not in _SCRUB_MODES
            or self.controller.servers[disk].failed
        ):
            # The array was wounded while this read was in flight; do not
            # issue the rewrite — pause via the normal path instead.
            self._advance()
            return
        if self.audit:
            corruption = self.controller.corruption
            if corruption is not None:
                self.stripes_audited += 1
                hits = corruption.corrupt_cells(
                    disk, offset, 1, self.controller.engine.now
                )
                if hits:
                    self.audit_mismatches += 1
                    kind = hits[0][1]
                    corruption.note_detected(kind)
                    oracle = self.controller.oracle
                    if oracle is not None:
                        oracle.note_disk_corruption(kind, detected=True)
                    members = self.controller._stripe_peers(disk, offset)
                    if members is not None:
                        self.controller._reconstruct_sector(
                            disk,
                            offset,
                            members,
                            self._audit_repair_done,
                        )
                        return
                    role = self.controller._plan_layout.locate(
                        disk, offset
                    ).role
                    if role is Role.SPARE:
                        # Spare space holds no data: a plain rewrite
                        # refreshes content and metadata together.
                        self.controller.submit_raw(
                            disk,
                            offset,
                            True,
                            self._next_id,
                            self._audit_repair_done,
                            tag="scrub-rewrite",
                        )
                        return
                    self.audit_unrepairable += 1
        if self.media.is_bad(disk, offset):
            self.found += 1
            self.controller.submit_raw(
                disk,
                offset,
                True,
                self._next_id,
                partial(self._rewrite_done, disk, offset),
                tag="scrub-rewrite",
            )
            return
        self._advance()

    def _rewrite_done(self, disk: int, offset: int) -> None:
        if self.media.repair(disk, offset):
            self.repaired += 1
            if self.on_repair is not None:
                self.on_repair(disk, offset)
        self._advance()

    def _audit_repair_done(self) -> None:
        """The peer-reconstruction rewrite of a mismatched cell landed
        (the rewrite itself clears the corruption-map entry)."""
        self.audit_repairs += 1
        self._advance()

    def _advance(self) -> None:
        if self._stopped:
            return
        if self.throttle_ms > 0:
            self.controller.engine.schedule(
                self.throttle_ms, self._next_cell
            )
        else:
            self._next_cell()

    def to_dict(self) -> dict:
        data = {
            "passes_completed": self.passes_completed,
            "cells_read": self.cells_read,
            "found": self.found,
            "repaired": self.repaired,
        }
        if self.audit:
            data["stripes_audited"] = self.stripes_audited
            data["audit_mismatches"] = self.audit_mismatches
            data["audit_repairs"] = self.audit_repairs
            data["audit_unrepairable"] = self.audit_unrepairable
        return data


def aggregate_scrub(records: List[dict]) -> Optional[dict]:
    """Sum per-trial ``"scrub"`` counter blocks across trial records.

    Returns ``None`` when no trial scrubbed, so summaries of sweeps
    that never ran a scrubber stay byte-identical with their committed
    bench baselines (same conditional idiom as
    ``aggregate_io_recovery``).  Keys are the union of the per-trial
    blocks — the parity-audit counters only appear when some trial
    audited — plus ``trials_reporting``.
    """
    blocks = [r.get("scrub") for r in records]
    blocks = [b for b in blocks if b]
    if not blocks:
        return None
    totals: dict = {}
    for block in blocks:
        for key, value in block.items():
            totals[key] = totals.get(key, 0) + value
    return {
        "trials_reporting": len(blocks),
        **{key: totals[key] for key in sorted(totals)},
    }
