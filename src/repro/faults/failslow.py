"""Fail-slow (gray failure) fault model: a disk that degrades, not dies.

Every other fault in the repo is fail-stop — the disk either serves at
full speed or not at all.  Real arrays mostly see the other thing: a
spindle that silently falls to a fraction of its service rate (media
retries, firmware recalibration storms, vibration) while still
completing every request.  :class:`FailSlowModel` attaches to one
:class:`~repro.disk.drive.DiskDrive` (like ``TransientErrorModel``) and
inflates the mechanical service-time components of each operation by a
time-varying multiplier.

Determinism contract, matching the other optional fault hooks:

- a drive with no model attached (the default) is byte-identical to one
  that never imported this module;
- an attached model draws randomness only at *construction* (the
  optional drawn onset), never on the service hot path — the per-service
  multiplier is a pure function of the simulated clock;
- before onset (and after the optional ``duration_ms`` window closes)
  the multiplier is exactly 1.0 and the drive's arithmetic is untouched.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ConfigurationError

#: Legal shapes for the slowdown once it is active.
PROFILES = ("constant", "ramp", "intermittent")


class FailSlowModel:
    """Per-spindle service-time inflation with a scripted or drawn onset.

    ``multiplier`` is the peak inflation factor (>= 1.0).  The onset is
    either scripted (``onset_ms``) or drawn once at construction from a
    seeded stream uniform over ``[0, onset_window_ms)``; ``duration_ms``
    optionally ends the episode (the disk heals).  Profiles:

    - ``constant``: the full multiplier from onset;
    - ``ramp``: linear climb from 1.0 to the multiplier over ``ramp_ms``
      — the classic slowly-degrading spindle;
    - ``intermittent``: a deterministic duty cycle (``period_ms``,
      ``duty`` fraction slow) — recalibration storms that come and go.

    >>> model = FailSlowModel(5.0, onset_ms=100.0)
    >>> model.multiplier_at(50.0), model.multiplier_at(150.0)
    (1.0, 5.0)
    """

    def __init__(
        self,
        multiplier: float,
        onset_ms: Optional[float] = None,
        *,
        profile: str = "constant",
        ramp_ms: float = 0.0,
        period_ms: float = 0.0,
        duty: float = 0.5,
        duration_ms: Optional[float] = None,
        seed: object = None,
        onset_window_ms: Optional[float] = None,
    ):
        if multiplier < 1.0:
            raise ConfigurationError(
                f"fail-slow multiplier must be >= 1.0, got {multiplier}"
            )
        if profile not in PROFILES:
            raise ConfigurationError(
                f"unknown fail-slow profile {profile!r}; expected one of"
                f" {PROFILES}"
            )
        if profile == "ramp" and ramp_ms <= 0:
            raise ConfigurationError(
                f"ramp profile needs ramp_ms > 0, got {ramp_ms}"
            )
        if profile == "intermittent":
            if period_ms <= 0:
                raise ConfigurationError(
                    f"intermittent profile needs period_ms > 0,"
                    f" got {period_ms}"
                )
            if not 0.0 < duty <= 1.0:
                raise ConfigurationError(
                    f"intermittent duty must be in (0, 1], got {duty}"
                )
        if duration_ms is not None and duration_ms <= 0:
            raise ConfigurationError(
                f"fail-slow duration must be positive, got {duration_ms}"
            )
        if onset_ms is None:
            if onset_window_ms is None:
                onset_ms = 0.0
            else:
                if onset_window_ms <= 0:
                    raise ConfigurationError(
                        f"onset window must be positive,"
                        f" got {onset_window_ms}"
                    )
                # The model's only randomness: one construction-time draw
                # from a named stream, so trial replay is exact.
                onset_ms = random.Random(seed).uniform(0.0, onset_window_ms)
        elif onset_ms < 0:
            raise ConfigurationError(
                f"fail-slow onset must be >= 0, got {onset_ms}"
            )
        self.multiplier = multiplier
        self.onset_ms = onset_ms
        self.profile = profile
        self.ramp_ms = ramp_ms
        self.period_ms = period_ms
        self.duty = duty
        self.duration_ms = duration_ms
        #: Operations whose service time was actually inflated.
        self.applications = 0

    def active_at(self, now_ms: float) -> bool:
        """True while the episode window covers ``now_ms``."""
        if now_ms < self.onset_ms:
            return False
        if self.duration_ms is not None:
            return now_ms < self.onset_ms + self.duration_ms
        return True

    def multiplier_at(self, now_ms: float) -> float:
        """The inflation factor for an operation starting at ``now_ms``.

        Pure function of the clock — no randomness, no state mutation —
        so serial and worker execution see identical service times.
        """
        if not self.active_at(now_ms):
            return 1.0
        since = now_ms - self.onset_ms
        if self.profile == "constant":
            return self.multiplier
        if self.profile == "ramp":
            if since >= self.ramp_ms:
                return self.multiplier
            return 1.0 + (self.multiplier - 1.0) * (since / self.ramp_ms)
        # intermittent: slow for the first `duty` fraction of each period
        phase = (since % self.period_ms) / self.period_ms
        return self.multiplier if phase < self.duty else 1.0

    def scale(self, now_ms: float) -> float:
        """``multiplier_at`` plus application accounting (drive hook)."""
        m = self.multiplier_at(now_ms)
        if m != 1.0:
            self.applications += 1
        return m

    def report(self) -> dict:
        """JSON-able summary for trial records."""
        data = {
            "multiplier": self.multiplier,
            "onset_ms": self.onset_ms,
            "profile": self.profile,
            "applications": self.applications,
        }
        if self.profile == "ramp":
            data["ramp_ms"] = self.ramp_ms
        elif self.profile == "intermittent":
            data["period_ms"] = self.period_ms
            data["duty"] = self.duty
        if self.duration_ms is not None:
            data["duration_ms"] = self.duration_ms
        return data

    def __repr__(self) -> str:
        return (
            f"FailSlowModel(x{self.multiplier:g} {self.profile}"
            f" @{self.onset_ms:g}ms)"
        )
