"""Scheduling disk failures on the event loop.

A :class:`FaultInjector` resolves a scenario's fault timing against a
concrete array size, then arms engine events that fire the failures
mid-simulation — the piece that lets rebuild traffic *compete* with live
client traffic instead of failures being applied statically before the
run.  Multi-fault scenarios arm every drawn failure at once; the
lifecycle decides what each subsequent failure means when it lands.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.faults.scenario import FaultScenario
from repro.sim.engine import SimulationEngine

#: ``on_failure(disk, time_ms)`` — the failure landed.
FailureCallback = Callable[[int, float], None]


class FaultInjector:
    """Arms a scenario's failure sequence on the engine.

    >>> from repro.sim.engine import SimulationEngine
    >>> engine = SimulationEngine()
    >>> hits = []
    >>> injector = FaultInjector(
    ...     engine,
    ...     FaultScenario(fault_time_ms=5.0, failed_disk=3),
    ...     n_disks=13,
    ...     on_failure=lambda disk, t: hits.append((disk, t)),
    ... )
    >>> injector.arm()
    >>> engine.run()
    1
    >>> hits
    [(3, 5.0)]
    """

    def __init__(
        self,
        engine: SimulationEngine,
        scenario: FaultScenario,
        n_disks: int,
        on_failure: FailureCallback,
    ):
        self.engine = engine
        self.scenario = scenario
        self.on_failure = on_failure
        self.faults: List[Tuple[float, int]] = scenario.draw_faults(n_disks)
        # First-failure view, kept for single-fault callers.
        self.fault_time_ms, self.fault_disk = self.faults[0]
        self.fired_ms: Optional[float] = None
        self.fired_count = 0
        self._armed = False

    def arm(self) -> None:
        """Schedule every drawn failure; call once, before the run.

        Double-arming (or arming after a failure already fired) is a
        configuration bug in the caller, not a simulation outcome, so it
        raises :class:`ConfigurationError` with the offending state named.
        """
        if self._armed:
            raise ConfigurationError(
                f"fault injector for scenario"
                f" {self.scenario.content_hash()[:12]} is already armed;"
                " arm() must be called exactly once"
            )
        if self.fired_count:
            raise ConfigurationError(
                f"cannot arm: {self.fired_count} failure(s) already fired"
                " (build a fresh injector for a new run)"
            )
        if self.fault_time_ms < self.engine.now:
            raise SimulationError(
                f"fault time {self.fault_time_ms} already in the past"
                f" (now = {self.engine.now})"
            )
        self._armed = True
        for time_ms, disk in self.faults:
            self.engine.schedule_at(time_ms, partial(self._fire, disk))

    def _fire(self, disk: int) -> None:
        if self.fired_ms is None:
            self.fired_ms = self.engine.now
        self.fired_count += 1
        self.on_failure(disk, self.engine.now)

    @property
    def fired(self) -> bool:
        return self.fired_ms is not None
