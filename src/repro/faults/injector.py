"""Scheduling disk failures on the event loop.

A :class:`FaultInjector` resolves a scenario's fault timing against a
concrete array size, then arms one engine event that fires the failure
mid-simulation — the piece that lets rebuild traffic *compete* with live
client traffic instead of failures being applied statically before the
run.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.faults.scenario import FaultScenario
from repro.sim.engine import SimulationEngine

#: ``on_failure(disk, time_ms)`` — the failure landed.
FailureCallback = Callable[[int, float], None]


class FaultInjector:
    """Arms one scenario failure on the engine.

    >>> from repro.sim.engine import SimulationEngine
    >>> engine = SimulationEngine()
    >>> hits = []
    >>> injector = FaultInjector(
    ...     engine,
    ...     FaultScenario(fault_time_ms=5.0, failed_disk=3),
    ...     n_disks=13,
    ...     on_failure=lambda disk, t: hits.append((disk, t)),
    ... )
    >>> injector.arm()
    >>> engine.run()
    1
    >>> hits
    [(3, 5.0)]
    """

    def __init__(
        self,
        engine: SimulationEngine,
        scenario: FaultScenario,
        n_disks: int,
        on_failure: FailureCallback,
    ):
        self.engine = engine
        self.scenario = scenario
        self.on_failure = on_failure
        self.fault_time_ms, self.fault_disk = scenario.draw_fault(n_disks)
        self.fired_ms: Optional[float] = None
        self._armed = False

    def arm(self) -> None:
        """Schedule the failure; call once, before (or during) the run."""
        if self._armed:
            raise SimulationError("fault already armed")
        if self.fault_time_ms < self.engine.now:
            raise SimulationError(
                f"fault time {self.fault_time_ms} already in the past"
                f" (now = {self.engine.now})"
            )
        self._armed = True
        self.engine.schedule_at(self.fault_time_ms, self._fire)

    def _fire(self) -> None:
        self.fired_ms = self.engine.now
        self.on_failure(self.fault_disk, self.engine.now)

    @property
    def fired(self) -> bool:
        return self.fired_ms is not None
