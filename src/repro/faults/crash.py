"""Controller crash / power-loss injection.

A crash halts the array mid-plan: every scheduled engine event vanishes
(the electronics lost power — seeks in progress never complete and no
callback fires), every in-flight write becomes a *torn write* whose
stripes may be parity-inconsistent, and all queued operations are gone.
What survives is exactly what real NVRAM survives: the dirty-stripe
journal, the media state, and the platters themselves.

:class:`CrashInjector` fires in one of three ways, exactly one of which
must be configured:

* ``at_time_ms`` — scripted: crash at a fixed simulation time.
* ``at_boundary`` — scripted: crash at the Nth write-plan phase
  boundary observed across all in-flight accesses (boundary 0 is the
  first time any access finishes a phase).  This is the surgical mode
  the property/regression tests use to place the crash *between* a
  write's data and parity phases.
* ``seed`` — drawn: the boundary index is drawn from the named stream
  ``"{seed}/crash"`` over ``range(max_boundary)``, so campaigns get
  reproducible but varied crash placement.

After firing, :attr:`torn_stripes` holds the simulator's omniscient set
of stripes the torn writes had touched — the ground truth a
:class:`~repro.array.resync.Resynchronizer` is measured against.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.array.controller import ArrayController
from repro.errors import ConfigurationError, SimulationError


class CrashInjector:
    """Crashes one controller at a scripted or drawn instant."""

    def __init__(
        self,
        controller: ArrayController,
        at_time_ms: Optional[float] = None,
        at_boundary: Optional[int] = None,
        seed: Optional[int] = None,
        max_boundary: int = 64,
        on_crash: Optional[Callable[["CrashInjector"], None]] = None,
    ):
        configured = sum(
            x is not None for x in (at_time_ms, at_boundary, seed)
        )
        if configured != 1:
            raise ConfigurationError(
                "configure exactly one of at_time_ms, at_boundary, seed"
                f" (got {configured})"
            )
        if at_time_ms is not None and at_time_ms < 0:
            raise ConfigurationError(f"negative crash time {at_time_ms}")
        if at_boundary is not None and at_boundary < 0:
            raise ConfigurationError(
                f"negative crash boundary {at_boundary}"
            )
        if max_boundary < 1:
            raise ConfigurationError(
                f"max_boundary must be >= 1, got {max_boundary}"
            )
        self.controller = controller
        self.at_time_ms = at_time_ms
        self.on_crash = on_crash
        if seed is not None:
            rng = random.Random(f"{seed}/crash")
            self.at_boundary: Optional[int] = rng.randrange(max_boundary)
        else:
            self.at_boundary = at_boundary
        self.boundaries_seen = 0
        self.fired = False
        self.crashed_at_ms: Optional[float] = None
        self.torn_accesses = 0
        self.torn_stripes: List[int] = []
        self.dropped_events = 0
        self._armed = False

    def arm(self) -> None:
        """Install the trigger (schedule the time, or hook boundaries)."""
        if self._armed:
            raise SimulationError("crash injector already armed")
        self._armed = True
        if self.at_time_ms is not None:
            self.controller.engine.schedule_at(self.at_time_ms, self._fire)
        else:
            self.controller.on_phase_boundary = self._boundary

    def _boundary(self, access, phase: int, total_phases: int) -> None:
        if self.fired:
            return
        boundary = self.boundaries_seen
        self.boundaries_seen += 1
        if boundary == self.at_boundary:
            self._fire()

    def _fire(self) -> None:
        if self.fired:
            return
        self.fired = True
        controller = self.controller
        controller.on_phase_boundary = None
        self.crashed_at_ms = controller.engine.now
        # Power loss first: no scheduled completion survives.  Then tear
        # the controller's volatile state (in-flight plans, queues).
        self.dropped_events = controller.engine.clear_pending()
        torn = controller.crash()
        self.torn_accesses = torn["accesses"]
        self.torn_stripes = torn["stripes"]
        if self.on_crash is not None:
            self.on_crash(self)

    def to_dict(self) -> dict:
        return {
            "fired": self.fired,
            "crashed_at_ms": self.crashed_at_ms,
            "boundary": self.at_boundary,
            "boundaries_seen": self.boundaries_seen,
            "torn_accesses": self.torn_accesses,
            "torn_stripes": list(self.torn_stripes),
            "dropped_events": self.dropped_events,
        }
