"""Seeded latent sector errors (LSEs).

A latent error is a cell that reads back bad but is only *discovered*
when something reads it — a background scrub pass, or worse, the rebuild
sweep of a degraded array (at which point the stripe has no redundancy
left and the unit is gone).  The map draws a Poisson number of bad cells
per disk from the scenario's per-GB rate and seed, so campaigns replay
exactly; repairs (a scrub rewrite, or any write that overwrites the
cell) clear entries and are counted.
"""

from __future__ import annotations

import random
from typing import Dict, Set

from repro.errors import ConfigurationError

# The sampler moved to repro.sim.random so the open-loop arrival code can
# share it; re-exported here because callers and tests import it from
# this module.  The small-lambda draw sequence is byte-identical to the
# original in-module implementation (regression-pinned).
from repro.sim.random import poisson_draw

__all__ = ["MediaErrorMap", "poisson_draw"]


class MediaErrorMap:
    """Per-disk sets of bad offsets, with discovery/repair accounting.

    >>> m = MediaErrorMap({0: {3, 5}})
    >>> m.is_bad(0, 3), m.is_bad(0, 4)
    (True, False)
    >>> m.repair(0, 3)
    True
    >>> m.is_bad(0, 3), m.remaining
    (False, 1)
    """

    def __init__(self, bad: Dict[int, Set[int]]):
        self._bad: Dict[int, Set[int]] = {
            disk: set(offsets) for disk, offsets in bad.items() if offsets
        }
        self.seeded = sum(len(s) for s in self._bad.values())
        self.injected = 0
        self.discovered = 0
        self.repaired = 0
        self.overwritten = 0
        self._seen: Set[tuple] = set()

    @classmethod
    def from_rate(
        cls,
        n_disks: int,
        rows: int,
        row_kb: int,
        per_gb: float,
        seed: object,
    ) -> "MediaErrorMap":
        """Draw per-disk errors over a ``rows``-cell domain.

        Each disk's error count is Poisson with mean ``per_gb`` times the
        swept capacity in GB; offsets are sampled without replacement.
        Streams are named per disk, so the draw is independent of disk
        order and stable under ``n_disks`` growth.
        """
        if n_disks < 1 or rows < 1 or row_kb < 1:
            raise ConfigurationError("need positive disks/rows/row size")
        if per_gb < 0:
            raise ConfigurationError(f"negative error rate {per_gb}")
        gb_per_disk = rows * row_kb / (1024.0 * 1024.0)
        lam = per_gb * gb_per_disk
        bad: Dict[int, Set[int]] = {}
        for disk in range(n_disks):
            rng = random.Random(f"{seed}/lse-{disk}")
            count = min(poisson_draw(lam, rng), rows)
            if count:
                bad[disk] = set(rng.sample(range(rows), count))
        return cls(bad)

    def inject(self, disk: int, offset: int) -> bool:
        """Grow a latent error mid-run (an LSE burst); True if new.

        Re-injecting a cell that was already repaired makes it bad again
        and re-arms discovery accounting for it.
        """
        if disk < 0 or offset < 0:
            raise ConfigurationError(
                f"bad LSE injection target ({disk}, {offset})"
            )
        offsets = self._bad.setdefault(disk, set())
        if offset in offsets:
            return False
        offsets.add(offset)
        self._seen.discard((disk, offset))
        self.injected += 1
        return True

    def is_bad(self, disk: int, offset: int) -> bool:
        """Does a read of this cell fail?  Discovery is counted once."""
        bad = offset in self._bad.get(disk, ())
        if bad:
            key = (disk, offset)
            if key not in self._seen:
                self._seen.add(key)
                self.discovered += 1
        return bad

    def repair(self, disk: int, offset: int) -> bool:
        """A scrub rewrite fixed the cell; True if it was bad."""
        offsets = self._bad.get(disk)
        if offsets and offset in offsets:
            offsets.discard(offset)
            self.repaired += 1
            return True
        return False

    def clear(self, disk: int, offset: int) -> bool:
        """Any write overwrites the cell (sector reallocation)."""
        offsets = self._bad.get(disk)
        if offsets and offset in offsets:
            offsets.discard(offset)
            self.overwritten += 1
            return True
        return False

    @property
    def remaining(self) -> int:
        return sum(len(s) for s in self._bad.values())

    def to_dict(self) -> dict:
        data = {
            "seeded": self.seeded,
            "discovered": self.discovered,
            "repaired": self.repaired,
            "overwritten": self.overwritten,
            "remaining": self.remaining,
        }
        if self.injected:
            data["injected"] = self.injected
        return data
