"""Shadow-content integrity oracle: did the array silently corrupt data?

The simulator never models byte contents, so "corruption" needs a proxy
that is cheap, exact, and layout-independent.  The proxy is a
**generation counter** per logical data unit: every committed client
write bumps the written units to fresh generations, and a stripe's
parity is modeled as the *sum* of its data units' generations — sums
compose under read-modify-write deltas exactly like XOR parity composes
under data deltas, so parity-consistency questions about real arrays map
one-to-one onto integer identities here.

Two cooperating models live in this module:

:class:`IntegrityOracle`
    The *online* oracle a simulation attaches to an
    :class:`~repro.array.controller.ArrayController`.  It observes write
    begin/commit, crash-torn writes, on-the-fly reconstructions, rebuild
    steps, and resync repairs, and counts **silent corruption events**:
    any time the array serves or rebuilds data through a parity chain
    that a torn write left untrustworthy.  It is deliberately
    conservative at crash time (every stripe a torn write touched is
    suspect until resynced — a delta-based small write over garbage
    parity yields garbage parity, so completion alone never clears
    suspicion); campaigns and lifecycle runs check
    ``verify()["corruption_events"] == 0`` after every trial.

:class:`StripeParityModel`
    The *pure* per-operation shadow used by the crash property tests: it
    executes :class:`~repro.array.raidops.AccessPlan` write operations
    one at a time against explicit stored-generation state, so a crash
    can be placed at any phase boundary (or inside a phase, after any
    subset of its operations) and parity consistency checked exactly.
    The resync semantics it replays are shared with the simulator via
    :func:`repro.array.resync.classify_stripe`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.array.raidops import (
    AccessPlan,
    ArrayMode,
    RebuiltPredicate,
    plan_access,
)
from repro.errors import SimulationError
from repro.layouts.base import Layout

#: Per-oracle cap on retained corruption detail records (counters are
#: exact regardless).
_MAX_DETAIL = 32


class IntegrityOracle:
    """Online write-hole detector for one simulated array."""

    def __init__(self, layout: Layout):
        self.layout = layout
        self._next_gen = 0
        #: unit -> generation physically on disk (committed writes only).
        self.stored: Dict[int, int] = {}
        #: unit -> last generation the client was *acknowledged*.
        self.committed: Dict[int, int] = {}
        #: access_id -> {unit: new generation} for in-flight writes.
        self._pending: Dict[int, Dict[int, int]] = {}
        #: stripes whose parity a torn write may have left inconsistent.
        self.suspect: Set[int] = set()
        self.writes_begun = 0
        self.writes_committed = 0
        self.torn_writes = 0
        self.reconstructed_reads = 0
        self.rebuild_checks = 0
        self.escalation_checks = 0
        self.resynced_stripes = 0
        self.corruption_count = 0
        self.corruption_detail: List[dict] = []
        #: Disk-originated corruption (lost/misdirected writes, bit rot)
        #: classified per kind: detected-and-repaired consumptions are
        #: the checksum defense working; silent ones served garbage.
        self.disk_corruption_detected: Dict[str, int] = {}
        self.disk_corruption_silent: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Write lifecycle (controller hooks).
    # ------------------------------------------------------------------

    def begin_write(
        self, access_id: int, first_unit: int, unit_count: int
    ) -> None:
        gens: Dict[int, int] = {}
        gen = self._next_gen
        for unit in range(first_unit, first_unit + unit_count):
            gen += 1
            gens[unit] = gen
        self._next_gen = gen
        self._pending[access_id] = gens
        self.writes_begun += 1

    def commit_write(self, access_id: int) -> None:
        gens = self._pending.pop(access_id, None)
        if gens is None:
            return
        self.stored.update(gens)
        self.committed.update(gens)
        self.writes_committed += 1

    def tear_write(self, access_id: int) -> None:
        """A crash interrupted this write mid-plan: its stripes are
        suspect until resync recomputes their parity from data.  The
        client never saw a completion, so old *or* new data is an
        acceptable outcome per unit — only the parity chain is at risk.
        """
        gens = self._pending.pop(access_id, None)
        if gens is None:
            return
        self.torn_writes += 1
        stripe_of = self.layout.stripe_of_data_unit
        for unit in gens:
            self.suspect.add(stripe_of(unit))

    def drop_pending(self) -> None:
        """Forget in-flight *read* bookkeeping after a crash (no-op for
        the generation state — reads hold none)."""

    # ------------------------------------------------------------------
    # Danger-path checks.
    # ------------------------------------------------------------------

    def check_reconstructed_read(self, unit: int) -> None:
        """A degraded read is reconstructing ``unit`` from survivors +
        parity right now; garbage parity means garbage data served as
        good — the silent corruption this oracle exists to catch."""
        self.reconstructed_reads += 1
        stripe = self.layout.stripe_of_data_unit(unit)
        if stripe in self.suspect:
            self._corrupt("reconstructed-read", stripe=stripe, unit=unit)

    def check_rebuild_step(self, stripe: int, lost_is_data: bool) -> None:
        """A rebuild step regenerated a lost unit of ``stripe``.  A lost
        *data* unit is rebuilt from parity, so untrustworthy parity is
        written back as if it were the data — silent and persistent.  A
        lost *parity* unit is recomputed from data alone, which is safe
        (and in fact repairs the stripe)."""
        self.rebuild_checks += 1
        if not lost_is_data:
            self.note_resync(stripe, count=False)
            return
        if stripe in self.suspect:
            self._corrupt("rebuild", stripe=stripe)

    def check_escalated_reconstruction(self, stripe: int) -> None:
        """Transient-error escalation rebuilt a sector from its stripe."""
        self.escalation_checks += 1
        if stripe in self.suspect:
            self._corrupt("escalated-reconstruction", stripe=stripe)

    def note_disk_corruption(self, kind: str, detected: bool) -> None:
        """A corrupt cell (disk-originated, not a write hole) was
        consumed by a read.  ``detected`` means the checksum/version
        defense caught it before delivery and repair is under way —
        that is the defense working as designed.  An undetected
        consumption served garbage as good data: a silent corruption
        event, counted with the write-hole events in
        ``corruption_events``."""
        if detected:
            self.disk_corruption_detected[kind] = (
                self.disk_corruption_detected.get(kind, 0) + 1
            )
        else:
            self.disk_corruption_silent[kind] = (
                self.disk_corruption_silent.get(kind, 0) + 1
            )
            self._corrupt("disk-" + kind)

    def note_resync(self, stripe: int, count: bool = True) -> None:
        """Resync recomputed (or rebuild regenerated) this stripe's
        parity from its data: the write hole is closed for it."""
        if count:
            self.resynced_stripes += 1
        self.suspect.discard(stripe)

    def _corrupt(self, kind: str, **detail) -> None:
        self.corruption_count += 1
        if len(self.corruption_detail) < _MAX_DETAIL:
            record = {"kind": kind}
            record.update(detail)
            self.corruption_detail.append(record)

    # ------------------------------------------------------------------
    # End-of-trial verification.
    # ------------------------------------------------------------------

    def verify(self, failed_disk: Optional[int] = None) -> dict:
        """The per-trial integrity report (checked after every trial).

        ``corruption_events`` must be zero for a trial to be silently
        consistent.  ``at_risk_stripes`` counts suspect stripes whose
        parity chain currently includes ``failed_disk`` — not yet a
        served corruption, but one degraded read away from it.
        """
        at_risk = 0
        if failed_disk is not None and self.suspect:
            for stripe in self.suspect:
                units = self.layout.stripe_units(stripe)
                if any(a.disk == failed_disk for a in units.all_units()):
                    at_risk += 1
        report = {
            "writes_begun": self.writes_begun,
            "writes_committed": self.writes_committed,
            "torn_writes": self.torn_writes,
            "reconstructed_reads": self.reconstructed_reads,
            "rebuild_checks": self.rebuild_checks,
            "escalation_checks": self.escalation_checks,
            "resynced_stripes": self.resynced_stripes,
            "suspect_stripes": len(self.suspect),
            "at_risk_stripes": at_risk,
            "corruption_events": self.corruption_count,
            "corruption_detail": list(self.corruption_detail),
        }
        # Disk-corruption classification appears only when such events
        # occurred, so reports from corruption-free runs (and their
        # pinned baselines) are byte-identical to pre-defense ones.
        if self.disk_corruption_detected or self.disk_corruption_silent:
            report["disk_corruption"] = {
                "detected_and_repaired": dict(
                    sorted(self.disk_corruption_detected.items())
                ),
                "silent": dict(sorted(self.disk_corruption_silent.items())),
            }
        return report


# ----------------------------------------------------------------------
# Pure per-operation shadow model (property tests, resync unit tests).
# ----------------------------------------------------------------------


class StripeParityModel:
    """Omniscient stored-state shadow of one array's data and parity.

    ``stored[unit]`` is the generation physically on disk for a logical
    data unit (0 if never written); ``parity[stripe]`` is the value
    physically in the stripe's check cell (0 initially — the sum of the
    all-zero initial generations, so a fresh array is consistent).

    >>> from repro.layouts import make_layout
    >>> model = StripeParityModel(make_layout("raid5", 5, 5))
    >>> write = model.plan_write(0, 4)
    >>> write.apply_all(); model.is_consistent(0)
    True
    """

    def __init__(self, layout: Layout):
        self.layout = layout
        self.stored: Dict[int, int] = {}
        self.parity: Dict[int, int] = {}
        self._next_gen = 0

    def expected_parity(self, stripe: int) -> int:
        stored = self.stored
        return sum(
            stored.get(unit, 0)
            for unit in self.layout.data_units_of_stripe(stripe)
        )

    def is_consistent(self, stripe: int) -> bool:
        """Does the stored parity satisfy the parity equation?"""
        return self.parity.get(stripe, 0) == self.expected_parity(stripe)

    def resync(self, stripe: int) -> None:
        """Recompute parity from stored data (what resync's read-all +
        rewrite-parity does); consistent by construction afterwards."""
        self.parity[stripe] = self.expected_parity(stripe)

    def reconstruct(self, stripe: int, unit: int) -> int:
        """The value a degraded read would regenerate for ``unit`` from
        parity minus the surviving data — equals ``stored[unit]`` iff
        the stripe is consistent."""
        others = sum(
            self.stored.get(u, 0)
            for u in self.layout.data_units_of_stripe(stripe)
            if u != unit
        )
        return self.parity.get(stripe, 0) - others

    def plan_write(
        self,
        first_unit: int,
        unit_count: int,
        mode: ArrayMode = ArrayMode.FAULT_FREE,
        failed_disk: Optional[int] = None,
        rebuilt: Optional[RebuiltPredicate] = None,
    ) -> "PlannedWrite":
        """Plan a client write against the current stored state."""
        return PlannedWrite(
            self, first_unit, unit_count, mode, failed_disk, rebuilt
        )


class PlannedWrite:
    """One write plan plus the physical meaning of each of its writes.

    ``apply_ops`` executes any subset of the plan's operations against
    the model — the crash property tests use this to tear the plan at
    every phase boundary and after arbitrary partial phases.
    """

    def __init__(
        self,
        model: StripeParityModel,
        first_unit: int,
        unit_count: int,
        mode: ArrayMode,
        failed_disk: Optional[int],
        rebuilt: Optional[RebuiltPredicate],
    ):
        layout = model.layout
        self.model = model
        self.plan: AccessPlan = plan_access(
            layout,
            first_unit,
            unit_count,
            True,
            mode=mode,
            failed_disk=failed_disk,
            rebuilt=rebuilt,
        )
        units = range(first_unit, first_unit + unit_count)
        gen = model._next_gen
        self.new_gens: Dict[int, int] = {}
        for unit in units:
            gen += 1
            self.new_gens[unit] = gen
        model._next_gen = gen
        self.stripes: List[int] = sorted(
            {layout.stripe_of_data_unit(u) for u in units}
        )
        # Physical cell -> logical meaning, covering redirected (spare)
        # targets too, so any mode's write ops resolve.
        meanings: Dict[Tuple[int, int], Tuple[str, int]] = {}
        redirect = (
            failed_disk is not None and layout.has_sparing
        )
        for unit in units:
            addr = layout.data_unit_address(unit)
            meanings[(addr.disk, addr.offset)] = ("data", unit)
            if redirect and addr.disk == failed_disk:
                target = layout.relocation_target(addr)
                meanings[(target.disk, target.offset)] = ("data", unit)
        for stripe in self.stripes:
            for addr in layout.stripe_units(stripe).check:
                meanings[(addr.disk, addr.offset)] = ("parity", stripe)
                if redirect and addr.disk == failed_disk:
                    target = layout.relocation_target(addr)
                    meanings[(target.disk, target.offset)] = (
                        "parity",
                        stripe,
                    )
        self._meanings = meanings
        # Parity intent per stripe.  A plan that pre-reads the stripe's
        # check cell is delta-based (small / forced-small write): the
        # controller adds the written units' data delta to *whatever
        # parity it read* — faithfully propagating pre-existing garbage.
        # Plans that do not read parity recompute it from data.
        delta_stripes: Set[int] = set()
        if len(self.plan.phases) == 2:
            for op in self.plan.phases[0]:
                meaning = meanings.get((op.disk, op.offset))
                if meaning is not None and meaning[0] == "parity":
                    delta_stripes.add(meaning[1])
        self.planned_parity: Dict[int, int] = {}
        for stripe in self.stripes:
            if stripe in delta_stripes:
                delta = sum(
                    self.new_gens[u] - model.stored.get(u, 0)
                    for u in layout.data_units_of_stripe(stripe)
                    if u in self.new_gens
                )
                self.planned_parity[stripe] = (
                    model.parity.get(stripe, 0) + delta
                )
            else:
                self.planned_parity[stripe] = sum(
                    self.new_gens.get(u, model.stored.get(u, 0))
                    for u in layout.data_units_of_stripe(stripe)
                )

    def apply_ops(self, ops) -> None:
        """Execute write operations (reads are inert) against the model."""
        model = self.model
        for op in ops:
            if not op.is_write:
                continue
            meaning = self._meanings.get((op.disk, op.offset))
            if meaning is None:
                raise SimulationError(
                    f"write op {op} has no meaning in this plan"
                )
            kind, ident = meaning
            if kind == "data":
                model.stored[ident] = self.new_gens[ident]
            else:
                model.parity[ident] = self.planned_parity[ident]

    def apply_phases(self, count: int) -> None:
        """Execute the first ``count`` phases completely."""
        for phase in self.plan.phases[:count]:
            self.apply_ops(phase)

    def apply_all(self) -> None:
        self.apply_phases(len(self.plan.phases))
