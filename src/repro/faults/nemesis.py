"""Seeded composition of every fault the simulator can inject.

PRs 2-5 each test one fault mechanism in isolation — whole-disk
failures, controller crashes, latent sector errors, transient I/O
storms, scrubbing.  The space where write-hole and parity-consistency
bugs actually hide is their *composition*: a crash during a rebuild
during an LSE burst with scrubbing off.  A :class:`NemesisSchedule` is a
seeded, replayable plan over that space — the storage-sim analogue of a
Jepsen/YDB nemesis: faults are drawn up front, applied under legality
rules, and tracked as active/healed so no composition the hardware
could not produce (two concurrent crashes, a third concurrent storm) is
ever injected.

Two legality layers:

- **static** (:meth:`NemesisSchedule.validate`): the drawn plan itself
  is well-formed — times ordered and inside the horizon, distinct
  failure disks, in-range burst cells, non-overlapping storm and
  scrub-off windows, crashes spaced wider than the restart path;
- **dynamic** (the trial executor): a drawn event can still be illegal
  *at fire time* because earlier faults changed the world (a failure
  landing mid-crash-recovery, anything after terminal data loss).  Such
  events are skipped with a recorded reason, never silently dropped —
  the skip list is part of the trial's deterministic record.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Bump when the schedule grammar changes incompatibly.
NEMESIS_SCHEDULE_VERSION = 1

#: Every event kind a schedule may contain.
EVENT_KINDS = (
    "disk-failure",
    "crash",
    "lse-burst",
    "transient-storm",
    "scrub-off",
    "failslow",
    "corruption-burst",
)

#: Kinds that occupy a window (carry ``duration_ms``); the rest are
#: instantaneous (a crash *begins* a fault that heals at resync time).
_WINDOW_KINDS = ("transient-storm", "scrub-off", "failslow", "corruption-burst")


@dataclass(frozen=True)
class NemesisEvent:
    """One planned fault.

    Which optional fields are set depends on ``kind``:

    - ``disk-failure``: ``disk``
    - ``crash``: nothing (restart delay is a trial knob)
    - ``lse-burst``: ``cells`` — ``((disk, offset), ...)``
    - ``transient-storm``: ``rate`` and ``duration_ms``
    - ``scrub-off``: ``duration_ms``
    - ``failslow``: ``disk``, ``multiplier`` and ``duration_ms`` (a
      gray failure: the disk serves every request at ``multiplier``
      times its healthy service time for the window, then heals)
    - ``corruption-burst``: ``disk``, ``rate`` and ``duration_ms`` (a
      silent-corruption window: for its duration each physical write to
      the disk is lost with probability ``rate`` and misdirected with
      probability ``rate / 2``, then the drive returns to honesty —
      what it already corrupted stays corrupt)
    """

    time_ms: float
    kind: str
    disk: Optional[int] = None
    cells: Optional[Tuple[Tuple[int, int], ...]] = None
    rate: Optional[float] = None
    duration_ms: Optional[float] = None
    multiplier: Optional[float] = None

    def to_dict(self) -> dict:
        data: dict = {"time_ms": self.time_ms, "kind": self.kind}
        if self.disk is not None:
            data["disk"] = self.disk
        if self.cells is not None:
            data["cells"] = [list(cell) for cell in self.cells]
        if self.rate is not None:
            data["rate"] = self.rate
        if self.duration_ms is not None:
            data["duration_ms"] = self.duration_ms
        if self.multiplier is not None:
            data["multiplier"] = self.multiplier
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "NemesisEvent":
        cells = data.get("cells")
        return cls(
            time_ms=data["time_ms"],
            kind=data["kind"],
            disk=data.get("disk"),
            cells=(
                tuple((c[0], c[1]) for c in cells)
                if cells is not None
                else None
            ),
            rate=data.get("rate"),
            duration_ms=data.get("duration_ms"),
            multiplier=data.get("multiplier"),
        )


@dataclass(frozen=True)
class NemesisSchedule:
    """A replayable fault plan: events in time order, plus provenance.

    Build with :meth:`draw` (seeded, always legal) or :meth:`from_events`
    (scripted compositions for targeted tests — validated, so a test
    cannot accidentally script an impossible world).

    >>> a = NemesisSchedule.draw(7, n_disks=13, rows=26)
    >>> b = NemesisSchedule.draw(7, n_disks=13, rows=26)
    >>> a == b and a.content_hash() == b.content_hash()
    True
    """

    events: Tuple[NemesisEvent, ...]
    seed: Optional[int] = None
    horizon_ms: float = 20000.0
    min_crash_gap_ms: float = 500.0

    @classmethod
    def draw(
        cls,
        seed: int,
        n_disks: int,
        rows: int,
        horizon_ms: float = 20000.0,
        max_disk_failures: int = 2,
        max_crashes: int = 2,
        max_lse_bursts: int = 2,
        max_storms: int = 1,
        max_scrub_windows: int = 1,
        storm_rate: float = 0.02,
        min_crash_gap_ms: float = 500.0,
        max_failslow: int = 0,
        failslow_multiplier: float = 5.0,
        max_corruption_bursts: int = 0,
        corruption_rate: float = 0.05,
    ) -> "NemesisSchedule":
        """Draw a legal schedule from a named stream of ``seed``.

        Always includes at least one disk failure (a nemesis trial with
        no failure tests nothing); every other fault class draws a count
        from zero up to its cap.  Draw order is fixed — failures,
        crashes, bursts, storms, scrub windows, fail-slow windows,
        corruption-burst windows — so a seed replays the identical
        schedule regardless of caller.  The fail-slow and
        corruption-burst draw blocks are skipped entirely at their
        default zero caps (not even a zero-count draw), so schedules
        drawn before those kinds existed replay byte-identically.
        """
        if n_disks < 2 or rows < 1:
            raise ConfigurationError("need >= 2 disks and >= 1 row")
        if horizon_ms <= 0:
            raise ConfigurationError(f"bad horizon {horizon_ms}")
        if not 1 <= max_disk_failures <= n_disks:
            raise ConfigurationError(
                f"disk-failure cap {max_disk_failures} outside"
                f" [1, {n_disks}]"
            )
        if not 0.0 < storm_rate < 1.0:
            raise ConfigurationError(f"storm rate {storm_rate} not in (0,1)")
        rng = random.Random(f"{seed}/nemesis")
        events: List[NemesisEvent] = []

        n_failures = rng.randint(1, max_disk_failures)
        for disk in rng.sample(range(n_disks), n_failures):
            events.append(
                NemesisEvent(
                    time_ms=rng.uniform(0.02, 0.6) * horizon_ms,
                    kind="disk-failure",
                    disk=disk,
                )
            )

        crash_times: List[float] = sorted(
            rng.uniform(0.05, 0.8) * horizon_ms
            for _ in range(rng.randint(0, max_crashes))
        )
        last = -min_crash_gap_ms
        for t in crash_times:
            if t - last < min_crash_gap_ms:
                continue  # too close to the previous crash's restart path
            events.append(NemesisEvent(time_ms=t, kind="crash"))
            last = t

        for _ in range(rng.randint(0, max_lse_bursts)):
            t = rng.uniform(0.0, 0.7) * horizon_ms
            n_cells = rng.randint(1, min(3, rows * n_disks))
            cells = set()
            while len(cells) < n_cells:
                cells.add((rng.randrange(n_disks), rng.randrange(rows)))
            events.append(
                NemesisEvent(
                    time_ms=t, kind="lse-burst", cells=tuple(sorted(cells))
                )
            )

        windows: List[Tuple[float, float]] = []

        def place_window(lo: float, hi: float) -> Optional[Tuple[float, float]]:
            start = rng.uniform(0.0, 0.7) * horizon_ms
            duration = rng.uniform(lo, hi) * horizon_ms
            end = start + duration
            for s, e in windows:
                if start < e and s < end:
                    return None  # overlaps an earlier window; drop it
            windows.append((start, end))
            return start, duration

        for _ in range(rng.randint(0, max_storms)):
            placed = place_window(0.05, 0.15)
            if placed is not None:
                events.append(
                    NemesisEvent(
                        time_ms=placed[0],
                        kind="transient-storm",
                        rate=storm_rate,
                        duration_ms=placed[1],
                    )
                )

        windows = []  # scrub windows only exclude each other
        for _ in range(rng.randint(0, max_scrub_windows)):
            placed = place_window(0.1, 0.3)
            if placed is not None:
                events.append(
                    NemesisEvent(
                        time_ms=placed[0],
                        kind="scrub-off",
                        duration_ms=placed[1],
                    )
                )

        if max_failslow > 0:
            if failslow_multiplier <= 1.0:
                raise ConfigurationError(
                    f"fail-slow multiplier {failslow_multiplier} must"
                    f" exceed 1.0"
                )
            # One window per drawn disk: a spindle degrades once per
            # trial, which keeps per-disk overlap impossible by
            # construction.
            n_slow = rng.randint(0, min(max_failslow, n_disks))
            for disk in rng.sample(range(n_disks), n_slow):
                start = rng.uniform(0.05, 0.5) * horizon_ms
                duration = rng.uniform(0.2, 0.4) * horizon_ms
                events.append(
                    NemesisEvent(
                        time_ms=start,
                        kind="failslow",
                        disk=disk,
                        duration_ms=duration,
                        multiplier=failslow_multiplier,
                    )
                )

        if max_corruption_bursts > 0:
            if not 0.0 < corruption_rate <= 0.5:
                raise ConfigurationError(
                    f"corruption rate {corruption_rate} not in (0, 0.5]"
                )
            # Like fail-slow: at most one window per drawn disk, so
            # per-disk overlap is impossible by construction.
            n_bursts = rng.randint(0, min(max_corruption_bursts, n_disks))
            for disk in rng.sample(range(n_disks), n_bursts):
                start = rng.uniform(0.05, 0.5) * horizon_ms
                duration = rng.uniform(0.15, 0.35) * horizon_ms
                events.append(
                    NemesisEvent(
                        time_ms=start,
                        kind="corruption-burst",
                        disk=disk,
                        rate=corruption_rate,
                        duration_ms=duration,
                    )
                )

        schedule = cls(
            events=tuple(
                sorted(events, key=lambda e: (e.time_ms, e.kind))
            ),
            seed=seed,
            horizon_ms=horizon_ms,
            min_crash_gap_ms=min_crash_gap_ms,
        )
        schedule.validate(n_disks, rows)
        return schedule

    @classmethod
    def from_events(
        cls,
        events: List[NemesisEvent],
        n_disks: int,
        rows: int,
        horizon_ms: float = 20000.0,
        min_crash_gap_ms: float = 500.0,
    ) -> "NemesisSchedule":
        """A scripted schedule (targeted regression tests); validated."""
        schedule = cls(
            events=tuple(
                sorted(events, key=lambda e: (e.time_ms, e.kind))
            ),
            seed=None,
            horizon_ms=horizon_ms,
            min_crash_gap_ms=min_crash_gap_ms,
        )
        schedule.validate(n_disks, rows)
        return schedule

    def validate(self, n_disks: int, rows: int) -> None:
        """Static legality; raises ``ConfigurationError`` on any breach."""
        failed_disks = set()
        last_crash: Optional[float] = None
        storm_end = -1.0
        scrub_end = -1.0
        failslow_end: Dict[int, float] = {}
        burst_end: Dict[int, float] = {}
        last_time = 0.0
        for event in self.events:
            if event.kind not in EVENT_KINDS:
                raise ConfigurationError(
                    f"unknown nemesis event kind {event.kind!r}"
                )
            if not 0.0 <= event.time_ms < self.horizon_ms:
                raise ConfigurationError(
                    f"{event.kind} at {event.time_ms}ms outside"
                    f" [0, {self.horizon_ms})"
                )
            if event.time_ms < last_time:
                raise ConfigurationError("events out of time order")
            last_time = event.time_ms
            if (event.duration_ms is not None) != (
                event.kind in _WINDOW_KINDS
            ):
                raise ConfigurationError(
                    f"{event.kind} duration mismatch"
                )
            if event.duration_ms is not None and event.duration_ms <= 0:
                raise ConfigurationError(
                    f"{event.kind} window must be positive"
                )
            if event.kind == "disk-failure":
                if event.disk is None or not 0 <= event.disk < n_disks:
                    raise ConfigurationError(
                        f"failure disk {event.disk} outside"
                        f" [0, {n_disks})"
                    )
                if event.disk in failed_disks:
                    raise ConfigurationError(
                        f"disk {event.disk} fails twice"
                    )
                failed_disks.add(event.disk)
            elif event.kind == "crash":
                if (
                    last_crash is not None
                    and event.time_ms - last_crash < self.min_crash_gap_ms
                ):
                    raise ConfigurationError(
                        f"crashes {last_crash}ms and {event.time_ms}ms"
                        f" closer than {self.min_crash_gap_ms}ms"
                    )
                last_crash = event.time_ms
            elif event.kind == "lse-burst":
                if not event.cells:
                    raise ConfigurationError("empty LSE burst")
                for disk, offset in event.cells:
                    if not (0 <= disk < n_disks and 0 <= offset < rows):
                        raise ConfigurationError(
                            f"burst cell ({disk}, {offset}) outside the"
                            f" {n_disks}x{rows} domain"
                        )
            elif event.kind == "transient-storm":
                if event.rate is None or not 0.0 < event.rate < 1.0:
                    raise ConfigurationError(
                        f"storm rate {event.rate} not in (0, 1)"
                    )
                if event.time_ms < storm_end:
                    raise ConfigurationError("overlapping storms")
                storm_end = event.time_ms + event.duration_ms
            elif event.kind == "scrub-off":
                if event.time_ms < scrub_end:
                    raise ConfigurationError(
                        "overlapping scrub-off windows"
                    )
                scrub_end = event.time_ms + event.duration_ms
            elif event.kind == "failslow":
                if event.disk is None or not 0 <= event.disk < n_disks:
                    raise ConfigurationError(
                        f"fail-slow disk {event.disk} outside"
                        f" [0, {n_disks})"
                    )
                if event.multiplier is None or event.multiplier <= 1.0:
                    raise ConfigurationError(
                        f"fail-slow multiplier {event.multiplier} must"
                        f" exceed 1.0"
                    )
                if event.time_ms < failslow_end.get(event.disk, -1.0):
                    raise ConfigurationError(
                        f"overlapping fail-slow windows on disk"
                        f" {event.disk}"
                    )
                failslow_end[event.disk] = (
                    event.time_ms + event.duration_ms
                )
            elif event.kind == "corruption-burst":
                if event.disk is None or not 0 <= event.disk < n_disks:
                    raise ConfigurationError(
                        f"corruption-burst disk {event.disk} outside"
                        f" [0, {n_disks})"
                    )
                if event.rate is None or not 0.0 < event.rate <= 0.5:
                    raise ConfigurationError(
                        f"corruption-burst rate {event.rate} not in"
                        f" (0, 0.5]"
                    )
                if event.time_ms < burst_end.get(event.disk, -1.0):
                    raise ConfigurationError(
                        f"overlapping corruption-burst windows on disk"
                        f" {event.disk}"
                    )
                burst_end[event.disk] = (
                    event.time_ms + event.duration_ms
                )

    def to_dict(self) -> dict:
        data: dict = {
            "schema": NEMESIS_SCHEDULE_VERSION,
            "horizon_ms": self.horizon_ms,
            "min_crash_gap_ms": self.min_crash_gap_ms,
            "events": [event.to_dict() for event in self.events],
        }
        if self.seed is not None:
            data["seed"] = self.seed
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "NemesisSchedule":
        if data.get("schema") != NEMESIS_SCHEDULE_VERSION:
            raise ConfigurationError(
                f"unsupported nemesis schedule schema {data.get('schema')}"
            )
        return cls(
            events=tuple(
                NemesisEvent.from_dict(e) for e in data["events"]
            ),
            seed=data.get("seed"),
            horizon_ms=data["horizon_ms"],
            min_crash_gap_ms=data["min_crash_gap_ms"],
        )

    def content_hash(self) -> str:
        """Stable SHA-256 over the canonical JSON of the plan."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ActiveFaultTracker:
    """Begin/heal bookkeeping for live faults (the YDB nemesis pattern).

    Every injected fault *begins* and later *heals* (instantaneous
    faults do both at once); the tracker answers "is a fault of this
    kind live right now?" for the dynamic legality checks and keeps the
    full history for the trial record.

    >>> t = ActiveFaultTracker()
    >>> token = t.begin("crash", 10.0)
    >>> t.is_active("crash")
    True
    >>> t.heal(token, 25.0)
    >>> t.is_active("crash"), t.history[0]["healed_ms"]
    (False, 25.0)
    """

    def __init__(self) -> None:
        self.history: List[dict] = []
        self._active: Dict[int, int] = {}  # token -> history index
        self._next_token = 0

    def begin(
        self, kind: str, at_ms: float, detail: Optional[str] = None
    ) -> int:
        token = self._next_token
        self._next_token += 1
        entry = {"kind": kind, "begun_ms": at_ms, "healed_ms": None}
        if detail is not None:
            entry["detail"] = detail
        self._active[token] = len(self.history)
        self.history.append(entry)
        return token

    def heal(self, token: int, at_ms: float) -> None:
        index = self._active.pop(token, None)
        if index is None:
            raise ConfigurationError(f"unknown or healed fault {token}")
        self.history[index]["healed_ms"] = at_ms

    def record(
        self, kind: str, at_ms: float, detail: Optional[str] = None
    ) -> None:
        """An instantaneous fault: begun and healed at the same instant."""
        self.heal(self.begin(kind, at_ms, detail), at_ms)

    def is_active(self, kind: str) -> bool:
        return any(
            self.history[i]["kind"] == kind for i in self._active.values()
        )

    def active_kinds(self) -> List[str]:
        return sorted(
            {self.history[i]["kind"] for i in self._active.values()}
        )

    def to_dict(self) -> dict:
        return {"active": self.active_kinds(), "history": self.history}
