"""The array lifecycle state machine.

Drives one controller through the full arc the paper's evaluation spans
piecewise: **fault-free** until the scenario's failure lands, **degraded**
while the failure is unhandled (the detection/dwell window),
**reconstruction** while the background sweep rebuilds lost units into
spare space under live client load, and **post-reconstruction** once the
sweep completes.  Every transition is timestamped; hooks fire on each
transition and on each completed rebuild step, which is what the
lifecycle experiment's mode histograms and progress timelines attach to.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.array.controller import ArrayController
from repro.array.raidops import ArrayMode
from repro.array.reconstructor import Reconstructor
from repro.errors import SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.scenario import FaultScenario

#: ``on_transition(mode, time_ms)`` fires as the array enters ``mode``.
TransitionCallback = Callable[[ArrayMode, float], None]

#: Transition log entry: ``(mode value, time_ms)``.
Transition = Tuple[str, float]


class ArrayLifecycle:
    """fault-free -> degraded -> reconstruction -> post-reconstruction.

    Construct around a fresh (fault-free) controller, then :meth:`arm`;
    the scenario's failure, the rebuild start after the degraded dwell,
    and the flip to post-reconstruction all happen on the engine's clock
    while client traffic keeps flowing.
    """

    def __init__(
        self,
        controller: ArrayController,
        scenario: FaultScenario,
        on_transition: Optional[TransitionCallback] = None,
        on_rebuild_step: Optional[Callable[[Reconstructor], None]] = None,
    ):
        if controller.mode is not ArrayMode.FAULT_FREE:
            raise SimulationError(
                f"lifecycle needs a fault-free array,"
                f" got {controller.mode.value}"
            )
        self.controller = controller
        self.scenario = scenario
        self.on_transition = on_transition
        self.on_rebuild_step = on_rebuild_step
        self.injector: Optional[FaultInjector] = None
        self.reconstructor: Optional[Reconstructor] = None
        self.transitions: List[Transition] = [
            (ArrayMode.FAULT_FREE.value, controller.engine.now)
        ]

    @property
    def mode(self) -> ArrayMode:
        return self.controller.mode

    @property
    def complete(self) -> bool:
        """Did the array reach the post-reconstruction regime?

        Checked against the transition log, not the controller mode:
        a layout without sparing finishes its rebuild onto a replacement
        spindle and the controller returns to fault-free, but the
        lifecycle still passed through every regime.
        """
        return any(
            mode == ArrayMode.POST_RECONSTRUCTION.value
            for mode, _ in self.transitions
        )

    def arm(self) -> FaultInjector:
        """Resolve the scenario's fault and schedule it on the engine."""
        if self.injector is not None:
            raise SimulationError("lifecycle already armed")
        self.injector = FaultInjector(
            self.controller.engine,
            self.scenario,
            self.controller.layout.n,
            self._on_failure,
        )
        self.injector.arm()
        return self.injector

    def mode_at(self, time_ms: float) -> str:
        """Mode value in force at ``time_ms`` (from the transition log)."""
        current = self.transitions[0][0]
        for mode, t in self.transitions:
            if t > time_ms:
                break
            current = mode
        return current

    # ------------------------------------------------------------------
    # Transition machinery.
    # ------------------------------------------------------------------

    def _record(self, mode: ArrayMode) -> None:
        now = self.controller.engine.now
        self.transitions.append((mode.value, now))
        if self.on_transition is not None:
            self.on_transition(mode, now)

    def _on_failure(self, disk: int, now_ms: float) -> None:
        self.controller.fail_disk(disk)
        self._record(ArrayMode.DEGRADED)
        self.controller.engine.schedule(
            self.scenario.degraded_dwell_ms, self._start_rebuild
        )

    def _start_rebuild(self) -> None:
        recon = Reconstructor(
            self.controller,
            parallel_steps=self.scenario.rebuild_parallel,
            rows=self.scenario.rebuild_rows,
            throttle_ms=self.scenario.rebuild_throttle_ms,
            on_finished=self._on_rebuilt,
            on_step=self.on_rebuild_step,
            # Layouts without distributed sparing rebuild onto a
            # replacement spindle instead of spare cells.
            allow_replacement=True,
        )
        self.reconstructor = recon
        # Flip to reconstruction mode *before* the first step issues so
        # client plans consult the (initially empty) rebuild frontier.
        self.controller.enter_reconstruction(recon.is_rebuilt)
        self._record(ArrayMode.RECONSTRUCTION)
        recon.start()

    def _on_rebuilt(self, duration_ms: float) -> None:
        self._record(ArrayMode.POST_RECONSTRUCTION)
