"""The array lifecycle state machine.

Drives one controller through the full arc the paper's evaluation spans
piecewise: **fault-free** until the scenario's failure lands, **degraded**
while the failure is unhandled (the detection/dwell window),
**reconstruction** while the background sweep rebuilds lost units into
spare space under live client load, and **post-reconstruction** once the
sweep completes.  Every transition is timestamped; hooks fire on each
transition and on each completed rebuild step, which is what the
lifecycle experiment's mode histograms and progress timelines attach to.

Multi-fault scenarios extend the arc.  A *subsequent* whole-disk failure
is classified exactly against the layout mapping and the rebuild
frontier (:mod:`repro.faults.multifault`):

- if any stripe loses two members, the array enters the terminal
  **data-loss** regime — the sweep aborts, accesses stop being planned,
  and the loss is accounted (never a crash, never silent);
- a survivable mid-rebuild hit installs a replacement spindle in the
  second disk's slot and folds the extra repair work (re-lost units,
  the second disk's cells) into the same running sweep;
- a failure *after* a completed distributed-sparing rebuild starts a
  fresh degraded/reconstruction cycle against the relocated mapping
  (:class:`~repro.layouts.relocated.RelocatedView`), rebuilding onto a
  replacement spindle since the spare space is spent.

An unreadable latent sector discovered by a rebuild read is handled the
same way: the stripe being rebuilt has no redundancy left, so the unit
is unrecoverable and the array declares data loss.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.array.controller import ArrayController
from repro.array.raidops import ArrayMode
from repro.array.reconstructor import Reconstructor
from repro.core.reconstruction import RebuildStep
from repro.errors import SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.media import MediaErrorMap
from repro.faults.multifault import (
    evaluate_second_failure,
    second_failure_repair_steps,
)
from repro.faults.scenario import FaultScenario
from repro.layouts.address import PhysicalAddress

#: ``on_transition(mode, time_ms)`` fires as the array enters ``mode``.
TransitionCallback = Callable[[ArrayMode, float], None]

#: Transition log entry: ``(mode value, time_ms)``.
Transition = Tuple[str, float]


class ArrayLifecycle:
    """fault-free -> degraded -> reconstruction -> post-reconstruction.

    Construct around a fresh (fault-free) controller, then :meth:`arm`;
    the scenario's failure, the rebuild start after the degraded dwell,
    and the flip to post-reconstruction all happen on the engine's clock
    while client traffic keeps flowing.  Multi-fault scenarios may add
    further degraded/reconstruction cycles, or end in the terminal
    **data-loss** regime (see the module docstring); ``media`` threads a
    latent-sector-error map into the rebuild's reads.
    """

    def __init__(
        self,
        controller: ArrayController,
        scenario: FaultScenario,
        on_transition: Optional[TransitionCallback] = None,
        on_rebuild_step: Optional[Callable[[Reconstructor], None]] = None,
        media: Optional[MediaErrorMap] = None,
        on_data_loss: Optional[Callable[[str, float], None]] = None,
        adaptive_throttle=None,
    ):
        if controller.mode is not ArrayMode.FAULT_FREE:
            raise SimulationError(
                f"lifecycle needs a fault-free array,"
                f" got {controller.mode.value}"
            )
        self.controller = controller
        self.scenario = scenario
        self.on_transition = on_transition
        self.on_rebuild_step = on_rebuild_step
        self.media = media
        self.on_data_loss = on_data_loss
        #: Optional :class:`~repro.array.reconstructor.AdaptiveThrottle`
        #: threaded into every rebuild sweep this lifecycle starts; None
        #: keeps the scenario's static ``rebuild_throttle_ms``.
        self.adaptive_throttle = adaptive_throttle
        self.injector: Optional[FaultInjector] = None
        self.reconstructor: Optional[Reconstructor] = None
        self.transitions: List[Transition] = [
            (ArrayMode.FAULT_FREE.value, controller.engine.now)
        ]
        #: One record per subsequent whole-disk failure, in order.
        self.second_faults: List[dict] = []
        #: Units left without any surviving or reconstructible copy.
        self.lost_units = 0
        self.data_loss_ms: Optional[float] = None
        # Repair steps created by a survivable second failure that landed
        # during the degraded dwell, before any sweep exists; the next
        # :meth:`_start_rebuild` folds them in.
        self._pending_steps: List[RebuildStep] = []

    @property
    def mode(self) -> ArrayMode:
        return self.controller.mode

    @property
    def complete(self) -> bool:
        """Did the array reach the post-reconstruction regime?

        Checked against the transition log, not the controller mode:
        a layout without sparing finishes its rebuild onto a replacement
        spindle and the controller returns to fault-free, but the
        lifecycle still passed through every regime.
        """
        return any(
            mode == ArrayMode.POST_RECONSTRUCTION.value
            for mode, _ in self.transitions
        )

    @property
    def data_loss(self) -> bool:
        """Did the lifecycle end in the terminal data-loss regime?"""
        return self.data_loss_ms is not None

    def arm(self) -> FaultInjector:
        """Resolve the scenario's faults and schedule them on the engine."""
        if self.injector is not None:
            raise SimulationError("lifecycle already armed")
        self.injector = FaultInjector(
            self.controller.engine,
            self.scenario,
            self.controller.layout.n,
            self._on_failure,
        )
        self.injector.arm()
        return self.injector

    def inject_failure(self, disk: int) -> None:
        """Deliver one whole-disk failure now, from an external injector.

        The nemesis harness schedules failures itself instead of
        :meth:`arm`-ing the scenario; this routes the failure through the
        same first/subsequent classification path the injector uses.
        """
        self._on_failure(disk, self.controller.engine.now)

    def resume_after_crash(self) -> None:
        """Re-arm lifecycle work a controller crash wiped off the engine.

        Call after the post-crash resync completes.  A crash clears every
        pending event, killing the degraded dwell timer and the rebuild
        sweep's in-flight steps; platter contents and the spare cells
        already rebuilt survive.  Depending on the mode at restart:

        - DEGRADED: detection restarts — a fresh dwell timer leads to
          :meth:`_start_rebuild` as usual.
        - RECONSTRUCTION: a fresh sweep resumes from the old frontier,
          carrying over any second-failure repair steps that had not
          completed.
        - anywhere else: nothing was in flight; no-op.
        """
        controller = self.controller
        if controller.mode is ArrayMode.DEGRADED:
            controller.engine.schedule(
                self.scenario.degraded_dwell_ms, self._start_rebuild
            )
            return
        if controller.mode is not ArrayMode.RECONSTRUCTION:
            return
        old = self.reconstructor
        if old is None:
            raise SimulationError("reconstruction mode with no sweep")
        frontier = set(old.rebuilt_offsets)
        # Steps not certainly completed: the fresh plan re-covers the
        # failed disk's share; repair steps for *other* slots (survivable
        # second failures) must be carried over explicitly.
        carried = [
            s
            for s in old.outstanding_steps()
            if s.lost.disk != controller.failed_disk
        ]
        recon = Reconstructor(
            controller,
            parallel_steps=self.scenario.rebuild_parallel,
            rows=self.scenario.rebuild_rows,
            throttle_ms=self.scenario.rebuild_throttle_ms,
            on_finished=self._on_rebuilt,
            on_step=self.on_rebuild_step,
            allow_replacement=True,
            media=self.media,
            on_unreadable=self._on_unreadable,
            already_rebuilt=frontier,
            adaptive_throttle=self.adaptive_throttle,
        )
        self.reconstructor = recon
        if carried:
            recon.requeue(carried)
        controller.resume_reconstruction(recon.is_rebuilt)
        recon.start()

    def mode_at(self, time_ms: float) -> str:
        """Mode value in force at ``time_ms`` (from the transition log)."""
        current = self.transitions[0][0]
        for mode, t in self.transitions:
            if t > time_ms:
                break
            current = mode
        return current

    # ------------------------------------------------------------------
    # Transition machinery.
    # ------------------------------------------------------------------

    def _record(self, mode: ArrayMode) -> None:
        now = self.controller.engine.now
        self.transitions.append((mode.value, now))
        if self.on_transition is not None:
            self.on_transition(mode, now)

    def _on_failure(self, disk: int, now_ms: float) -> None:
        if self.controller.mode is not ArrayMode.FAULT_FREE:
            self._on_subsequent_failure(disk, now_ms)
            return
        self.controller.fail_disk(disk)
        self._record(ArrayMode.DEGRADED)
        self.controller.engine.schedule(
            self.scenario.degraded_dwell_ms, self._start_rebuild
        )

    def _repair_rows(self) -> int:
        """The repair domain, identical to the sweep's row bound."""
        if self.reconstructor is not None:
            return self.reconstructor.total_rows
        if self.scenario.rebuild_rows is not None:
            return self.scenario.rebuild_rows
        return self.controller.periods * self.controller.plan_layout.period

    def _on_subsequent_failure(self, disk: int, now_ms: float) -> None:
        controller = self.controller
        mode = controller.mode
        if mode is ArrayMode.DATA_LOSS:
            return  # the array is already lost; further failures are moot
        if mode is ArrayMode.POST_RECONSTRUCTION:
            # The completed relocation is now simply the mapping; this
            # failure starts an ordinary degraded cycle against it, onto
            # a replacement spindle (the spare space is spent).
            controller.relocate_and_fail(disk)
            self.reconstructor = None
            self.second_faults.append(
                {
                    "disk": disk,
                    "time_ms": now_ms,
                    "during": mode.value,
                    "data_loss": False,
                    "lost_units": 0,
                    "relost": 0,
                }
            )
            self._record(ArrayMode.DEGRADED)
            controller.engine.schedule(
                self.scenario.degraded_dwell_ms, self._start_rebuild
            )
            return
        # Degraded or mid-reconstruction: classify exactly against the
        # rebuild frontier (empty during the dwell).
        recon = self.reconstructor
        first = controller.failed_disk
        frontier = (
            recon.rebuilt_offsets if recon is not None else frozenset()
        )
        rows = self._repair_rows()
        outcome = evaluate_second_failure(
            controller.plan_layout, first, disk, frontier, rows
        )
        controller.fail_subsequent_disk(disk)
        self.second_faults.append(
            {
                "disk": disk,
                "time_ms": now_ms,
                "during": mode.value,
                "data_loss": outcome.data_loss,
                "lost_units": outcome.lost_units,
                "relost": len(outcome.relost_offsets),
            }
        )
        if outcome.data_loss:
            if recon is not None:
                recon.abort()
            self._declare_loss(
                f"disks {first} and {disk} share"
                f" {outcome.lost_units} unrecoverable unit(s)",
                outcome.lost_units,
            )
            return
        # Survivable: a replacement spindle takes the new failure's slot
        # and the extra repair work joins the (current or next) sweep.
        controller.install_replacement_for(disk)
        steps = second_failure_repair_steps(
            controller.plan_layout,
            first,
            disk,
            outcome.relost_offsets,
            frontier,
            rows,
        )
        if recon is not None:
            recon.unrebuild(outcome.relost_offsets)
            recon.requeue(steps)
        else:
            self._pending_steps.extend(steps)

    def _start_rebuild(self) -> None:
        if self.controller.mode is ArrayMode.DATA_LOSS:
            return  # a second failure during the dwell was fatal
        recon = Reconstructor(
            self.controller,
            parallel_steps=self.scenario.rebuild_parallel,
            rows=self.scenario.rebuild_rows,
            throttle_ms=self.scenario.rebuild_throttle_ms,
            on_finished=self._on_rebuilt,
            on_step=self.on_rebuild_step,
            # Layouts without distributed sparing rebuild onto a
            # replacement spindle instead of spare cells.
            allow_replacement=True,
            media=self.media,
            on_unreadable=self._on_unreadable,
            adaptive_throttle=self.adaptive_throttle,
        )
        self.reconstructor = recon
        if self._pending_steps:
            recon.requeue(self._pending_steps)
            self._pending_steps = []
        # Flip to reconstruction mode *before* the first step issues so
        # client plans consult the (initially empty) rebuild frontier.
        self.controller.enter_reconstruction(recon.is_rebuilt)
        self._record(ArrayMode.RECONSTRUCTION)
        recon.start()

    def _on_rebuilt(self, duration_ms: float) -> None:
        self._record(ArrayMode.POST_RECONSTRUCTION)

    def _on_unreadable(
        self,
        recon: Reconstructor,
        step: RebuildStep,
        addr: PhysicalAddress,
    ) -> None:
        """A rebuild read hit a latent sector error: the stripe has no
        redundancy left, so the unit being rebuilt is unrecoverable."""
        recon.abort()
        self._declare_loss(
            f"unreadable sector at disk {addr.disk} offset {addr.offset}"
            f" during rebuild of ({step.lost.disk}, {step.lost.offset})",
            1,
        )

    def _declare_loss(self, reason: str, lost_units: int) -> None:
        self.lost_units += lost_units
        self.data_loss_ms = self.controller.engine.now
        self.controller.declare_data_loss(reason)
        self._record(ArrayMode.DATA_LOSS)
        if self.on_data_loss is not None:
            self.on_data_loss(reason, self.data_loss_ms)
