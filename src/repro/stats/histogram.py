"""Latency histograms with percentile queries.

Response-time *tails* matter for storage arrays (the paper reports means;
the tail behaviour of degraded RAID-5 vs declustered layouts is an obvious
follow-up question).  Log-bucketed so memory stays constant regardless of
run length, with <= 5% relative error per percentile query.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


class LatencyHistogram:
    """Logarithmically bucketed latency histogram.

    >>> h = LatencyHistogram()
    >>> for ms in [1.0, 2.0, 4.0, 100.0]:
    ...     h.record(ms)
    >>> h.count
    4
    >>> h.percentile(50) <= h.percentile(99)
    True
    """

    def __init__(
        self,
        min_ms: float = 0.01,
        max_ms: float = 1e7,
        buckets_per_decade: int = 48,
    ):
        if min_ms <= 0 or max_ms <= min_ms:
            raise ConfigurationError("need 0 < min_ms < max_ms")
        if buckets_per_decade < 1:
            raise ConfigurationError("need >= 1 bucket per decade")
        self.min_ms = min_ms
        self.max_ms = max_ms
        self._scale = buckets_per_decade
        decades = math.log10(max_ms / min_ms)
        self._counts: List[int] = [0] * (int(decades * self._scale) + 2)
        self.count = 0
        self.total_ms = 0.0
        #: Exact largest sample seen — the one tail statistic buckets
        #: cannot answer within the 5% error bound.
        self.max_sample_ms = 0.0

    def _bucket(self, value_ms: float) -> int:
        clamped = min(max(value_ms, self.min_ms), self.max_ms)
        return int(math.log10(clamped / self.min_ms) * self._scale)

    def _bucket_upper(self, index: int) -> float:
        return self.min_ms * 10 ** ((index + 1) / self._scale)

    def record(self, value_ms: float) -> None:
        if value_ms < 0:
            raise ConfigurationError(f"negative latency {value_ms}")
        self._counts[self._bucket(value_ms)] += 1
        self.count += 1
        self.total_ms += value_ms
        if value_ms > self.max_sample_ms:
            self.max_sample_ms = value_ms

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ConfigurationError("no samples")
        return self.total_ms / self.count

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` (0 < p <= 100), upper-bucket-bounded."""
        if not 0 < p <= 100:
            raise ConfigurationError(f"percentile must be in (0, 100]: {p}")
        if self.count == 0:
            raise ConfigurationError("no samples")
        target = math.ceil(self.count * p / 100.0)
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= target:
                return self._bucket_upper(index)
        return self._bucket_upper(len(self._counts) - 1)  # pragma: no cover

    def percentiles(
        self, ps: Sequence[float] = (50, 90, 95, 99)
    ) -> List[Tuple[float, float]]:
        return [(p, self.percentile(p)) for p in ps]

    def describe(self) -> dict:
        """Tail-complete summary: count/mean, p50-p999, exact max.

        p999 comes from the log buckets (<= 5% relative error like every
        percentile query); ``max_ms`` is the exact largest sample, since
        a bucket bound is the wrong answer for "how bad did it get".

        >>> h = LatencyHistogram()
        >>> for ms in (1.0, 2.0, 400.0):
        ...     h.record(ms)
        >>> h.describe()["max_ms"]
        400.0
        """
        if self.count == 0:
            return {
                "count": 0,
                "mean_ms": None,
                "p50_ms": None,
                "p95_ms": None,
                "p99_ms": None,
                "p999_ms": None,
                "max_ms": None,
            }
        return {
            "count": self.count,
            "mean_ms": self.mean,
            "p50_ms": self.percentile(50),
            "p95_ms": self.percentile(95),
            "p99_ms": self.percentile(99),
            "p999_ms": self.percentile(99.9),
            "max_ms": self.max_sample_ms,
        }

    def to_dict(self) -> dict:
        """JSON-able form (sparse buckets); exact round-trip.

        >>> h = LatencyHistogram()
        >>> h.record(3.5)
        >>> LatencyHistogram.from_dict(h.to_dict()).total_ms
        3.5
        """
        return {
            "min_ms": self.min_ms,
            "max_ms": self.max_ms,
            "buckets_per_decade": self._scale,
            "count": self.count,
            "total_ms": self.total_ms,
            "max_sample_ms": self.max_sample_ms,
            "counts": {
                str(i): c for i, c in enumerate(self._counts) if c
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        hist = cls(
            min_ms=data["min_ms"],
            max_ms=data["max_ms"],
            buckets_per_decade=data["buckets_per_decade"],
        )
        for index, count in data["counts"].items():
            hist._counts[int(index)] = count
        hist.count = data["count"]
        hist.total_ms = data["total_ms"]
        # Dicts serialized before the exact max existed fall back to the
        # highest occupied bucket's upper bound (<= 5% high, never low).
        hist.max_sample_ms = data.get(
            "max_sample_ms",
            hist.percentile(100) if hist.count else 0.0,
        )
        return hist

    def merge(self, other: "LatencyHistogram") -> None:
        if (
            other.min_ms != self.min_ms
            or other._scale != self._scale
            or len(other._counts) != len(self._counts)
        ):
            raise ConfigurationError("histogram shapes differ")
        for i, c in enumerate(other._counts):
            self._counts[i] += c
        self.count += other.count
        self.total_ms += other.total_ms
        if other.max_sample_ms > self.max_sample_ms:
            self.max_sample_ms = other.max_sample_ms

    def summary_row(self) -> str:
        if self.count == 0:
            return "empty"
        p50, p95, p99, p999 = (
            self.percentile(p) for p in (50, 95, 99, 99.9)
        )
        return (
            f"n={self.count} mean={self.mean:.2f}ms"
            f" p50={p50:.2f} p95={p95:.2f} p99={p99:.2f}"
            f" p999={p999:.2f} max={self.max_sample_ms:.2f}"
        )
