"""Per-array-mode latency accounting.

A lifecycle run spans several operating conditions in one simulation;
binning each response into the mode the array was in when the access was
*issued* yields the per-mode histograms that correspond to the paper's
separately-measured fault-free / degraded / reconstruction /
post-reconstruction curves.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.stats.histogram import LatencyHistogram


class LatencyByMode:
    """A :class:`LatencyHistogram` per mode label, created on demand.

    >>> by_mode = LatencyByMode()
    >>> by_mode.record("fault-free", 12.5)
    >>> by_mode.record("degraded", 40.0)
    >>> by_mode.samples("fault-free")
    1
    >>> sorted(by_mode.modes())
    ['degraded', 'fault-free']
    """

    def __init__(self):
        self._histograms: Dict[str, LatencyHistogram] = {}

    def record(self, mode: str, response_ms: float) -> None:
        histogram = self._histograms.get(mode)
        if histogram is None:
            histogram = LatencyHistogram()
            self._histograms[mode] = histogram
        histogram.record(response_ms)

    def modes(self) -> List[str]:
        return list(self._histograms)

    def histogram(self, mode: str) -> LatencyHistogram:
        histogram = self._histograms.get(mode)
        if histogram is None:
            raise ConfigurationError(f"no samples for mode {mode!r}")
        return histogram

    def samples(self, mode: str) -> int:
        histogram = self._histograms.get(mode)
        return 0 if histogram is None else histogram.count

    def mean(self, mode: str) -> float:
        return self.histogram(mode).mean

    @property
    def total_samples(self) -> int:
        return sum(h.count for h in self._histograms.values())

    def to_dict(self) -> dict:
        """JSON-able ``{mode: histogram dict}``; exact round-trip."""
        return {
            mode: histogram.to_dict()
            for mode, histogram in sorted(self._histograms.items())
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyByMode":
        by_mode = cls()
        for mode, histogram in data.items():
            by_mode._histograms[mode] = LatencyHistogram.from_dict(histogram)
        return by_mode
