"""Measurement: summaries, stopping rules, and analytic layout metrics."""

from repro.stats.bymode import LatencyByMode
from repro.stats.confidence import StoppingRule
from repro.stats.histogram import LatencyHistogram
from repro.stats.seekcount import SeekMix, seek_mix_per_access
from repro.stats.summary import SummaryStats
from repro.stats.workingset import (
    average_working_set,
    working_set_table,
)

__all__ = [
    "LatencyByMode",
    "LatencyHistogram",
    "SeekMix",
    "StoppingRule",
    "SummaryStats",
    "average_working_set",
    "seek_mix_per_access",
    "working_set_table",
]
