"""Streaming summary statistics (Welford's algorithm)."""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: Two-sided z quantiles for the confidence levels the harness uses.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


class SummaryStats:
    """Numerically stable running mean/variance.

    >>> s = SummaryStats()
    >>> for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
    ...     s.push(x)
    >>> s.mean
    5.0
    >>> round(s.stddev, 4)
    2.1381
    """

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def push(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ConfigurationError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample (n-1) variance."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def ci_halfwidth(self, confidence: float = 0.95) -> float:
        """Half-width of the normal-approximation confidence interval."""
        if confidence not in _Z:
            raise ConfigurationError(
                f"unsupported confidence {confidence}; use {sorted(_Z)}"
            )
        if self.count < 2:
            return math.inf
        return _Z[confidence] * self.stddev / math.sqrt(self.count)

    def relative_precision(self, confidence: float = 0.95) -> float:
        """CI half-width as a fraction of the mean (the paper's 2% target)."""
        mean = self.mean
        if mean == 0:
            return math.inf
        return self.ci_halfwidth(confidence) / abs(mean)

    def merge(self, other: "SummaryStats") -> None:
        """Fold another summary in (parallel Welford combination)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def __repr__(self) -> str:
        if self.count == 0:
            return "SummaryStats(empty)"
        return (
            f"SummaryStats(n={self.count}, mean={self._mean:.3f},"
            f" sd={self.stddev:.3f})"
        )
