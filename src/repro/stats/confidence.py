"""Run-length control.

The paper: "Experiments run until the measured access response time is
within 2% of the true average with 95% confidence."  The stopping rule
discards a warmup prefix, then checks the relative CI half-width every
``check_interval`` samples; a sample cap keeps pathological runs bounded.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import ConfigurationError
from repro.stats.summary import SummaryStats

#: Two-sided normal quantiles for the confidence levels the repo uses.
_Z_BY_CONFIDENCE = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the extremes (0 or ``trials`` successes give a
    non-degenerate interval), which matters for loss-probability
    campaigns where the event can be rare.

    >>> low, high = wilson_interval(0, 100)
    >>> low == 0.0 and 0.0 < high < 0.05
    True
    """
    if trials < 1:
        raise ConfigurationError(f"need >= 1 trial, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"{successes} successes out of {trials} trials"
        )
    z = _Z_BY_CONFIDENCE.get(confidence)
    if z is None:
        raise ConfigurationError(
            f"confidence must be one of"
            f" {sorted(_Z_BY_CONFIDENCE)}, got {confidence}"
        )
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p + z2 / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials))
        / denom
    )
    return max(0.0, centre - half), min(1.0, centre + half)


class StoppingRule:
    """Feed response samples; :meth:`offer` returns True when done.

    >>> rule = StoppingRule(rel_precision=0.5, warmup=0, min_samples=4,
    ...                     check_interval=1)
    >>> done = [rule.offer(x) for x in [10.0, 10.1, 9.9, 10.0]]
    >>> done[-1]
    True
    """

    def __init__(
        self,
        rel_precision: float = 0.02,
        confidence: float = 0.95,
        warmup: int = 100,
        min_samples: int = 200,
        max_samples: int = 200_000,
        check_interval: int = 50,
    ):
        if not 0 < rel_precision < 1:
            raise ConfigurationError("rel_precision must be in (0, 1)")
        if min_samples < 2:
            raise ConfigurationError("min_samples must be >= 2")
        if max_samples < min_samples:
            raise ConfigurationError("max_samples < min_samples")
        if check_interval < 1:
            raise ConfigurationError("check_interval must be >= 1")
        self.rel_precision = rel_precision
        self.confidence = confidence
        self.warmup = warmup
        self.min_samples = min_samples
        self.max_samples = max_samples
        self.check_interval = check_interval
        self.stats = SummaryStats()
        self._seen = 0
        self.converged = False
        self.capped = False

    def offer(self, sample: float) -> bool:
        """Record one sample; True means the run may stop."""
        self._seen += 1
        if self._seen <= self.warmup:
            return False
        self.stats.push(sample)
        n = self.stats.count
        if n >= self.max_samples:
            self.capped = True
            return True
        if n < self.min_samples or n % self.check_interval != 0:
            return False
        if self.stats.relative_precision(self.confidence) <= self.rel_precision:
            self.converged = True
            return True
        return False

    @property
    def samples(self) -> int:
        return self.stats.count

    @property
    def warmup_done(self) -> bool:
        """Has the warmup prefix been fully discarded?

        True from the moment the last warmup sample is offered; callers
        watching for the measurement phase (e.g. to reset timeline
        instrumentation) key off the rising edge of this together with
        :attr:`samples` still being zero.
        """
        return self._seen >= self.warmup
