"""Run-length control.

The paper: "Experiments run until the measured access response time is
within 2% of the true average with 95% confidence."  The stopping rule
discards a warmup prefix, then checks the relative CI half-width every
``check_interval`` samples; a sample cap keeps pathological runs bounded.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.stats.summary import SummaryStats


class StoppingRule:
    """Feed response samples; :meth:`offer` returns True when done.

    >>> rule = StoppingRule(rel_precision=0.5, warmup=0, min_samples=4,
    ...                     check_interval=1)
    >>> done = [rule.offer(x) for x in [10.0, 10.1, 9.9, 10.0]]
    >>> done[-1]
    True
    """

    def __init__(
        self,
        rel_precision: float = 0.02,
        confidence: float = 0.95,
        warmup: int = 100,
        min_samples: int = 200,
        max_samples: int = 200_000,
        check_interval: int = 50,
    ):
        if not 0 < rel_precision < 1:
            raise ConfigurationError("rel_precision must be in (0, 1)")
        if min_samples < 2:
            raise ConfigurationError("min_samples must be >= 2")
        if max_samples < min_samples:
            raise ConfigurationError("max_samples < min_samples")
        if check_interval < 1:
            raise ConfigurationError("check_interval must be >= 1")
        self.rel_precision = rel_precision
        self.confidence = confidence
        self.warmup = warmup
        self.min_samples = min_samples
        self.max_samples = max_samples
        self.check_interval = check_interval
        self.stats = SummaryStats()
        self._seen = 0
        self.converged = False
        self.capped = False

    def offer(self, sample: float) -> bool:
        """Record one sample; True means the run may stop."""
        self._seen += 1
        if self._seen <= self.warmup:
            return False
        self.stats.push(sample)
        n = self.stats.count
        if n >= self.max_samples:
            self.capped = True
            return True
        if n < self.min_samples or n % self.check_interval != 0:
            return False
        if self.stats.relative_precision(self.confidence) <= self.rel_precision:
            self.converged = True
            return True
        return False

    @property
    def samples(self) -> int:
        return self.stats.count

    @property
    def warmup_done(self) -> bool:
        """Has the warmup prefix been fully discarded?

        True from the moment the last warmup sample is offered; callers
        watching for the measurement phase (e.g. to reset timeline
        instrumentation) key off the rising edge of this together with
        :attr:`samples` still being zero.
        """
        return self._seen >= self.warmup
