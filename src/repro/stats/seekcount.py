"""Seek-mix aggregation (Figures 4, 7, 15, 16).

Each column of those figures decomposes the physical operations of an
average logical access into non-local seeks, local cylinder switches, local
track switches, and no-switch operations.  The simulator's per-disk counters
hold the raw tallies; this module normalizes them per logical access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.disk.stats import DiskOpClass, DiskStats
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SeekMix:
    """Per-logical-access operation mix — one Figure 4 column."""

    non_local: float
    cylinder_switch: float
    track_switch: float
    no_switch: float

    @property
    def total(self) -> float:
        return (
            self.non_local
            + self.cylinder_switch
            + self.track_switch
            + self.no_switch
        )

    @property
    def local(self) -> float:
        return self.total - self.non_local

    def as_row(self) -> str:
        return (
            f"nonlocal={self.non_local:5.2f}  cyl={self.cylinder_switch:5.2f}"
            f"  trk={self.track_switch:5.2f}  none={self.no_switch:5.2f}"
            f"  total={self.total:5.2f}"
        )


def seek_mix_per_access(
    disk_stats: Iterable[DiskStats], logical_accesses: int
) -> SeekMix:
    """Aggregate per-disk counters into the per-access mix.

    >>> s = DiskStats()
    >>> s.record(DiskOpClass.NON_LOCAL_SEEK, 8.0, 3.0, 1.0)
    >>> s.record(DiskOpClass.NO_SWITCH, 0.0, 3.0, 1.0)
    >>> seek_mix_per_access([s], 2).total
    1.0
    """
    if logical_accesses < 1:
        raise ConfigurationError("need at least one completed access")
    totals = {cls: 0 for cls in DiskOpClass}
    for stats in disk_stats:
        for cls, count in stats.by_class.items():
            totals[cls] += count
    return SeekMix(
        non_local=totals[DiskOpClass.NON_LOCAL_SEEK] / logical_accesses,
        cylinder_switch=totals[DiskOpClass.CYLINDER_SWITCH] / logical_accesses,
        track_switch=totals[DiskOpClass.TRACK_SWITCH] / logical_accesses,
        no_switch=totals[DiskOpClass.NO_SWITCH] / logical_accesses,
    )
