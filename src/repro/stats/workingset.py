"""Analytic disk working set sizes (Figure 3).

The paper computes each layout's working set "by averaging the working set
sizes for logical accesses for every possible offset in the array"; by
periodicity one layout pattern of start offsets suffices.  Because the same
:func:`repro.array.raidops.plan_access` drives both this computation and
the simulator, the Figure 3 numbers and the Figure 4 non-local seek counts
agree by construction — the cross-check the paper points out ("the non-local
seek counts ... and the working set sizes ... are equal; moreover, they are
determined independently").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.array.raidops import ArrayMode, plan_access
from repro.errors import ConfigurationError
from repro.layouts.base import Layout


def average_working_set(
    layout: Layout,
    span_units: int,
    is_write: bool,
    mode: ArrayMode = ArrayMode.FAULT_FREE,
    failed_disk: Optional[int] = None,
    starts: Optional[Iterable[int]] = None,
) -> float:
    """Mean disks touched by a ``span_units`` access over all starts.

    >>> from repro.layouts import make_layout
    >>> average_working_set(make_layout("raid5", 13, 13), 13, False)
    13.0
    """
    if span_units < 1:
        raise ConfigurationError(f"span must be >= 1, got {span_units}")
    if mode is not ArrayMode.FAULT_FREE and failed_disk is None:
        failed_disk = 0
    if starts is None:
        starts = range(layout.data_units_per_period)
    total = 0
    count = 0
    for start in starts:
        plan = plan_access(
            layout,
            start,
            span_units,
            is_write,
            mode=mode,
            failed_disk=failed_disk,
        )
        total += len(plan.disks_touched())
        count += 1
    if count == 0:
        raise ConfigurationError("no start offsets supplied")
    return total / count


def average_operation_count(
    layout: Layout,
    span_units: int,
    is_write: bool,
    mode: ArrayMode = ArrayMode.FAULT_FREE,
    failed_disk: Optional[int] = None,
) -> float:
    """Mean physical operations per logical access (Figure 4 column
    totals)."""
    if mode is not ArrayMode.FAULT_FREE and failed_disk is None:
        failed_disk = 0
    total = 0
    count = layout.data_units_per_period
    for start in range(count):
        plan = plan_access(
            layout, start, span_units, is_write,
            mode=mode, failed_disk=failed_disk,
        )
        total += plan.operation_count()
    return total / count


#: The four Figure 3 conditions, in the figure's left-to-right order.
FIGURE3_CONDITIONS: Tuple[Tuple[str, bool, ArrayMode], ...] = (
    ("ffread", False, ArrayMode.FAULT_FREE),
    ("ffwrite", True, ArrayMode.FAULT_FREE),
    ("f1read", False, ArrayMode.DEGRADED),
    ("f1write", True, ArrayMode.DEGRADED),
)


def working_set_table(
    layouts: Dict[str, Layout],
    sizes_kb: Iterable[int],
    stripe_unit_kb: int = 8,
) -> Dict[Tuple[str, int, str], float]:
    """Figure 3's full table: (layout, size KB, condition) -> mean DWS."""
    table: Dict[Tuple[str, int, str], float] = {}
    for name, layout in layouts.items():
        for size_kb in sizes_kb:
            if size_kb % stripe_unit_kb:
                raise ConfigurationError(
                    f"{size_kb} KB is not unit-aligned"
                )
            span = size_kb // stripe_unit_kb
            for label, is_write, mode in FIGURE3_CONDITIONS:
                table[(name, size_kb, label)] = average_working_set(
                    layout, span, is_write, mode=mode
                )
    return table
