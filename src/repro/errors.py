"""Exception hierarchy for the PDDL reproduction library.

Every error raised by ``repro`` derives from :class:`ReproError`, so callers
can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed with parameters that make no sense.

    Examples: a layout with ``n != g * k + 1``, a disk with zero cylinders,
    a workload referencing a nonexistent disk.
    """


class MappingError(ReproError):
    """An address could not be translated between virtual and physical form."""


class DesignError(ReproError):
    """A combinatorial design could not be built or failed validation."""


class SearchError(ReproError):
    """A permutation search failed to find a satisfactory result."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class FieldError(ReproError):
    """Invalid finite-field construction or operation."""


class RunnerError(ReproError):
    """The experiment runner could not complete a batch.

    Raised when a worker crashes or hangs past its retry budget, or when
    a spec fails deterministically inside a worker (re-running it would
    fail the same way).
    """
