"""Plan a PDDL deployment for a given array shape.

Given a disk count and stripe width, finds a satisfactory base permutation
(Bose construction, GF(2^m), the paper's published groups, or
hill-climbing search — the Table 1 pipeline), reports capacity overheads,
verifies the layout goals, and summarizes per-survivor rebuild load.

Run:  python examples/capacity_planner.py [disks] [stripe_width]
      python examples/capacity_planner.py 21 5
"""

import sys

from repro import check_layout, pddl_for
from repro.core.reconstruction import rebuild_read_tally, rebuild_write_tally
from repro.errors import ReproError
from repro.experiments.report import render_table


def plan(n: int, k: int) -> None:
    if (n - 1) % k != 0:
        usable = [m for m in range(n - 4, n + 5) if (m - 1) % k == 0]
        print(
            f"{n} disks cannot host width-{k} stripes + 1 spare"
            f" (need n = g*{k} + 1; nearby options: {usable})"
        )
        return
    g = (n - 1) // k
    print(f"Array: {n} disks = {g} stripes x width {k} + 1 distributed spare")

    try:
        layout = pddl_for(g, k)
    except ReproError as exc:
        print(f"No satisfactory PDDL configuration found: {exc}")
        return

    group = layout.group
    print(f"Base permutations needed: {group.p}")
    for i, perm in enumerate(group.permutations):
        print(f"  permutation {i}: {perm.values}")

    print(f"\nDevelopment: {type(layout.dev).__name__}")
    print(f"Layout pattern: {layout.period} rows,"
          f" {layout.stripes_per_period} stripes")
    print(f"Client data capacity: {1 - layout.parity_overhead - layout.spare_overhead:.1%}")
    print(f"Parity overhead:      {layout.parity_overhead:.1%}")
    print(f"Spare overhead:       {layout.spare_overhead:.1%}")

    report = check_layout(layout)
    print(f"Goals met: {report.goals_met()}")

    reads = rebuild_read_tally(layout, 0)
    writes = rebuild_write_tally(layout, 0)
    print("\nRebuild load per surviving disk (one pattern, disk 0 failed):")
    print(
        render_table(
            ["disk", "reconstruction reads", "spare writes"],
            [[d, reads[d], writes[d]] for d in sorted(reads)],
        )
    )


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    plan(n, k)


if __name__ == "__main__":
    main()
