"""Explore every layout's goal profile, working sets, and mapping costs.

Prints the paper's qualitative comparison as three tables: the goal matrix
(§1's eight goals, machine-checked), the Figure 3 working sets, and the
Table 3 implementation costs.

Run:  python examples/layout_explorer.py
"""

from repro import check_layout, make_layout
from repro.experiments.report import render_table, render_working_set_table
from repro.experiments.table3 import table3_rows
from repro.layouts.registry import DISPLAY_NAMES
from repro.stats.workingset import working_set_table

CONFIGS = {
    "pddl": (13, 4),
    "datum": (13, 4),
    "prime": (13, 4),
    "parity-declustering": (13, 4),
    "raid5": (13, 13),
    "pseudo-random": (13, 4),
}


def main() -> None:
    layouts = {
        name: make_layout(name, n, k) for name, (n, k) in CONFIGS.items()
    }

    print("Goal matrix (paper §1; o = satisfied):")
    rows = []
    for name, layout in layouts.items():
        report = check_layout(layout)
        met = set(report.goals_met())
        rows.append(
            [DISPLAY_NAMES[name]]
            + [("o" if goal in met else ".") for goal in range(1, 9)]
        )
    print(render_table(["layout", *(f"#{g}" for g in range(1, 9))], rows))

    print("\nDisk working sets, 96KB accesses (Figure 3 excerpt):")
    subset = {n: layouts[n] for n in ("pddl", "datum", "prime",
                                      "parity-declustering", "raid5")}
    table = working_set_table(subset, sizes_kb=[96])
    print(render_working_set_table(table, [96]))

    print("\nImplementation costs (Table 3):")
    rows3 = table3_rows(iterations=20_000)
    print(
        render_table(
            ["scheme", "table entries", "sparing", "period", "ns/mapping"],
            [
                [
                    row.scheme,
                    row.table_entries,
                    "yes" if row.sparing else "no",
                    row.period_rows or "expected only",
                    f"{row.translation_ns:.0f}",
                ]
                for row in rows3.values()
            ],
        )
    )


if __name__ == "__main__":
    main()
