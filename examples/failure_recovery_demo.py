"""On-line failure recovery with distributed sparing.

Fails a disk in a loaded 13-disk PDDL array, runs the background
reconstructor concurrently with client traffic, and shows the three
operating regimes of the paper's Figure 18: fault-free, reconstruction
(lost units rebuilt on the fly), and post-reconstruction (lost units
served from spare space).

Run:  python examples/failure_recovery_demo.py
"""

import random

from repro import (
    AccessSpec,
    ArrayController,
    ClosedLoopClient,
    Reconstructor,
    SimulationEngine,
    UniformGenerator,
    make_layout,
)
from repro.stats.summary import SummaryStats

CLIENTS = 8
SPEC = AccessSpec(24, is_write=False)
REBUILD_ROWS = 13 * 30  # rebuild 30 layout patterns' worth of lost data


def main() -> None:
    engine = SimulationEngine()
    controller = ArrayController(engine, make_layout("pddl", 13, 4))

    phases = {
        "fault-free": SummaryStats(),
        "degraded": SummaryStats(),
        "post-reconstruction": SummaryStats(),
    }
    state = {"stop_at": None}

    def on_response(client, access, response_ms) -> bool:
        phases[controller.mode.value].push(response_ms)
        if (
            state["stop_at"] is not None
            and phases["post-reconstruction"].count >= state["stop_at"]
        ):
            engine.stop()
            return False
        return True

    units = SPEC.units()
    for c in range(CLIENTS):
        generator = UniformGenerator(
            controller.addressable_data_units, units,
            random.Random(f"client-{c}"),
        )
        ClosedLoopClient(
            c, controller, generator, SPEC, on_response
        ).start()

    # Let the array warm up fault-free, then kill disk 5.
    engine.run(until=5_000.0)
    print(f"t={engine.now / 1000:.1f}s  failing disk 5")
    controller.fail_disk(5)

    recon = Reconstructor(
        controller,
        parallel_steps=2,
        rows=REBUILD_ROWS,
        on_finished=lambda ms: print(
            f"t={engine.now / 1000:.1f}s  reconstruction finished"
            f" ({REBUILD_ROWS} rows in {ms / 1000:.1f}s simulated)"
        ),
    )
    recon.start()
    state["stop_at"] = 600
    engine.run()

    print("\nMean read response time by regime (24KB reads, 8 clients):")
    for regime, stats in phases.items():
        if stats.count:
            print(
                f"  {regime:20s} {stats.mean:7.2f} ms"
                f"   (n={stats.count})"
            )
    degraded = phases["degraded"]
    post = phases["post-reconstruction"]
    if degraded.count and post.count:
        gain = degraded.mean / post.mean
        print(
            f"\nServing rebuilt data from spare space is {gain:.2f}x faster"
            " than on-the-fly reconstruction (paper Figure 18)."
        )


if __name__ == "__main__":
    main()
