"""P+Q PDDL: tolerating two concurrent disk failures (paper §1/§5).

Builds a 16-disk PDDL array with two check units per stripe and two
distributed spare columns, kills two disks, and walks the double-failure
rebuild plan: which survivors are read, where each lost unit's rebuilt
copy lands, and how evenly the work spreads.

Run:  python examples/pq_array_demo.py
"""

from repro.core.layout import PDDLLayout
from repro.core.multifailure import (
    degraded_read_cost,
    multi_rebuild_plan,
    multi_rebuild_read_tally,
    worst_case_tally_deviation,
)
from repro.core.permutation import BasePermutation

#: 16 disks = 2 spares + 2 stripes of width 7 (5 data + P + Q each).
PERMUTATION = (0, 9, 1, 12, 4, 15, 2, 8, 5, 3, 14, 7, 10, 6, 13, 11)


def main() -> None:
    perm = BasePermutation(PERMUTATION, k=7, spares=2, checks=2)
    layout = PDDLLayout(perm)
    layout.validate()
    print(layout.describe())
    print(
        f"Each stripe: {layout.data_per_stripe} data units +"
        f" {layout.checks} check units (P+Q);"
        f" {layout.spares} spare columns"
    )

    failed = (3, 11)
    print(f"\nDouble failure: disks {failed[0]} and {failed[1]}")
    steps = list(multi_rebuild_plan(layout, list(failed)))
    print(f"Stripes needing rebuild in one pattern: {len(steps)}")
    for step in steps[:4]:
        lost = ", ".join(
            f"(d{cell.disk}, r{cell.offset})->spare d{target.disk}"
            for cell, target in step.lost.items()
        )
        reads = ", ".join(f"d{a.disk}" for a in step.reads)
        print(f"  stripe {step.stripe}: lost {lost}; decode from {reads}")
    print("  ...")

    tally = multi_rebuild_read_tally(layout, list(failed))
    print(
        f"\nPer-survivor rebuild reads: min {min(tally.values())},"
        f" max {max(tally.values())}"
    )
    deviation, worst = worst_case_tally_deviation(layout, failures=2)
    print(
        f"Worst imbalance over all {16 * 15 // 2} failure pairs:"
        f" {deviation} (pair {worst})"
    )

    print("\nRead amplification (mean physical reads per data unit):")
    for label, disks in [("healthy", []), ("one failure", [3]),
                         ("double failure", [3, 11])]:
        print(f"  {label:15s} {degraded_read_cost(layout, disks):.3f}")


if __name__ == "__main__":
    main()
