"""Quickstart: the paper's seven-disk storage server (Figures 1 and 2).

Builds the PDDL layout from the Bose construction, prints the developed
layout pattern exactly as Figure 2 draws it, verifies the eight layout
goals, and walks the worked reconstruction example of §2.

Run:  python examples/quickstart.py
"""

from repro import bose_base_permutation, check_layout, PDDLLayout
from repro.core.reconstruction import rebuild_plan
from repro.layouts.address import PhysicalAddress, Role


def cell_label(layout: PDDLLayout, disk: int, row: int) -> str:
    """Figure 2 style label for one array cell (S, A0, PA, ...)."""
    info = layout.locate(disk, row)
    if info.role is Role.SPARE:
        return "S"
    stripe_letter = chr(ord("A") + info.stripe)
    if info.role is Role.CHECK:
        return f"P{stripe_letter}"
    return f"{stripe_letter}{info.position}"


def main() -> None:
    # §2/§3: n = 7, g = 2 stripes of width k = 3; omega = 3 yields the
    # paper's base permutation (0 1 2 4 3 6 5).
    permutation = bose_base_permutation(g=2, k=3, omega=3)
    print(f"Base permutation: {permutation.values}")
    print(f"Satisfactory (goal #3): {permutation.is_satisfactory()}")

    layout = PDDLLayout(permutation)
    print(f"\n{layout.describe()}")

    print("\nPhysical array (Figure 2, right):")
    header = "      " + "".join(f"disk{d:<3}" for d in range(7))
    print(header)
    for row in range(7):
        cells = "".join(
            f"{cell_label(layout, d, row):<7}" for d in range(7)
        )
        print(f"row {row}  {cells}")

    report = check_layout(layout)
    print(f"\nLayout goals met: {report.goals_met()}")
    print(f"  parity space: {layout.parity_overhead:.1%}"
          f"  spare space: {layout.spare_overhead:.1%}")

    # §2's worked example: disk 0 fails.
    print("\nReconstruction plan for a failure of disk 0:")
    for step in rebuild_plan(layout, failed_disk=0):
        reads = ", ".join(f"disk {a.disk}" for a in step.reads)
        print(
            f"  row {step.lost.offset}: read {reads};"
            f" write rebuilt unit to disk {step.write.disk} spare space"
        )

    # The paper's mapping one-liner, demonstrated.
    print("\nvirtual2physical spot checks (§2):")
    for disk, offset in [(2, 0), (3, 0), (5, 1), (6, 1)]:
        physical = layout.virtual_to_physical(disk, offset)
        print(f"  virtual (disk {disk}, offset {offset}) -> disk {physical}")

    # And the relocation map used after reconstruction completes.
    target = layout.relocation_target(PhysicalAddress(4, 0))
    print(f"\nPA (disk 4, row 0) relocates to spare at disk {target.disk}")


if __name__ == "__main__":
    main()
