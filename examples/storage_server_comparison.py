"""Compare the five layouts on the paper's 13-disk storage server.

A miniature of Figures 5/6: 96 KB reads at three load levels, fault-free
and degraded, printed as the paper's (throughput, response time) pairs.

Run:  python examples/storage_server_comparison.py [samples-per-point]
"""

import sys

from repro.array.raidops import ArrayMode
from repro.experiments.report import (
    curves_to_series,
    ranking_at_heaviest_load,
    ranking_at_lightest_load,
    render_ascii_chart,
    render_response_curves,
)
from repro.experiments.response import run_figure
from repro.layouts.registry import DISPLAY_NAMES
from repro.workload.spec import AccessSpec

LAYOUTS = ("datum", "parity-declustering", "raid5", "pddl", "prime")


def main() -> None:
    samples = int(sys.argv[1]) if len(sys.argv) > 1 else 250
    spec = AccessSpec(96, is_write=False)
    clients = (1, 8, 25)

    for mode in (ArrayMode.FAULT_FREE, ArrayMode.DEGRADED):
        print(f"\n=== 96KB reads, {mode.value} ===")
        curves = run_figure(
            LAYOUTS,
            spec,
            clients,
            mode=mode,
            max_samples=samples,
            use_stopping_rule=False,
            warmup=samples // 10,
        )
        print(render_response_curves(curves))
        print()
        print(render_ascii_chart(curves_to_series(curves)))
        light = [DISPLAY_NAMES[n] for n in ranking_at_lightest_load(curves)]
        heavy = [DISPLAY_NAMES[n] for n in ranking_at_heaviest_load(curves)]
        print(f"\nbest-to-worst at light load: {', '.join(light)}")
        print(f"best-to-worst at heavy load: {', '.join(heavy)}")
    print(
        "\nPaper's story: PRIME/RAID-5 lead light loads, the curves cross"
        "\nas load grows, and DATUM (with PDDL close behind) wins heavy"
        "\nloads; a failed disk hurts RAID-5 far more than the declustered"
        "\nlayouts."
    )


if __name__ == "__main__":
    main()
