"""Location generators: seeded determinism and distribution shape."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workload.generators import (
    SequentialGenerator,
    UniformGenerator,
    ZipfGenerator,
)


def _stream(gen, n=200):
    return [gen.next_start() for _ in range(n)]


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        total=st.integers(min_value=64, max_value=100_000),
        span=st.integers(min_value=1, max_value=12),
        aligned=st.booleans(),
    )
    def test_uniform_same_seed_same_stream(self, seed, total, span, aligned):
        a = UniformGenerator(total, span, random.Random(seed), aligned)
        b = UniformGenerator(total, span, random.Random(seed), aligned)
        stream = _stream(a)
        assert stream == _stream(b)
        assert all(0 <= s <= total - span for s in stream)
        if aligned:
            assert all(s % span == 0 for s in stream)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        total=st.integers(min_value=64, max_value=100_000),
        span=st.integers(min_value=1, max_value=12),
        theta=st.floats(min_value=0.2, max_value=2.0),
    )
    def test_zipf_same_seed_same_stream(self, seed, total, span, theta):
        a = ZipfGenerator(total, span, random.Random(seed), theta=theta)
        b = ZipfGenerator(total, span, random.Random(seed), theta=theta)
        stream = _stream(a)
        assert stream == _stream(b)
        assert all(0 <= s <= total - span for s in stream)

    @settings(max_examples=25, deadline=None)
    @given(
        total=st.integers(min_value=64, max_value=100_000),
        span=st.integers(min_value=1, max_value=12),
        start=st.integers(min_value=0, max_value=2**20),
    )
    def test_sequential_is_seedless_deterministic(self, total, span, start):
        a = SequentialGenerator(total, span, start=start)
        b = SequentialGenerator(total, span, start=start)
        stream = _stream(a)
        assert stream == _stream(b)
        assert all(0 <= s <= total - span for s in stream)


class TestZipfShape:
    def test_rank_frequency_is_monotone(self):
        """Bucket hit counts must fall (weakly) with rank: the front of
        the address space is the hot set."""
        buckets = 8
        gen = ZipfGenerator(
            8192, 1, random.Random("zipf"), theta=1.2, buckets=buckets
        )
        usable = gen.total_units - gen.span_units + 1
        counts = Counter(
            min(s * buckets // usable, buckets - 1)
            for s in _stream(gen, 30_000)
        )
        hits = [counts.get(b, 0) for b in range(buckets)]
        assert hits[0] == max(hits)
        # Weakly decreasing with a small sampling-noise allowance.
        for a, b in zip(hits, hits[1:]):
            assert b <= a * 1.1 + 50
        # And genuinely skewed, not flat.
        assert hits[0] > 3 * hits[-1]

    def test_higher_theta_is_more_skewed(self):
        def head_share(theta):
            gen = ZipfGenerator(
                4096, 1, random.Random("skew"), theta=theta, buckets=16
            )
            usable = gen.total_units - gen.span_units + 1
            starts = _stream(gen, 10_000)
            return sum(1 for s in starts if s < usable // 16) / len(starts)

        assert head_share(1.5) > head_share(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfGenerator(1024, 1, random.Random(0), theta=0.0)
        with pytest.raises(ConfigurationError):
            ZipfGenerator(1024, 1, random.Random(0), buckets=0)
        with pytest.raises(ConfigurationError):
            UniformGenerator(4, 8, random.Random(0))
