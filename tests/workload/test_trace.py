"""Tests for trace capture, serialization, and replay."""

import random

import pytest

from repro.array.controller import ArrayController
from repro.errors import ConfigurationError
from repro.layouts import make_layout
from repro.sim.engine import SimulationEngine
from repro.workload.trace import (
    Trace,
    TraceRecord,
    TraceReplayClient,
    synthesize_mixed_trace,
)


class TestTraceSerialization:
    def test_roundtrip(self):
        trace = Trace(
            [
                TraceRecord(0, 4, False),
                TraceRecord(100, 12, True),
                TraceRecord(7, 1, False),
            ]
        )
        restored = Trace.loads(trace.dumps())
        assert restored.records == trace.records

    def test_empty_lines_ignored(self):
        text = TraceRecord(1, 2, True).to_json() + "\n\n"
        assert len(Trace.loads(text)) == 1

    def test_malformed_append_rejected(self):
        trace = Trace()
        with pytest.raises(ConfigurationError):
            trace.append(TraceRecord(0, 0, False))
        with pytest.raises(ConfigurationError):
            trace.append(TraceRecord(-1, 1, False))

    def test_iteration(self):
        records = [TraceRecord(i, 1, False) for i in range(5)]
        assert list(Trace(records)) == records


class TestSynthesis:
    def test_write_fraction_respected(self):
        trace = synthesize_mixed_trace(
            2000, 10_000, 4, 0.3, random.Random(1)
        )
        writes = sum(1 for r in trace if r.is_write)
        assert 0.25 < writes / len(trace) < 0.35

    def test_locations_in_range(self):
        trace = synthesize_mixed_trace(500, 100, 10, 0.5, random.Random(2))
        for record in trace:
            assert 0 <= record.first_unit <= 90
            assert record.unit_count == 10

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ConfigurationError):
            synthesize_mixed_trace(0, 100, 4, 0.5, rng)
        with pytest.raises(ConfigurationError):
            synthesize_mixed_trace(10, 100, 4, 1.5, rng)
        with pytest.raises(ConfigurationError):
            synthesize_mixed_trace(10, 2, 4, 0.5, rng)


class TestReplay:
    def _build(self):
        engine = SimulationEngine()
        controller = ArrayController(engine, make_layout("pddl", 13, 4))
        return engine, controller

    def test_replays_whole_trace_in_order(self):
        engine, controller = self._build()
        trace = synthesize_mixed_trace(
            25, controller.addressable_data_units, 6, 0.4, random.Random(3)
        )
        seen = []
        done = {}
        client = TraceReplayClient(
            1,
            controller,
            trace,
            on_response=lambda access, ms: seen.append(access.first_unit),
            on_done=lambda responses: done.update(n=len(responses)),
        )
        client.start()
        engine.run()
        assert seen == [r.first_unit for r in trace]
        assert done["n"] == 25

    def test_mixed_trace_exercises_both_paths(self):
        engine, controller = self._build()
        trace = synthesize_mixed_trace(
            30, controller.addressable_data_units, 4, 0.5, random.Random(4)
        )
        kinds = set()
        TraceReplayClient(
            1,
            controller,
            trace,
            on_response=lambda access, ms: kinds.add(access.is_write),
        ).start()
        engine.run()
        assert kinds == {True, False}

    def test_empty_trace_rejected(self):
        engine, controller = self._build()
        with pytest.raises(ConfigurationError):
            TraceReplayClient(1, controller, Trace(), lambda a, m: None)

    def test_identical_replays_identical_timings(self):
        def run():
            engine, controller = self._build()
            trace = synthesize_mixed_trace(
                15, controller.addressable_data_units, 6, 0.3,
                random.Random(5),
            )
            out = []
            TraceReplayClient(
                1, controller, trace,
                on_response=lambda access, ms: out.append(ms),
            ).start()
            engine.run()
            return out

        assert run() == run()
