"""Tests for access specs, generators, and closed-loop clients."""

import random

import pytest

from repro.array.controller import ArrayController
from repro.errors import ConfigurationError
from repro.layouts import make_layout
from repro.sim.engine import SimulationEngine
from repro.workload.client import ClosedLoopClient
from repro.workload.generators import (
    SequentialGenerator,
    UniformGenerator,
    ZipfGenerator,
)
from repro.workload.spec import (
    PAPER_ACCESS_SIZES_KB,
    PAPER_CLIENT_COUNTS,
    AccessSpec,
)


class TestAccessSpec:
    def test_units(self):
        assert AccessSpec(8, False).units() == 1
        assert AccessSpec(336, True).units() == 42

    def test_unaligned_rejected(self):
        with pytest.raises(ConfigurationError):
            AccessSpec(12, False).units(8)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            AccessSpec(0, False)

    def test_labels(self):
        assert AccessSpec(96, False).label() == "96KB reads"
        assert AccessSpec(96, True).label() == "96KB writes"

    def test_paper_constants(self):
        assert len(PAPER_ACCESS_SIZES_KB) == 13
        assert PAPER_CLIENT_COUNTS == (1, 2, 4, 8, 10, 15, 20, 25)
        for size in PAPER_ACCESS_SIZES_KB:
            assert size % 8 == 0


class TestGenerators:
    def test_uniform_in_range(self):
        gen = UniformGenerator(1000, 12, random.Random(1))
        for _ in range(500):
            start = gen.next_start()
            assert 0 <= start <= 988

    def test_uniform_aligned(self):
        gen = UniformGenerator(1000, 12, random.Random(1), aligned=True)
        for _ in range(200):
            assert gen.next_start() % 12 == 0

    def test_sequential_wraps(self):
        gen = SequentialGenerator(30, 10)
        starts = [gen.next_start() for _ in range(5)]
        assert starts == [0, 10, 20, 0, 10]

    def test_zipf_prefers_front(self):
        gen = ZipfGenerator(10_000, 1, random.Random(2), theta=1.2)
        starts = [gen.next_start() for _ in range(2000)]
        front = sum(1 for s in starts if s < 5000)
        assert front > 1400  # heavily skewed toward the start

    def test_zipf_in_range(self):
        gen = ZipfGenerator(1000, 8, random.Random(3))
        for _ in range(500):
            assert 0 <= gen.next_start() <= 992

    def test_invalid_shapes(self):
        with pytest.raises(ConfigurationError):
            UniformGenerator(5, 10, random.Random(1))
        with pytest.raises(ConfigurationError):
            SequentialGenerator(10, 0)
        with pytest.raises(ConfigurationError):
            ZipfGenerator(100, 1, random.Random(1), theta=0)


class TestClosedLoopClient:
    def _build(self):
        engine = SimulationEngine()
        controller = ArrayController(engine, make_layout("raid5", 13, 13))
        return engine, controller

    def test_client_reissues_until_stopped(self):
        engine, controller = self._build()
        responses = []

        def on_response(client, access, ms):
            responses.append(ms)
            return len(responses) < 5

        gen = UniformGenerator(
            controller.addressable_data_units, 1, random.Random(0)
        )
        ClosedLoopClient(
            0, controller, gen, AccessSpec(8, False), on_response
        ).start()
        engine.run()
        assert len(responses) == 5
        assert controller.completed_accesses == 5

    def test_park_stops_after_inflight(self):
        engine, controller = self._build()
        responses = []
        client_box = {}

        def on_response(client, access, ms):
            responses.append(ms)
            client.park()
            return True

        gen = UniformGenerator(
            controller.addressable_data_units, 1, random.Random(0)
        )
        client = ClosedLoopClient(
            0, controller, gen, AccessSpec(8, False), on_response
        )
        client_box["c"] = client
        client.start()
        engine.run()
        assert len(responses) == 1

    def test_think_time_delays_next_issue(self):
        engine, controller = self._build()
        times = []

        def on_response(client, access, ms):
            times.append(engine.now)
            return len(times) < 2

        gen = SequentialGenerator(controller.addressable_data_units, 1)
        ClosedLoopClient(
            0, controller, gen, AccessSpec(8, False), on_response,
            think_time_ms=100.0,
        ).start()
        engine.run()
        assert times[1] - times[0] > 100.0

    def test_distinct_access_ids_across_clients(self):
        engine, controller = self._build()
        seen = set()

        def on_response(client, access, ms):
            assert access.access_id not in seen
            seen.add(access.access_id)
            return len(seen) < 6

        for c in range(3):
            gen = UniformGenerator(
                controller.addressable_data_units, 1, random.Random(c)
            )
            ClosedLoopClient(
                c, controller, gen, AccessSpec(8, False), on_response
            ).start()
        engine.run()
        assert len(seen) >= 6
