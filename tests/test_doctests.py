"""Run every module's doctests as part of the suite.

The library's docstrings carry worked examples (many straight from the
paper — the n = 7 permutation, the GF(16) power sequence, Table 3
periods); this keeps them executable.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if module_info.name.endswith("__main__"):
            continue
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module_name}: {results.failed} failures"
